// CLI for the project-invariant linter. Usage:
//
//   taglets_lint [--rules=a,b] [--list-rules] <src-dir>
//
// Exits 0 when the tree is clean, 1 when any rule fires (CI gates on
// this), 2 on usage errors. See docs/CORRECTNESS.md for the catalog.
#include <filesystem>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "lint.hpp"

namespace {

int usage() {
  std::cerr << "usage: taglets_lint [--rules=id,id] [--list-rules] <src-dir>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> only;
  std::string src;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : taglets::lint::rules()) {
        std::cout << rule.id << ": " << rule.description << "\n";
        for (const auto& [path, why] : rule.allowlist) {
          std::cout << "  allowlisted: " << path << " (" << why << ")\n";
        }
      }
      return 0;
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::stringstream ss(arg.substr(std::string("--rules=").size()));
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (!id.empty()) only.insert(id);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (src.empty()) {
      src = arg;
    } else {
      return usage();
    }
  }
  if (src.empty()) return usage();
  if (!std::filesystem::is_directory(src)) {
    std::cerr << "taglets_lint: not a directory: " << src << "\n";
    return 2;
  }

  for (const std::string& id : only) {
    bool known = false;
    for (const auto& rule : taglets::lint::rules()) known |= rule.id == id;
    if (!known) {
      std::cerr << "taglets_lint: unknown rule '" << id
                << "' (try --list-rules)\n";
      return 2;
    }
  }

  const taglets::lint::Linter linter{std::filesystem::path(src)};
  const auto violations = linter.run(only);
  if (violations.empty()) {
    std::cout << "taglets_lint: clean\n";
    return 0;
  }
  std::cout << taglets::lint::format_report(violations);
  std::cout << violations.size() << " violation(s)\n";
  return 1;
}
