// taglets_run — command-line front end for the full pipeline.
//
//   taglets_run --dataset grocery --shots 1 --backbone rn50
//   taglets_run --dataset oh-product --shots 5 --prune 1 --report
//   taglets_run --dataset fmd --shots 5 --save model.bin --modules transfer,fixmatch
//
// Flags:
//   --dataset  fmd | oh-product | oh-clipart | grocery   (default fmd)
//   --shots    labeled examples per class                 (default 1)
//   --split    train/test split index                     (default 0)
//   --backbone rn50 | bit                                 (default rn50)
//   --prune    -1 (off), 0, 1                             (default -1)
//   --modules  comma list from the registry               (default all 4)
//   --seed     training seed                              (default 0)
//   --scale    epoch scale, e.g. 0.3 for a smoke run      (default 1.0)
//   --save     write the servable end model to this path
//   --report   print the per-class confusion report
//   --compare  also run the fine-tuning baseline
#include <iostream>

#include "baselines/finetune.hpp"
#include "eval/lab.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "taglets/controller.hpp"
#include "util/args.hpp"
#include "util/string_util.hpp"

using namespace taglets;

namespace {

const synth::TaskSpec& spec_for(const std::string& name) {
  if (name == "fmd") return synth::fmd_spec();
  if (name == "oh-product") return synth::officehome_product_spec();
  if (name == "oh-clipart") return synth::officehome_clipart_spec();
  if (name == "grocery") return synth::grocery_spec();
  throw std::invalid_argument(
      "unknown --dataset (use fmd | oh-product | oh-clipart | grocery)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser args(argc, argv);

    const auto& spec = spec_for(args.get("dataset", "fmd"));
    const std::size_t shots =
        static_cast<std::size_t>(args.get_long("shots", 1));
    const std::size_t split =
        static_cast<std::size_t>(args.get_long("split", 0));
    const std::string backbone_name = args.get("backbone", "rn50");
    const backbone::Kind kind = backbone_name == "bit"
                                    ? backbone::Kind::kBitS
                                    : backbone::Kind::kRn50S;

    std::cout << "building environment (world + SCADS + backbones)...\n";
    eval::Lab lab;
    synth::FewShotTask task = lab.task(spec, shots, split);
    std::cout << "task: " << task.dataset_name << ", " << task.num_classes()
              << " classes, " << shots << " shot(s), "
              << task.unlabeled_inputs.rows() << " unlabeled\n";

    SystemConfig config;
    config.backbone = kind;
    config.selection.prune_level =
        static_cast<int>(args.get_long("prune", -1));
    config.train_seed = static_cast<std::uint64_t>(args.get_long("seed", 0)) + 1;
    config.epoch_scale = args.get_double("scale", 1.0);
    if (args.has("modules")) {
      config.module_names = util::split(args.get("modules", ""), ',');
    }

    const bool needs_zsl =
        std::count(config.module_names.begin(), config.module_names.end(),
                   "zsl-kg") > 0;
    Controller controller(&lab.scads(), &lab.zoo(),
                          needs_zsl ? &lab.zsl_engine() : nullptr);
    SystemResult result = controller.run(task, config);
    std::cout << "trained " << result.taglets.size() << " taglets in "
              << result.train_seconds << "s (|R| = "
              << result.selection.data.size() << ")\n";

    tensor::Tensor logits =
        result.end_model.model().logits(task.test_inputs, false);
    const auto cm = nn::evaluate_confusion(logits, task.test_labels);
    std::cout << "TAGLETS end model: " << 100.0 * cm.accuracy()
              << "% accuracy, macro-F1 " << cm.macro_f1() << "\n";
    for (auto& taglet : result.taglets) {
      std::cout << "  taglet " << taglet.name() << ": "
                << 100.0 * nn::evaluate_accuracy(taglet.model(),
                                                 task.test_inputs,
                                                 task.test_labels)
                << "%\n";
    }

    if (args.get_flag("compare")) {
      baselines::FineTune fine_tune;
      nn::Classifier baseline = fine_tune.train(
          task, lab.zoo().get(kind), config.train_seed, config.epoch_scale);
      std::cout << "fine-tuning baseline: "
                << 100.0 * nn::evaluate_accuracy(baseline, task.test_inputs,
                                                 task.test_labels)
                << "%\n";
    }

    if (args.get_flag("report")) {
      std::cout << cm.report(task.class_names);
    }

    if (args.has("save")) {
      const std::string path = args.get("save", "");
      result.end_model.save(path);
      std::cout << "saved servable model to " << path << " ("
                << result.end_model.parameter_count() << " parameters)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
