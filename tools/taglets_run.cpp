// taglets_run — command-line front end for the full pipeline.
//
//   taglets_run --dataset grocery --shots 1 --backbone rn50
//   taglets_run --dataset oh-product --shots 5 --prune 1 --report
//   taglets_run --dataset fmd --shots 5 --save model.bin --modules transfer,fixmatch
//   taglets_run --dataset fmd --shots 5 --serve --serve-workers 4
//   taglets_run --load model.bin --serve --serve-rate 2000
//
// Flags:
//   --dataset  fmd | oh-product | oh-clipart | grocery   (default fmd)
//   --shots    labeled examples per class                 (default 1)
//   --split    train/test split index                     (default 0)
//   --backbone rn50 | bit                                 (default rn50)
//   --prune    -1 (off), 0, 1                             (default -1)
//   --modules  comma list from the registry               (default all 4)
//   --seed     training seed                              (default 0)
//   --scale    epoch scale, e.g. 0.3 for a smoke run      (default 1.0)
//   --save     write the servable end model to this path
//   --report   print the per-class confusion report
//   --compare  also run the fine-tuning baseline
//
// Crash safety (docs/ROBUSTNESS.md):
//   --checkpoint-dir DIR  checkpoint each completed pipeline stage
//                         (selection, per-module taglets) into DIR
//                         with atomic writes
//   --resume              skip stages whose checkpoints exist in DIR;
//                         the resumed run's end model is bitwise
//                         identical to an uninterrupted run
// TAGLETS_FAULT=<site>:<nth> deterministically fails the Nth I/O call
// at a named site (fault-injection testing; see docs/ROBUSTNESS.md).
//
// Observability (both pipeline and --serve/--load modes):
//   --trace-out FILE    enable tracing and write a Chrome-trace /
//                       Perfetto JSON file of the run's spans
//   --metrics-out FILE  write the process metrics registry snapshot
//                       (counters/gauges/histograms) as JSON
// See docs/OBSERVABILITY.md for span and metric names.
//
// Serving load-test mode (--serve): runs the in-process dynamic-batching
// server (src/serve/) against the end model — either the one just
// trained, or one restored with --load PATH (which skips training).
//   --serve-requests     total requests                    (default 2000)
//   --serve-clients      client threads                    (default 4)
//   --serve-rate         open-loop aggregate arrival rate in req/s;
//                        0 = closed loop (submit, wait, repeat)
//   --serve-workers      server worker threads             (default 2)
//   --serve-batch        max micro-batch size              (default 16)
//   --serve-delay-ms     max batching delay                (default 1.0)
//   --serve-queue        submission queue capacity         (default 256)
//   --serve-deadline-ms  per-request deadline, 0 = none    (default 0)
//   --serve-json         also print the stats JSON blob
//
// Tensor backend / quantized serving (docs/PERFORMANCE.md):
//   --backend-info       print the active and available tensor SIMD
//                        backends (TAGLETS_TENSOR_BACKEND) and exit
//   TAGLETS_SERVE_INT8=1 serve the end model with int8-quantized
//                        weights; after training, the accuracy-delta
//                        gate vs float32 runs and a failing gate makes
//                        the run exit non-zero
//
// Serving fleet (docs/FLEET.md) — multi-process sharded serving:
//   --fleet-shard --load M.bin --fleet-endpoint unix:/tmp/s0.sock
//       run one shard process until SIGTERM/SIGINT (SIGKILL is the
//       failover drill). Reuses the --serve-* server knobs above.
//   --fleet-frontend --fleet-endpoint tcp:127.0.0.1:9100
//       --fleet-groups "g0=unix:/tmp/s0.sock;g1=unix:/tmp/s1.sock"
//       run the routing frontend over those shard groups
//       (--fleet-heartbeat-ms / --fleet-suspect-ms / --fleet-dead-ms
//       tune the health machine).
//   --fleet-connect EP with one of:
//     --fleet-ping           print the peer's pong (readiness probe)
//     --fleet-reload PATH    hot-swap the serving model
//     --fleet-stats          print the peer's stats JSON
//     --fleet-predict N      send N pipelined predicts, print outcomes
//
// Fleet observability (docs/OBSERVABILITY.md, "Fleet observability"):
//   --fleet-connect EP with one of:
//     --fleet-trace-dump FILE  pull every fleet process's span buffer
//                              through the frontend and write ONE merged
//                              Chrome/Perfetto trace with per-process
//                              lanes (clock-aligned via ping-RTT midpoint)
//     --fleet-metrics          print the federated metrics JSON (one
//                              structured snapshot per fleet process,
//                              per-shard labeled); --fleet-metrics-out
//                              FILE writes it atomically instead
//     --fleet-top              live ops console: per-shard health, model
//                              version, qps, p50/p99, queue depth, flap/
//                              rejoin counts, plus the frontend's
//                              network-vs-queue-vs-compute breakdown.
//                              --fleet-top-interval-ms (default 1000)
//                              and --fleet-top-iters N (0 = until ^C)
//                              bound the refresh loop for CI.
//   Frontend-side:
//     --fleet-events-out FILE  append structured JSON-lines operational
//                              events (health transitions, failover,
//                              reload, rejoin) to FILE
//     --fleet-scrape-out FILE  append a federated metrics snapshot line
//                              every --fleet-scrape-interval-ms
//                              (default 1000) — a self-contained
//                              JSON-lines time series
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <future>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <unordered_map>

#include "baselines/finetune.hpp"
#include "eval/harness.hpp"
#include "eval/lab.hpp"
#include "fleet/client.hpp"
#include "fleet/frontend.hpp"
#include "fleet/shard.hpp"
#include "fleet/trace_merge.hpp"
#include "tensor/backend.hpp"
#include "util/env.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "taglets/controller.hpp"
#include "util/args.hpp"
#include "util/atomic_io.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

using namespace taglets;

namespace {

const synth::TaskSpec& spec_for(const std::string& name) {
  if (name == "fmd") return synth::fmd_spec();
  if (name == "oh-product") return synth::officehome_product_spec();
  if (name == "oh-clipart") return synth::officehome_clipart_spec();
  if (name == "grocery") return synth::grocery_spec();
  throw std::invalid_argument(
      "unknown --dataset (use fmd | oh-product | oh-clipart | grocery)");
}

/// Request inputs for the load test: test-set rows when the model was
/// just trained on a task, otherwise random vectors of the right width.
std::vector<tensor::Tensor> serve_inputs(const ensemble::ServableModel& model,
                                         const tensor::Tensor* test_inputs,
                                         std::size_t count) {
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(count);
  if (test_inputs != nullptr && test_inputs->rows() > 0) {
    for (std::size_t i = 0; i < count; ++i) {
      inputs.push_back(test_inputs->row_copy(i % test_inputs->rows()));
    }
    return inputs;
  }
  util::Rng rng(29);
  const std::size_t dim = model.model().input_dim();
  for (std::size_t i = 0; i < count; ++i) {
    tensor::Tensor x = tensor::Tensor::zeros(dim);
    for (float& v : x.data()) v = static_cast<float>(rng.normal());
    inputs.push_back(std::move(x));
  }
  return inputs;
}

/// Closed-loop clients (submit, wait, repeat) or — when rate > 0 — an
/// open-loop arrival process that fires at fixed intervals regardless
/// of completions, which is what exposes queueing and load shedding.
void run_serve_load_test(ensemble::ServableModel& model,
                         const tensor::Tensor* test_inputs,
                         const util::ArgParser& args) {
  const std::size_t requests =
      static_cast<std::size_t>(args.get_long("serve-requests", 2000));
  const std::size_t clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_long("serve-clients", 4)));
  const double rate = args.get_double("serve-rate", 0.0);

  serve::ServerConfig config;
  config.workers =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_long("serve-workers", 2)));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_long("serve-queue", 256));
  config.batching.max_batch_size =
      static_cast<std::size_t>(args.get_long("serve-batch", 16));
  config.batching.max_delay_ms = args.get_double("serve-delay-ms", 1.0);
  config.default_deadline_ms = args.get_double("serve-deadline-ms", 0.0);

  const auto inputs = serve_inputs(model, test_inputs, requests);
  std::cout << "[serve] " << requests << " requests, " << clients
            << (rate > 0.0 ? " open-loop clients @ " + std::to_string(rate) +
                                 " req/s aggregate"
                           : " closed-loop clients")
            << ", " << config.workers << " workers, batch<="
            << config.batching.max_batch_size << " delay<="
            << config.batching.max_delay_ms << "ms queue="
            << config.queue_capacity << "\n";

  serve::Server server(model, config);
  server.start();
  util::Timer wall;
  std::vector<std::thread> threads;
  std::vector<std::array<std::size_t, 5>> outcome_counts(
      clients, std::array<std::size_t, 5>{});
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& counts = outcome_counts[c];
      auto count = [&counts](const serve::Response& r) {
        ++counts[static_cast<std::size_t>(r.status)];
      };
      if (rate > 0.0) {
        // Open loop: this client fires every clients/rate seconds.
        const auto interval = std::chrono::nanoseconds(
            static_cast<std::chrono::nanoseconds::rep>(
                1e9 * static_cast<double>(clients) / rate));
        auto next = serve::Clock::now();
        std::vector<std::future<serve::Response>> pending;
        for (std::size_t i = c; i < requests; i += clients) {
          std::this_thread::sleep_until(next);
          next += interval;
          pending.push_back(server.submit(inputs[i]));
        }
        for (auto& f : pending) count(f.get());
      } else {
        for (std::size_t i = c; i < requests; i += clients) {
          count(server.predict(inputs[i]));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.elapsed_seconds();
  server.stop();

  std::array<std::size_t, 5> totals{};
  for (const auto& counts : outcome_counts) {
    for (std::size_t s = 0; s < totals.size(); ++s) totals[s] += counts[s];
  }
  std::size_t responded = 0;
  for (std::size_t s = 0; s < totals.size(); ++s) responded += totals[s];
  const std::size_t ok = totals[static_cast<std::size_t>(serve::Status::kOk)];

  std::cout << server.stats().report();
  std::cout << "[serve] wall=" << seconds << "s throughput="
            << static_cast<double>(ok) / seconds << " ok req/s\n"
            << "[serve] client-side: responses=" << responded << "/" << requests
            << " ok=" << ok << " rejected="
            << totals[static_cast<std::size_t>(serve::Status::kRejected)]
            << " deadline="
            << totals[static_cast<std::size_t>(serve::Status::kDeadlineExceeded)]
            << " shutdown="
            << totals[static_cast<std::size_t>(serve::Status::kShutdown)]
            << " error="
            << totals[static_cast<std::size_t>(serve::Status::kError)] << "\n";
  if (responded != requests) {
    throw std::runtime_error("serve load test lost responses");
  }
  if (args.get_flag("serve-json")) {
    std::cout << server.stats().json() << "\n";
  }
}

/// Write the observability artifacts the run asked for. Called on
/// every successful exit path so pipeline, --serve, and --load runs
/// all export the same way. Both artifacts go through the atomic
/// write path, so a failed export never leaves a partial JSON file.
void write_observability_artifacts(const util::ArgParser& args) {
  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out", "");
    util::atomic_write_file(path, obs::trace_export_json() + "\n",
                            "trace.export");
    std::cout << "wrote trace (" << obs::Tracer::global().snapshot().size()
              << " spans) to " << path << "\n";
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "");
    util::atomic_write_file(path,
                            obs::MetricsRegistry::global().to_json() + "\n",
                            "metrics.export");
    std::cout << "wrote metrics snapshot to " << path << "\n";
  }
}

// --------------------------------------------------------- fleet modes

std::atomic<bool> g_fleet_stop{false};
void handle_fleet_stop(int) { g_fleet_stop.store(true); }

/// Block until SIGTERM/SIGINT (the smoke script's graceful stop).
void wait_for_stop_signal() {
  std::signal(SIGINT, handle_fleet_stop);
  std::signal(SIGTERM, handle_fleet_stop);
  while (!g_fleet_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

serve::ServerConfig serve_config_from(const util::ArgParser& args) {
  serve::ServerConfig config;
  config.workers =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_long("serve-workers", 2)));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_long("serve-queue", 256));
  config.batching.max_batch_size =
      static_cast<std::size_t>(args.get_long("serve-batch", 16));
  config.batching.max_delay_ms = args.get_double("serve-delay-ms", 1.0);
  config.default_deadline_ms = args.get_double("serve-deadline-ms", 0.0);
  return config;
}

/// Wall-clock milliseconds for event/scrape lines (the tracer clock is
/// per-process; operational logs want a shared human timeline).
std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// One self-contained JSON line for the whole federation: a timestamp
/// plus every process's structured snapshot. The scraper appends these,
/// so the output file is a metrics time series.
std::string federation_json(const fleet::MetricsResponse& resp) {
  std::string out =
      "{\"ts_ms\":" + std::to_string(wall_ms()) + ",\"snapshots\":[";
  for (std::size_t i = 0; i < resp.snapshots.size(); ++i) {
    if (i > 0) out += ",";
    out += resp.snapshots[i].to_json();
  }
  out += "]}";
  return out;
}

int run_fleet_shard(const util::ArgParser& args) {
  ensemble::ServableModel model =
      ensemble::ServableModel::load(args.get("load", ""));
  fleet::ShardConfig config;
  config.endpoint = args.get("fleet-endpoint", "");
  config.server = serve_config_from(args);
  obs::set_process_name("shard " + config.endpoint);
  fleet::ShardServer shard(std::move(model), config);
  shard.start();
  // The trailing endl flushes: launchers wait for this line.
  std::cout << "[fleet-shard] serving on " << config.endpoint << " (model v"
            << shard.model_version() << ", " << config.server.workers
            << " workers)" << std::endl;
  wait_for_stop_signal();
  shard.stop();
  write_observability_artifacts(args);
  std::cout << "[fleet-shard] stopped\n";
  return 0;
}

/// "--fleet-groups g0=unix:/a.sock;g1=unix:/b.sock,unix:/c.sock":
/// ';' between groups, '=' after the group name, ',' between replicas.
std::vector<fleet::GroupSpec> parse_fleet_groups(const std::string& spec) {
  std::vector<fleet::GroupSpec> groups;
  for (const std::string& part : util::split(spec, ';')) {
    if (part.empty()) continue;
    const auto eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("--fleet-groups: expected name=endpoints in '" +
                                  part + "'");
    }
    fleet::GroupSpec group;
    group.name = part.substr(0, eq);
    group.replicas = util::split(part.substr(eq + 1), ',');
    groups.push_back(std::move(group));
  }
  return groups;
}

int run_fleet_frontend(const util::ArgParser& args) {
  fleet::FrontendConfig config;
  config.endpoint = args.get("fleet-endpoint", "");
  config.groups = parse_fleet_groups(args.get("fleet-groups", ""));
  config.heartbeat_interval_ms = args.get_double("fleet-heartbeat-ms", 50.0);
  config.health.suspect_after_ms = args.get_double("fleet-suspect-ms", 250.0);
  config.health.dead_after_ms = args.get_double("fleet-dead-ms", 1000.0);
  config.event_log_path = args.get("fleet-events-out", "");
  obs::set_process_name("frontend");
  fleet::Frontend frontend(config);
  frontend.start();

  // Metrics scraper: a background thread appending one federated
  // snapshot line per interval, so the run leaves a queryable time
  // series behind without any external collector.
  std::atomic<bool> scrape_stop{false};
  std::thread scraper;
  if (args.has("fleet-scrape-out")) {
    const std::string path = args.get("fleet-scrape-out", "");
    auto out = std::make_shared<std::ofstream>(path, std::ios::app);
    if (!*out) {
      frontend.stop();
      throw std::runtime_error("cannot open --fleet-scrape-out " + path);
    }
    const double interval_ms =
        std::max(10.0, args.get_double("fleet-scrape-interval-ms", 1000.0));
    scraper = std::thread([&frontend, &scrape_stop, out, interval_ms] {
      auto next = std::chrono::steady_clock::now();
      while (!scrape_stop.load(std::memory_order_acquire)) {
        next += std::chrono::microseconds(
            static_cast<std::int64_t>(1000.0 * interval_ms));
        *out << federation_json(frontend.federated_metrics()) << "\n";
        out->flush();
        // Chunked sleep so shutdown never waits a full interval.
        while (!scrape_stop.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }

  std::cout << "[fleet-frontend] serving on " << config.endpoint << " ("
            << config.groups.size() << " groups)" << std::endl;
  wait_for_stop_signal();
  scrape_stop.store(true, std::memory_order_release);
  if (scraper.joinable()) scraper.join();
  frontend.stop();
  write_observability_artifacts(args);
  std::cout << "[fleet-frontend] stopped\n";
  return 0;
}

// ------------------------------------------------- fleet ops console

/// Snapshot accessors: the wire form stores sorted vectors, and the
/// console reads a handful of names per refresh, so linear scans are
/// fine.
const std::string* snap_meta(const obs::MetricsSnapshot& s,
                             const std::string& key) {
  for (const auto& kv : s.meta) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

std::uint64_t snap_counter(const obs::MetricsSnapshot& s,
                           const std::string& name) {
  for (const auto& c : s.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double snap_gauge(const obs::MetricsSnapshot& s, const std::string& name) {
  for (const auto& g : s.gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const obs::Histogram::Snapshot* snap_hist(const obs::MetricsSnapshot& s,
                                          const std::string& name) {
  for (const auto& h : s.histograms) {
    if (h.name == name) return &h.snap;
  }
  return nullptr;
}

/// "p50/p99" for one histogram, or "-" when it has no observations.
std::string quantile_cell(const obs::Histogram::Snapshot* snap) {
  if (snap == nullptr || snap->count == 0) return "-";
  std::ostringstream out;
  out << std::fixed << std::setprecision(2)
      << obs::histogram_quantile(*snap, 0.50) << "/"
      << obs::histogram_quantile(*snap, 0.99);
  return out.str();
}

/// One --fleet-top refresh: the frontend summary with its per-group
/// network-vs-queue-vs-compute latency decomposition, then a per-shard
/// table. `prev_ok` carries ok-counter readings between refreshes for
/// the qps column.
void render_fleet_top(
    const fleet::MetricsResponse& resp, double dt_seconds,
    std::unordered_map<std::string, std::uint64_t>& prev_ok) {
  std::ostringstream out;
  out << std::left;
  for (const auto& snap : resp.snapshots) {
    if (snap_meta(snap, "replica_endpoint") != nullptr) continue;
    // The frontend's own snapshot (the only one without shard meta).
    out << "frontend " << snap.source << ": requests="
        << snap_counter(snap, "fleet.frontend.requests_total") << " ok="
        << snap_counter(snap, "fleet.frontend.requests_ok_total")
        << " failovers="
        << snap_counter(snap, "fleet.frontend.failovers_total")
        << " overloaded="
        << snap_counter(snap, "fleet.frontend.overloaded_total")
        << " unavailable="
        << snap_counter(snap, "fleet.frontend.unavailable_total") << " alive="
        << snap_gauge(snap, "fleet.frontend.alive_replicas") << " ring_groups="
        << snap_gauge(snap, "fleet.frontend.ring_groups") << "\n";
    // Per-group latency decomposition, keyed off the labeled totals.
    const std::string prefix = "fleet.frontend.latency_ms{shard=";
    for (const auto& h : snap.histograms) {
      if (h.name.rfind(prefix, 0) != 0 || h.name.back() != '}') continue;
      const std::string group =
          h.name.substr(prefix.size(), h.name.size() - prefix.size() - 1);
      const std::string suffix = "_ms{shard=" + group + "}";
      out << "  " << std::setw(10) << group << " p50/p99 ms  total "
          << quantile_cell(&h.snap) << "  network "
          << quantile_cell(snap_hist(snap, "fleet.frontend.network" + suffix))
          << "  queue "
          << quantile_cell(
                 snap_hist(snap, "fleet.frontend.queue_wait" + suffix))
          << "  compute "
          << quantile_cell(snap_hist(snap, "fleet.frontend.compute" + suffix))
          << "\n";
    }
  }
  out << std::setw(8) << "SHARD" << std::setw(24) << "ENDPOINT" << " "
      << std::setw(9) << "HEALTH" << std::setw(5) << "VER" << std::setw(9)
      << "QPS" << std::setw(14) << "P50/P99MS" << std::setw(7) << "QUEUE"
      << std::setw(7) << "FLAPS" << "REJOINS\n";
  for (const auto& snap : resp.snapshots) {
    const std::string* endpoint = snap_meta(snap, "replica_endpoint");
    if (endpoint == nullptr) continue;
    const std::string* group = snap_meta(snap, "group");
    const std::string* health = snap_meta(snap, "health");
    const std::string* flaps = snap_meta(snap, "flaps");
    const std::string* rejoins = snap_meta(snap, "rejoins");
    const std::uint64_t ok = snap_counter(snap, "serve.requests_ok_total");
    double qps = 0.0;
    const auto prev = prev_ok.find(*endpoint);
    if (prev != prev_ok.end() && dt_seconds > 0.0 && ok >= prev->second) {
      qps = static_cast<double>(ok - prev->second) / dt_seconds;
    }
    prev_ok[*endpoint] = ok;
    out << std::setw(8) << (group != nullptr ? *group : "?") << std::setw(24)
        << *endpoint << " " << std::setw(9)
        << (health != nullptr ? *health : "?")
        << std::setw(5)
        << static_cast<long>(snap_gauge(snap, "fleet.shard.model_version"))
        << std::setw(9) << std::fixed << std::setprecision(1) << qps
        << std::setw(14)
        << quantile_cell(snap_hist(snap, "serve.latency_ms")) << std::setw(7)
        << static_cast<long>(snap_gauge(snap, "serve.queue_depth"))
        << std::setw(7) << (flaps != nullptr ? *flaps : "0")
        << (rejoins != nullptr ? *rejoins : "0") << "\n";
  }
  std::cout << out.str() << std::flush;
}

int run_fleet_top(fleet::FleetClient& client, const util::ArgParser& args) {
  const long iters = args.get_long("fleet-top-iters", 0);
  const double interval_ms =
      std::max(10.0, args.get_double("fleet-top-interval-ms", 1000.0));
  std::signal(SIGINT, handle_fleet_stop);
  std::signal(SIGTERM, handle_fleet_stop);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::unordered_map<std::string, std::uint64_t> prev_ok;
  auto last = std::chrono::steady_clock::now();
  for (long round = 0; iters <= 0 || round < iters; ++round) {
    if (round > 0) {
      auto until = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(
                       static_cast<std::int64_t>(1000.0 * interval_ms));
      while (!g_fleet_stop.load() &&
             std::chrono::steady_clock::now() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (g_fleet_stop.load()) break;
    const fleet::MetricsResponse resp = client.fleet_metrics();
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - last).count();
    last = now;
    if (tty) {
      std::cout << "\x1b[H\x1b[2J";  // home + clear, like top(1)
    }
    std::cout << "[fleet-top] " << resp.snapshots.size()
              << " processes, refresh " << interval_ms << "ms, round "
              << (round + 1) << (iters > 0 ? "/" + std::to_string(iters) : "")
              << "\n";
    render_fleet_top(resp, round == 0 ? 0.0 : dt, prev_ok);
  }
  return 0;
}

int run_fleet_client(const util::ArgParser& args) {
  fleet::FleetClientConfig config;
  config.endpoint = args.get("fleet-connect", "");
  if (config.endpoint.empty()) {
    throw std::invalid_argument("--fleet-connect ENDPOINT is required");
  }
  fleet::FleetClient client(config);
  if (args.get_flag("fleet-ping")) {
    const fleet::Pong pong = client.ping();
    std::cout << "[fleet-ping] model_version=" << pong.model_version
              << " queue=" << pong.queue_depth << "/" << pong.queue_capacity
              << " ok=" << pong.requests_ok << " rejected="
              << pong.requests_rejected << " deadline_missed="
              << pong.requests_deadline_missed
              << " draining=" << static_cast<int>(pong.draining) << "\n";
    return 0;
  }
  if (args.has("fleet-reload")) {
    const fleet::ReloadResponse resp =
        client.reload(args.get("fleet-reload", ""));
    std::cout << "[fleet-reload] " << (resp.ok ? "ok" : "FAILED")
              << " model_version=" << resp.model_version
              << (resp.message.empty() ? "" : " (" + resp.message + ")")
              << "\n";
    return resp.ok ? 0 : 1;
  }
  if (args.get_flag("fleet-stats")) {
    std::cout << client.stats() << "\n";
    return 0;
  }
  if (args.has("fleet-trace-dump")) {
    const std::string path = args.get("fleet-trace-dump", "");
    const fleet::TraceExportResponse resp = client.trace_export();
    std::size_t spans = 0;
    for (const auto& proc : resp.processes) spans += proc.spans.size();
    util::atomic_write_file(path,
                            fleet::render_chrome_trace(resp.processes) + "\n",
                            "fleet.trace.export");
    std::cout << "[fleet-trace-dump] wrote " << spans << " spans from "
              << resp.processes.size() << " processes to " << path << "\n";
    return 0;
  }
  if (args.get_flag("fleet-metrics") || args.has("fleet-metrics-out")) {
    const std::string json = federation_json(client.fleet_metrics());
    if (args.has("fleet-metrics-out")) {
      const std::string path = args.get("fleet-metrics-out", "");
      util::atomic_write_file(path, json + "\n", "fleet.metrics.export");
      std::cout << "[fleet-metrics] wrote federated snapshot to " << path
                << "\n";
    } else {
      std::cout << json << "\n";
    }
    return 0;
  }
  if (args.get_flag("fleet-top")) {
    return run_fleet_top(client, args);
  }
  if (args.has("fleet-predict")) {
    const std::size_t requests =
        static_cast<std::size_t>(args.get_long("fleet-predict", 100));
    const std::size_t dim =
        static_cast<std::size_t>(args.get_long("fleet-dim", 64));
    util::Rng rng(31);
    std::vector<std::future<fleet::PredictResponse>> pending;
    pending.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      std::vector<float> features(dim);
      for (float& v : features) v = static_cast<float>(rng.normal());
      pending.push_back(client.submit(std::move(features), i));
    }
    std::array<std::size_t, 6> counts{};
    for (auto& f : pending) {
      ++counts[static_cast<std::size_t>(f.get().status)];
    }
    std::cout << "[fleet-predict] sent=" << requests << " ok=" << counts[0]
              << " overloaded=" << counts[1] << " unavailable=" << counts[2]
              << " deadline=" << counts[3] << " error=" << counts[4]
              << " shutdown=" << counts[5] << "\n";
    return counts[0] == requests ? 0 : 1;
  }
  throw std::invalid_argument(
      "--fleet-connect needs one of --fleet-ping / --fleet-reload / "
      "--fleet-stats / --fleet-predict / --fleet-trace-dump / "
      "--fleet-metrics / --fleet-top");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser args(argc, argv);
    // Tracing is opt-in: asking for a trace file turns the span layer
    // on for the whole run (TAGLETS_TRACE=1 also works).
    if (args.has("trace-out")) obs::set_trace_enabled(true);

    if (args.get_flag("backend-info")) {
      // Dispatch smoke check: which SIMD backend this process resolved
      // (CI greps this to confirm dispatch works on the runner).
      std::cout << "tensor backend: " << tensor::backend::active_name()
                << "\navailable:";
      for (const auto& name : tensor::backend::available()) {
        std::cout << " " << name;
      }
      std::cout << "\n";
      return 0;
    }

    if (args.get_flag("fleet-shard")) return run_fleet_shard(args);
    if (args.get_flag("fleet-frontend")) return run_fleet_frontend(args);
    if (args.has("fleet-connect")) return run_fleet_client(args);

    if (args.has("load")) {
      // Serving-only path: restore a saved end model and skip training.
      ensemble::ServableModel model =
          ensemble::ServableModel::load(args.get("load", ""));
      std::cout << "loaded servable model (" << model.num_classes()
                << " classes, " << model.parameter_count() << " parameters, "
                << (model.precision() == ensemble::Precision::kInt8
                        ? "int8"
                        : "float32")
                << " serving)\n";
      if (args.get_flag("serve")) {
        run_serve_load_test(model, nullptr, args);
      }
      write_observability_artifacts(args);
      return 0;
    }

    const auto& spec = spec_for(args.get("dataset", "fmd"));
    const std::size_t shots =
        static_cast<std::size_t>(args.get_long("shots", 1));
    const std::size_t split =
        static_cast<std::size_t>(args.get_long("split", 0));
    const std::string backbone_name = args.get("backbone", "rn50");
    const backbone::Kind kind = backbone_name == "bit"
                                    ? backbone::Kind::kBitS
                                    : backbone::Kind::kRn50S;

    std::cout << "building environment (world + SCADS + backbones)...\n";
    eval::Lab lab;
    synth::FewShotTask task = lab.task(spec, shots, split);
    std::cout << "task: " << task.dataset_name << ", " << task.num_classes()
              << " classes, " << shots << " shot(s), "
              << task.unlabeled_inputs.rows() << " unlabeled\n";

    SystemConfig config;
    config.backbone = kind;
    config.selection.prune_level =
        static_cast<int>(args.get_long("prune", -1));
    config.train_seed = static_cast<std::uint64_t>(args.get_long("seed", 0)) + 1;
    config.epoch_scale = args.get_double("scale", 1.0);
    if (args.has("modules")) {
      config.module_names = util::split(args.get("modules", ""), ',');
    }
    config.checkpoint_dir = args.get("checkpoint-dir", "");
    config.resume = args.get_flag("resume");
    if (config.resume && config.checkpoint_dir.empty()) {
      throw std::invalid_argument("--resume requires --checkpoint-dir");
    }

    const bool needs_zsl =
        std::count(config.module_names.begin(), config.module_names.end(),
                   "zsl-kg") > 0;
    Controller controller(&lab.scads(), &lab.zoo(),
                          needs_zsl ? &lab.zsl_engine() : nullptr);
    SystemResult result = controller.run(task, config);
    std::cout << "trained " << result.taglets.size() << " taglets in "
              << result.train_seconds << "s (|R| = "
              << result.selection.data.size() << ")\n";

    tensor::Tensor logits =
        result.end_model.model().logits(task.test_inputs, false);
    const auto cm = nn::evaluate_confusion(logits, task.test_labels);
    std::cout << "TAGLETS end model: " << 100.0 * cm.accuracy()
              << "% accuracy, macro-F1 " << cm.macro_f1() << "\n";
    for (auto& taglet : result.taglets) {
      std::cout << "  taglet " << taglet.name() << ": "
                << 100.0 * nn::evaluate_accuracy(taglet.model(),
                                                 task.test_inputs,
                                                 task.test_labels)
                << "%\n";
    }

    if (args.get_flag("compare")) {
      baselines::FineTune fine_tune;
      nn::Classifier baseline = fine_tune.train(
          task, lab.zoo().get(kind), config.train_seed, config.epoch_scale);
      std::cout << "fine-tuning baseline: "
                << 100.0 * nn::evaluate_accuracy(baseline, task.test_inputs,
                                                 task.test_labels)
                << "%\n";
    }

    if (args.get_flag("report")) {
      std::cout << cm.report(task.class_names);
    }

    if (util::env_flag("TAGLETS_SERVE_INT8")) {
      // Quantized serving was requested: the accuracy-delta gate must
      // pass on the test set before the int8 model is allowed out.
      const auto gate = eval::int8_accuracy_gate(
          result.end_model, task.test_inputs, task.test_labels);
      std::cout << "int8 gate: float32=" << gate.float32_accuracy
                << "% int8=" << gate.int8_accuracy << "% delta="
                << gate.delta_pp << "pp limit=" << gate.limit_pp << "pp "
                << (gate.pass ? "PASS" : "FAIL") << "\n";
      if (!gate.pass) {
        throw std::runtime_error("int8 accuracy gate failed");
      }
      result.end_model.set_precision(ensemble::Precision::kInt8);
    }

    if (args.has("save")) {
      const std::string path = args.get("save", "");
      result.end_model.save(path);
      std::cout << "saved servable model to " << path << " ("
                << result.end_model.parameter_count() << " parameters)\n";
    }

    if (args.get_flag("serve")) {
      run_serve_load_test(result.end_model, &task.test_inputs, args);
    }
    write_observability_artifacts(args);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
