#!/bin/bash
# Fleet smoke drill (wired into CI): a frontend over two real shard
# processes serving a model produced by the actual pipeline, load
# pushed through the frontend in batches, one shard SIGKILLed
# mid-traffic. Asserts, in order:
#   1. warm traffic is 100% ok with both shards up,
#   2. the batches straddling the kill stay within a 1% error budget
#      (failover re-routes in-flight work to the survivor),
#   3. the survivor serves 100% after the kill,
#   4. hot reload through the frontend still succeeds (the Dead shard
#      is skipped, every live shard swaps),
#   5. the observability surface survives the drill: the merged fleet
#      trace and the federated metrics export are valid JSON, the
#      frontend's event log and metrics scrape are valid JSON-lines,
#      and the --fleet-top console renders.
# Environment: TAGLETS_RUN (taglets_run binary, default build/tools/),
# TAGLETS_FLEET_MODEL (pre-built model.bin; built here when unset),
# TAGLETS_FLEET_ARTIFACTS (copy trace/metrics/events/scrape artifacts
# into this directory for CI upload; unset = skip).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN=${TAGLETS_RUN:-build/tools/taglets_run}
DIR=$(mktemp -d /tmp/taglets_fleet_smoke.XXXXXX)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

MODEL=${TAGLETS_FLEET_MODEL:-$DIR/model.bin}
if [ ! -f "$MODEL" ]; then
  echo "[fleet-smoke] building a pipeline model..."
  $RUN --dataset fmd --shots 1 --scale 0.05 --modules transfer,prototype \
    --save "$MODEL" >/dev/null
fi

echo "[fleet-smoke] starting 2 shards + frontend (tracing on fleet-wide)"
TAGLETS_TRACE=1 $RUN --fleet-shard --load "$MODEL" \
  --fleet-endpoint "unix:$DIR/s0.sock" &
S0=$!; PIDS+=("$S0")
TAGLETS_TRACE=1 $RUN --fleet-shard --load "$MODEL" \
  --fleet-endpoint "unix:$DIR/s1.sock" &
S1=$!; PIDS+=("$S1")
TAGLETS_TRACE=1 $RUN --fleet-frontend --fleet-endpoint "unix:$DIR/front.sock" \
  --fleet-groups "g0=unix:$DIR/s0.sock;g1=unix:$DIR/s1.sock" \
  --fleet-heartbeat-ms 20 --fleet-suspect-ms 150 --fleet-dead-ms 500 \
  --fleet-events-out "$DIR/events.jsonl" \
  --fleet-scrape-out "$DIR/scrape.jsonl" --fleet-scrape-interval-ms 250 &
FE=$!; PIDS+=("$FE")

ready=0
for _ in $(seq 1 100); do
  if $RUN --fleet-connect "unix:$DIR/front.sock" --fleet-ping \
      >/dev/null 2>&1; then
    ready=1; break
  fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "FAIL: frontend never became reachable"; exit 1; }

echo "[fleet-smoke] warm traffic (must be 100% ok)"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-predict 200

echo "[fleet-smoke] pushing load, SIGKILLing shard 0 mid-traffic"
(
  for _ in $(seq 1 30); do
    $RUN --fleet-connect "unix:$DIR/front.sock" --fleet-predict 200 \
      >> "$DIR/kill_batches.out" 2>&1 || true
  done
) &
LOAD=$!
sleep 0.4
kill -9 "$S0"
wait "$LOAD"
sent=$(grep -o 'sent=[0-9]*' "$DIR/kill_batches.out" \
  | awk -F= '{s+=$2} END{print s+0}')
ok=$(grep -o 'ok=[0-9]*' "$DIR/kill_batches.out" \
  | awk -F= '{s+=$2} END{print s+0}')
echo "[fleet-smoke] kill-window traffic: $ok/$sent ok"
[ "$sent" -eq 6000 ] || { echo "FAIL: expected 6000 sends, saw $sent"; exit 1; }
budget=$((sent / 100))  # 1% error budget around the kill
[ $((sent - ok)) -le "$budget" ] || {
  echo "FAIL: $((sent - ok)) failures exceed the $budget budget"; exit 1; }

echo "[fleet-smoke] survivor must serve 100%"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-predict 500

# Give the health machine time to move the killed shard to Dead so the
# reload broadcast skips it instead of failing on a connect.
sleep 1.5
echo "[fleet-smoke] hot reload with one shard dead"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-reload "$MODEL"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-stats
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-predict 200

echo "[fleet-smoke] observability drill (trace merge, federation, console)"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-trace-dump "$DIR/trace.json"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-metrics-out "$DIR/metrics.json"
$RUN --fleet-connect "unix:$DIR/front.sock" --fleet-top \
  --fleet-top-iters 2 --fleet-top-interval-ms 200 | tee "$DIR/top.out"
grep -q 'SHARD' "$DIR/top.out" || { echo "FAIL: --fleet-top rendered nothing"; exit 1; }
grep -q 'g1' "$DIR/top.out" || { echo "FAIL: --fleet-top missing survivor shard"; exit 1; }

python3 -m json.tool "$DIR/trace.json" >/dev/null \
  || { echo "FAIL: merged trace is not valid JSON"; exit 1; }
python3 -m json.tool "$DIR/metrics.json" >/dev/null \
  || { echo "FAIL: federated metrics export is not valid JSON"; exit 1; }
# The merged trace must carry at least two process lanes (frontend +
# surviving shard) even after the SIGKILL took one buffer with it.
python3 - "$DIR/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
pids = {e["pid"] for e in events}
assert len(pids) >= 2, f"expected >=2 process lanes, got {sorted(pids)}"
names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
assert any(n == "frontend" for n in names), names
assert any(n.startswith("shard") for n in names), names
EOF

kill -TERM "$S1" "$FE"
wait "$S1" "$FE" 2>/dev/null || true
PIDS=()

# Event log and scrape series are written by the frontend; validate
# after it exits so the files are complete. Both are JSON-lines.
[ -s "$DIR/events.jsonl" ] || { echo "FAIL: event log empty"; exit 1; }
[ -s "$DIR/scrape.jsonl" ] || { echo "FAIL: metrics scrape empty"; exit 1; }
while IFS= read -r line; do
  printf '%s' "$line" | python3 -m json.tool >/dev/null \
    || { echo "FAIL: bad event log line: $line"; exit 1; }
done < "$DIR/events.jsonl"
head -5 "$DIR/scrape.jsonl" | while IFS= read -r line; do
  printf '%s' "$line" | python3 -m json.tool >/dev/null \
    || { echo "FAIL: bad scrape line"; exit 1; }
done
grep -q '"event":"health"' "$DIR/events.jsonl" \
  || { echo "FAIL: no health transitions in event log"; exit 1; }
grep -q '"event":"reload"' "$DIR/events.jsonl" \
  || { echo "FAIL: no reload event in event log"; exit 1; }

if [ -n "${TAGLETS_FLEET_ARTIFACTS:-}" ]; then
  mkdir -p "$TAGLETS_FLEET_ARTIFACTS"
  cp "$DIR/trace.json" "$DIR/metrics.json" "$DIR/events.jsonl" \
     "$DIR/scrape.jsonl" "$DIR/top.out" "$TAGLETS_FLEET_ARTIFACTS/"
  echo "[fleet-smoke] artifacts copied to $TAGLETS_FLEET_ARTIFACTS"
fi
echo "[fleet-smoke] PASS"
