// taglets_lint — project-invariant linter for the TAGLETS source tree.
//
// Enforces rules the compiler can't (see docs/CORRECTNESS.md for the
// catalog): CMake layering (a module may only include modules its
// library links, so obs < util < tensor < everything stays acyclic),
// no raw sync primitives outside util/sync.hpp, predicate-carrying
// condition-variable waits, no naked std::thread outside util/, no C
// randomness/clock outside util/rng, own-header-first includes, and no
// using-namespace in headers. Std-only on purpose: the linter must build before (and
// independently of) everything it checks.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace taglets::lint {

struct Violation {
  std::string file;       // path relative to the scanned root's parent
  std::size_t line = 0;   // 1-based; 0 when the finding is file-level
  std::string rule;       // rule id
  std::string message;
  std::string suggestion; // --fix-style hint, always populated
};

struct Rule {
  std::string id;
  std::string description;
  // Path suffixes (e.g. "serve/server.hpp") or include targets exempt
  // from the rule, each with a recorded justification.
  std::vector<std::pair<std::string, std::string>> allowlist;
};

/// The rule table. Order is the order findings are reported in.
const std::vector<Rule>& rules();

/// Remove //- and /* */-comments and string/char literal contents
/// (keeping newlines) so token scans don't fire on prose. Exposed for
/// tests.
std::string strip_comments_and_strings(const std::string& text);

class Linter {
 public:
  /// `src_root` is the directory holding one subdirectory per module,
  /// each with its own CMakeLists.txt (i.e. the repo's src/).
  explicit Linter(std::filesystem::path src_root);

  /// Run every rule (or only `only` when non-empty) over the tree.
  std::vector<Violation> run(const std::set<std::string>& only = {}) const;

  /// Module dependency closure parsed from the CMakeLists files;
  /// exposed for tests and for --explain output.
  const std::map<std::string, std::set<std::string>>& closure() const {
    return closure_;
  }

 private:
  struct SourceFile {
    std::filesystem::path path;
    std::string module;      // first path component under src_root
    std::string rel;         // "src/<module>/<name>"
    std::string text;        // raw contents
    std::string code;        // comments/strings stripped
  };

  void parse_cmake_layering();
  std::vector<SourceFile> load_sources() const;

  void check_layering(const SourceFile& f, std::vector<Violation>& out) const;
  void check_naked_mutex(const SourceFile& f,
                         std::vector<Violation>& out) const;
  void check_cv_wait_predicate(const SourceFile& f,
                               std::vector<Violation>& out) const;
  void check_naked_thread(const SourceFile& f,
                          std::vector<Violation>& out) const;
  void check_rand_time(const SourceFile& f, std::vector<Violation>& out) const;
  void check_own_header_first(const SourceFile& f,
                              std::vector<Violation>& out) const;
  void check_using_namespace(const SourceFile& f,
                             std::vector<Violation>& out) const;

  std::filesystem::path src_root_;
  // dir name -> library name (e.g. "taglets" -> "taglets_core")
  std::map<std::string, std::string> dir_to_lib_;
  // dir name -> set of dir names it may include (transitive, no self)
  std::map<std::string, std::set<std::string>> closure_;
};

/// Render violations in "file:line: [rule] message" + suggestion form.
std::string format_report(const std::vector<Violation>& violations);

}  // namespace taglets::lint
