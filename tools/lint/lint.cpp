#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

namespace taglets::lint {

namespace fs = std::filesystem;

const std::vector<Rule>& rules() {
  static const std::vector<Rule> table = {
      {"layering",
       "a module may only #include modules its CMake library links "
       "(transitively); keeps obs < util < tensor < everything acyclic",
       {{"util/check.hpp",
         "contracts header is std-only and sits below every layer"},
        {"util/sync.hpp",
         "annotated sync primitives are header-only and std-only, so "
         "obs (below util) may use them without linking taglets_util"}}},
      {"naked-mutex",
       "no raw std::mutex/std::shared_mutex/std::condition_variable "
       "outside util/sync.hpp — locking goes through the annotated, "
       "rank-checked util::Mutex family",
       {{"util/sync.hpp",
         "the annotated wrapper layer is the single place raw "
         "primitives may live; everything else builds on it"}}},
      {"cv-wait-predicate",
       "every condition-variable wait must carry a predicate — a bare "
       "wait hangs on a spurious wakeup or a lost notify",
       {}},
      {"naked-thread",
       "no std::thread/std::jthread outside util/ — concurrency goes "
       "through util::Parallel / util::ThreadPool",
       {{"serve/server.hpp",
         "the server owns its worker threads by design (drain/shutdown "
         "semantics need raw join control)"},
        {"serve/server.cpp",
         "the server owns its worker threads by design (drain/shutdown "
         "semantics need raw join control)"},
        {"fleet/shard.hpp",
         "socket accept/reader/writer threads need raw join control for "
         "drain and SIGKILL-failover semantics"},
        {"fleet/shard.cpp",
         "socket accept/reader/writer threads need raw join control for "
         "drain and SIGKILL-failover semantics"},
        {"fleet/frontend.hpp",
         "heartbeat/accept/channel-reader threads need raw join control "
         "for failover and eviction semantics"},
        {"fleet/frontend.cpp",
         "heartbeat/accept/channel-reader threads need raw join control "
         "for failover and eviction semantics"},
        {"fleet/client.hpp",
         "the response-matching reader thread is the client's core "
         "pipelining mechanism"},
        {"fleet/client.cpp",
         "the response-matching reader thread is the client's core "
         "pipelining mechanism"}}},
      {"rand-time",
       "no rand()/srand()/time() outside util/rng — randomness must be "
       "seeded and reproducible via util::Rng",
       {}},
      {"own-header-first",
       "every .cpp must #include its own header first so headers are "
       "proven self-contained",
       {}},
      {"using-namespace-header",
       "no `using namespace` at namespace scope in headers — it leaks "
       "into every includer",
       {}},
  };
  return table;
}

namespace {

const Rule& rule_by_id(const std::string& id) {
  for (const Rule& r : rules()) {
    if (r.id == id) return r;
  }
  throw std::logic_error("unknown lint rule: " + id);
}

bool allowlisted(const std::string& rule_id, const std::string& needle) {
  for (const auto& [suffix, justification] : rule_by_id(rule_id).allowlist) {
    (void)justification;
    if (needle.size() >= suffix.size() &&
        needle.compare(needle.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Finds `token` at offsets where it is not preceded by an identifier
/// character or member access (`.`/`->`), and is followed (after
/// optional spaces) by `(` when `call_only` is set.
std::vector<std::size_t> find_token(const std::string& code,
                                    const std::string& token,
                                    bool call_only) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    std::size_t before = pos;
    while (before > 0 &&
           (code[before - 1] == ' ' || code[before - 1] == '\t')) {
      --before;
    }
    const bool member_access =
        before > 0 &&
        (code[before - 1] == '.' ||
         (before > 1 && code[before - 2] == '-' && code[before - 1] == '>'));
    const bool boundary =
        (pos == 0 || !ident_char(code[pos - 1])) && !member_access;
    std::size_t after = pos + token.size();
    bool call = true;
    if (call_only) {
      while (after < code.size() && (code[after] == ' ' || code[after] == '\t'))
        ++after;
      call = after < code.size() && code[after] == '(';
    }
    if (boundary && call) hits.push_back(pos);
    pos += token.size();
  }
  return hits;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

Linter::Linter(fs::path src_root) : src_root_(std::move(src_root)) {
  parse_cmake_layering();
}

void Linter::parse_cmake_layering() {
  // Pass 1: dir -> library name from add_library(<name> ...).
  std::map<std::string, std::string> lib_to_dir;
  std::map<std::string, std::string> cmake_text;
  for (const auto& entry : fs::directory_iterator(src_root_)) {
    if (!entry.is_directory()) continue;
    const std::string dir = entry.path().filename().string();
    const fs::path cmake = entry.path() / "CMakeLists.txt";
    if (!fs::exists(cmake)) continue;
    std::ifstream in(cmake);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    cmake_text[dir] = text;
    const std::size_t pos = text.find("add_library(");
    if (pos == std::string::npos) continue;
    std::size_t start = pos + std::string("add_library(").size();
    std::size_t end = start;
    while (end < text.size() && !std::isspace(static_cast<unsigned char>(text[end])) &&
           text[end] != ')')
      ++end;
    const std::string lib = text.substr(start, end - start);
    dir_to_lib_[dir] = lib;
    lib_to_dir[lib] = dir;
  }

  // Pass 2: direct deps from target_link_libraries(<lib> ... <dep>...).
  std::map<std::string, std::set<std::string>> direct;
  for (const auto& [dir, text] : cmake_text) {
    direct[dir];  // every module gets an entry, even leaf ones
    std::size_t pos = 0;
    while ((pos = text.find("target_link_libraries(", pos)) !=
           std::string::npos) {
      const std::size_t close = text.find(')', pos);
      if (close == std::string::npos) break;
      std::istringstream args(
          text.substr(pos + std::string("target_link_libraries(").size(),
                      close - pos - std::string("target_link_libraries(").size()));
      std::string word;
      while (args >> word) {
        auto it = lib_to_dir.find(word);
        if (it != lib_to_dir.end() && it->second != dir) {
          direct[dir].insert(it->second);
        }
      }
      pos = close;
    }
  }

  // Transitive closure.
  for (const auto& [dir, deps] : direct) {
    std::set<std::string>& reach = closure_[dir];
    std::vector<std::string> stack(deps.begin(), deps.end());
    while (!stack.empty()) {
      const std::string d = stack.back();
      stack.pop_back();
      if (!reach.insert(d).second) continue;
      auto it = direct.find(d);
      if (it == direct.end()) continue;
      for (const std::string& dd : it->second) stack.push_back(dd);
    }
  }
}

std::vector<Linter::SourceFile> Linter::load_sources() const {
  std::vector<SourceFile> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root_)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc")
      continue;
    SourceFile f;
    f.path = entry.path();
    const fs::path rel = fs::relative(entry.path(), src_root_);
    f.module = rel.begin()->string();
    f.rel = (src_root_.filename() / rel).generic_string();
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    f.text = ss.str();
    f.code = strip_comments_and_strings(f.text);
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return files;
}

void Linter::check_layering(const SourceFile& f,
                            std::vector<Violation>& out) const {
  std::size_t pos = 0;
  // Quoted includes survive in `text`, not `code` (they are string
  // literals), so scan the raw text but only at line starts.
  while ((pos = f.text.find("#include \"", pos)) != std::string::npos) {
    if (pos != 0 && f.text[pos - 1] != '\n') {
      pos += 1;
      continue;
    }
    const std::size_t start = pos + std::string("#include \"").size();
    const std::size_t close = f.text.find('"', start);
    if (close == std::string::npos) break;
    const std::string target = f.text.substr(start, close - start);
    pos = close;
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // in-module relative include
    const std::string target_module = target.substr(0, slash);
    if (target_module == f.module) continue;
    if (closure_.count(target_module) == 0) continue;  // not a module path
    if (allowlisted("layering", target)) continue;
    auto it = closure_.find(f.module);
    const bool allowed =
        it != closure_.end() && it->second.count(target_module) > 0;
    if (!allowed) {
      out.push_back(
          {f.rel, line_of_offset(f.text, pos), "layering",
           "includes \"" + target + "\" but module '" + f.module +
               "' does not link '" + target_module + "' in CMake",
           "link taglets_" + target_module + " (or the owning library) in " +
               "src/" + f.module + "/CMakeLists.txt, or move the shared " +
               "code to a lower layer"});
    }
  }
}

void Linter::check_naked_thread(const SourceFile& f,
                                std::vector<Violation>& out) const {
  if (f.module == "util") return;
  if (allowlisted("naked-thread", f.rel)) return;
  for (const std::string token : {"std::thread", "std::jthread"}) {
    for (std::size_t off : find_token(f.code, token, /*call_only=*/false)) {
      out.push_back({f.rel, line_of_offset(f.code, off), "naked-thread",
                     "uses " + token + " outside util/",
                     "run the work through util::Parallel / "
                     "util::ThreadPool, or allowlist this file in "
                     "tools/lint/lint.cpp with a justification"});
    }
  }
}

void Linter::check_naked_mutex(const SourceFile& f,
                               std::vector<Violation>& out) const {
  if (allowlisted("naked-mutex", f.rel)) return;
  for (const std::string token :
       {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
        "std::timed_mutex", "std::condition_variable_any",
        "std::condition_variable"}) {
    for (std::size_t off : find_token(f.code, token, /*call_only=*/false)) {
      // find_token checks only the leading boundary; reject trailing
      // identifier continuation so std::condition_variable does not
      // also fire inside std::condition_variable_any.
      const std::size_t end = off + token.size();
      if (end < f.code.size() && ident_char(f.code[end])) continue;
      out.push_back({f.rel, line_of_offset(f.code, off), "naked-mutex",
                     "uses " + token + " outside util/sync.hpp",
                     "use util::Mutex / util::SharedMutex / util::CondVar "
                     "(util/sync.hpp) so the lock carries a name, a rank, "
                     "and thread-safety annotations, or allowlist this "
                     "file in tools/lint/lint.cpp with a justification"});
    }
  }
}

void Linter::check_cv_wait_predicate(const SourceFile& f,
                                     std::vector<Violation>& out) const {
  if (allowlisted("cv-wait-predicate", f.rel)) return;
  // A predicate-bearing call has 2 args for wait and 3 for
  // wait_for/wait_until (lock [, time], predicate). Receivers are
  // matched by naming convention: an identifier ending in "cv" after
  // trailing underscores (cv_, q_cv, heartbeat_cv_, ...).
  static constexpr struct {
    const char* method;
    std::size_t min_args;
  } kWaits[] = {{"wait_until", 3}, {"wait_for", 3}, {"wait", 2}};
  for (const auto& w : kWaits) {
    const std::string method = w.method;
    std::size_t pos = 0;
    while ((pos = f.code.find(method, pos)) != std::string::npos) {
      const std::size_t off = pos;
      pos += method.size();
      // Method call: preceded by '.' or '->', followed by '('.
      if (off == 0) continue;
      std::size_t recv_end = off;
      if (f.code[off - 1] == '.') {
        recv_end = off - 1;
      } else if (off >= 2 && f.code[off - 2] == '-' &&
                 f.code[off - 1] == '>') {
        recv_end = off - 2;
      } else {
        continue;
      }
      std::size_t open = off + method.size();
      if (open >= f.code.size() || f.code[open] != '(') continue;
      // Receiver identifier must look like a condition variable.
      std::size_t recv_begin = recv_end;
      while (recv_begin > 0 && ident_char(f.code[recv_begin - 1])) {
        --recv_begin;
      }
      std::string recv = f.code.substr(recv_begin, recv_end - recv_begin);
      while (!recv.empty() && recv.back() == '_') recv.pop_back();
      if (recv.size() < 2 || recv.compare(recv.size() - 2, 2, "cv") != 0) {
        continue;
      }
      // Count top-level arguments of the balanced call.
      int paren = 1;
      int brace = 0;
      int brack = 0;
      bool any = false;
      std::size_t args = 1;
      for (std::size_t i = open + 1; i < f.code.size() && paren > 0; ++i) {
        const char c = f.code[i];
        if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        else if (c == '[') ++brack;
        else if (c == ']') --brack;
        else if (c == ',' && paren == 1 && brace == 0 && brack == 0) ++args;
        if (paren > 0 && c != ' ' && c != '\t' && c != '\n') any = true;
      }
      if (!any) args = 0;
      if (args >= w.min_args) continue;
      out.push_back(
          {f.rel, line_of_offset(f.code, off), "cv-wait-predicate",
           recv + "." + method + " without a predicate",
           "pass the wakeup condition as the final argument so spurious "
           "wakeups and lost notifies cannot hang the wait "
           "(util::CondVar only offers predicate waits)"});
    }
  }
}

void Linter::check_rand_time(const SourceFile& f,
                             std::vector<Violation>& out) const {
  if (f.module == "util" &&
      f.path.filename().string().rfind("rng", 0) == 0)
    return;
  for (const std::string token : {"rand", "srand", "time"}) {
    for (std::size_t off : find_token(f.code, token, /*call_only=*/true)) {
      // `std::time(` is caught via the bare token after `::`; skip
      // member calls like `.time(` explicitly — the project has none,
      // but synthetic trees in tests might.
      if (off >= 1 && (f.code[off - 1] == '.')) continue;
      out.push_back({f.rel, line_of_offset(f.code, off), "rand-time",
                     "calls " + token + "() outside util/rng",
                     "use util::Rng so results are seeded and "
                     "reproducible across runs and thread counts"});
    }
  }
}

void Linter::check_own_header_first(const SourceFile& f,
                                    std::vector<Violation>& out) const {
  if (f.path.extension() != ".cpp" && f.path.extension() != ".cc") return;
  fs::path header = f.path;
  header.replace_extension(".hpp");
  if (!fs::exists(header)) return;  // mains and test drivers are exempt
  const std::string expected =
      f.module + "/" + header.filename().string();
  const std::size_t first_quoted = f.text.find("#include \"");
  const std::size_t first_angled = f.text.find("#include <");
  if (first_quoted == std::string::npos) return;
  std::string got;
  bool ok = false;
  if (first_angled == std::string::npos || first_quoted < first_angled) {
    const std::size_t start = first_quoted + std::string("#include \"").size();
    const std::size_t close = f.text.find('"', start);
    got = f.text.substr(start, close - start);
    // Accept both "module/name.hpp" and a plain "name.hpp" relative
    // include — what matters is that the file's own header leads.
    ok = got == expected || got == header.filename().string();
  } else {
    got = "<a system header>";
  }
  if (!ok) {
    out.push_back({f.rel,
                   line_of_offset(f.text, first_angled != std::string::npos
                                              ? std::min(first_quoted,
                                                         first_angled)
                                              : first_quoted),
                   "own-header-first",
                   "first #include is \"" + got + "\", expected \"" +
                       expected + "\"",
                   "move #include \"" + expected +
                       "\" to the top so the header is proven "
                       "self-contained"});
  }
}

void Linter::check_using_namespace(const SourceFile& f,
                                   std::vector<Violation>& out) const {
  if (f.path.extension() != ".hpp" && f.path.extension() != ".h") return;
  for (std::size_t off : find_token(f.code, "using namespace",
                                    /*call_only=*/false)) {
    out.push_back({f.rel, line_of_offset(f.code, off),
                   "using-namespace-header",
                   "`using namespace` at header scope leaks into every "
                   "includer",
                   "qualify the names, or scope the directive inside a "
                   "function body in a .cpp"});
  }
}

std::vector<Violation> Linter::run(const std::set<std::string>& only) const {
  std::vector<Violation> out;
  const auto enabled = [&](const char* id) {
    return only.empty() || only.count(id) > 0;
  };
  for (const SourceFile& f : load_sources()) {
    if (enabled("layering")) check_layering(f, out);
    if (enabled("naked-mutex")) check_naked_mutex(f, out);
    if (enabled("cv-wait-predicate")) check_cv_wait_predicate(f, out);
    if (enabled("naked-thread")) check_naked_thread(f, out);
    if (enabled("rand-time")) check_rand_time(f, out);
    if (enabled("own-header-first")) check_own_header_first(f, out);
    if (enabled("using-namespace-header")) check_using_namespace(f, out);
  }
  return out;
}

std::string format_report(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
       << "\n  suggestion: " << v.suggestion << "\n";
  }
  return os.str();
}

}  // namespace taglets::lint
