#include "modules/module.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace taglets::modules {

namespace {

constexpr char kTagletMagic[4] = {'T', 'G', 'T', 'A'};
constexpr std::uint32_t kMaxNameLength = 1u << 12;

}  // namespace

void Taglet::save(std::ostream& out) const {
  out.write(kTagletMagic, sizeof(kTagletMagic));
  const std::uint32_t len = static_cast<std::uint32_t>(name_.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(name_.data(), len);
  model_.save(out);
  if (!out) throw std::runtime_error("Taglet::save: stream failure");
}

Taglet Taglet::load(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTagletMagic, sizeof(kTagletMagic)) != 0) {
    throw std::runtime_error("Taglet::load: bad magic (not a taglet file)");
  }
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in) throw std::runtime_error("Taglet::load: truncated header");
  if (len == 0 || len > kMaxNameLength) {
    throw std::runtime_error("Taglet::load: corrupt name length");
  }
  std::string name(len, '\0');
  in.read(name.data(), len);
  if (!in) throw std::runtime_error("Taglet::load: truncated name");
  util::Rng rng(0);
  return Taglet(std::move(name), nn::Classifier::load(in, rng));
}

std::size_t scaled_epochs(std::size_t epochs, const ModuleContext& context) {
  const double scaled = std::max(1.0, std::floor(static_cast<double>(epochs) *
                                                 context.epoch_scale));
  return static_cast<std::size_t>(scaled);
}

util::Rng module_rng(const ModuleContext& context, const std::string& name) {
  return util::Rng(util::combine_seeds(
      {context.train_seed, std::hash<std::string>{}(name)}));
}

}  // namespace taglets::modules
