#include "modules/module.hpp"

#include <algorithm>
#include <cmath>

namespace taglets::modules {

std::size_t scaled_epochs(std::size_t epochs, const ModuleContext& context) {
  const double scaled = std::max(1.0, std::floor(static_cast<double>(epochs) *
                                                 context.epoch_scale));
  return static_cast<std::size_t>(scaled);
}

util::Rng module_rng(const ModuleContext& context, const std::string& name) {
  return util::Rng(util::combine_seeds(
      {context.train_seed, std::hash<std::string>{}(name)}));
}

}  // namespace taglets::modules
