// Module / Taglet abstractions (Section 3.2). A module m consumes any of
// the labeled target data X, the unlabeled data U, and the SCADS-selected
// auxiliary data R, and returns a *taglet*: a trained classifier mapping
// an example to a probability vector over the target classes. Modules
// are trained independently and their taglets ensembled in the
// distillation stage.
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "backbone/zoo.hpp"
#include "nn/classifier.hpp"
#include "scads/selection.hpp"
#include "synth/split.hpp"

namespace taglets::modules {

/// A trained pseudo-labeler over the target label space.
class Taglet {
 public:
  Taglet(std::string name, nn::Classifier model)
      : name_(std::move(name)), model_(std::move(model)) {}

  const std::string& name() const { return name_; }

  /// Probability vectors, one row per input (rows sum to 1) — the
  /// t_m : x -> [0,1]^|Y_T| of Section 3.2.
  tensor::Tensor predict_proba(const tensor::Tensor& inputs) {
    return model_.predict_proba(inputs);
  }
  std::vector<std::size_t> predict(const tensor::Tensor& inputs) {
    return model_.predict(inputs);
  }

  nn::Classifier& model() { return model_; }
  const nn::Classifier& model() const { return model_; }

  /// Binary (de)serialization for stage checkpointing
  /// (docs/ROBUSTNESS.md): magic "TGTA", the module name, then the
  /// classifier. Weights round-trip bit for bit, so a reloaded taglet
  /// votes identically to the one that was trained. load throws
  /// std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  static Taglet load(std::istream& in);

 private:
  std::string name_;
  nn::Classifier model_;
};

class ZslKgEngine;  // forward declaration (zsl_kg.hpp)

/// Everything a module may read while training. Pointers are non-owning
/// and must outlive the train() call.
struct ModuleContext {
  const synth::FewShotTask* task = nullptr;
  const scads::Scads* scads = nullptr;
  /// Pre-computed auxiliary selection R shared by all modules.
  const scads::Selection* selection = nullptr;
  /// The backbone phi this run uses.
  const backbone::Pretrained* backbone = nullptr;
  /// Pretrained zero-shot engine (may be null; the ZSL-KG module then
  /// throws, and the controller skips it).
  ZslKgEngine* zsl_engine = nullptr;
  /// Seed controlling head init, shuffling, and augmentation.
  std::uint64_t train_seed = 0;
  /// Global scale on training epochs (tests use < 1 for speed).
  double epoch_scale = 1.0;
};

/// A training method tailored to exploit SCADS (Section 3.2).
class Module {
 public:
  virtual ~Module() = default;
  virtual std::string name() const = 0;
  virtual Taglet train(const ModuleContext& context) const = 0;
};

/// Epoch count after applying the context's scale (min 1).
std::size_t scaled_epochs(std::size_t epochs, const ModuleContext& context);

/// Fresh RNG for a module, decorrelated across modules by name.
util::Rng module_rng(const ModuleContext& context, const std::string& name);

}  // namespace taglets::modules
