#include "modules/zsl_kg.hpp"

#include <limits>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace taglets::modules {

using tensor::Tensor;

ZslKgEngine::ZslKgEngine(backbone::Zoo& zoo, Config config)
    : gnn_([&] {
        TrGcn::Config gc;
        gc.input_dim = zoo.world().config().word_dim;
        gc.hidden_dim = config.hidden_dim;
        gc.output_dim = zoo.config().feature_dim + 1;  // weights + bias
        util::Rng rng(util::combine_seeds({zoo.world().config().seed, 0x25E1ULL}));
        return TrGcn(gc, rng);
      }()),
      encoder_(zoo.get(backbone::Kind::kRn50S).encoder),
      feature_dim_(zoo.config().feature_dim) {
  const auto& reference = zoo.zsl_reference();
  const auto& world = zoo.world();
  const Tensor& features = world.scads_embeddings();
  const graph::KnowledgeGraph& graph = world.graph();

  // Targets: concatenated [head weight row ; bias] per reference concept.
  const std::size_t n = reference.concepts.size();
  const std::size_t out_dim = feature_dim_ + 1;
  std::vector<Tensor> targets;
  targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor t = Tensor::zeros(out_dim);
    auto wrow = reference.weights.row(i);
    for (std::size_t d = 0; d < feature_dim_; ++d) t[d] = wrow[d];
    t[feature_dim_] = reference.biases[i];
    targets.push_back(std::move(t));
  }

  // Train / validation class split (paper: 950/50).
  util::Rng rng(util::combine_seeds({world.config().seed, 0x25E2ULL}));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t n_val = std::min(config.val_classes, n / 5);
  std::vector<std::size_t> val(order.begin(),
                               order.begin() + static_cast<long>(n_val));
  std::vector<std::size_t> train(order.begin() + static_cast<long>(n_val),
                                 order.end());

  nn::Adam::Config adam;
  adam.lr = config.lr;
  adam.weight_decay = config.weight_decay;
  nn::Adam optimizer(gnn_.parameters(), adam);

  auto evaluate = [&](const std::vector<std::size_t>& subset) {
    double total = 0.0;
    for (std::size_t i : subset) {
      Tensor pred = gnn_.predict(graph, features, reference.concepts[i]);
      auto loss = nn::mse(pred, targets[i]);
      total += loss.loss;
    }
    return subset.empty() ? 0.0 : total / static_cast<double>(subset.size());
  };

  best_val_loss_ = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best = gnn_.snapshot();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(train);
    for (std::size_t start = 0; start < train.size();
         start += config.batch_size) {
      const std::size_t end = std::min(train.size(), start + config.batch_size);
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = train[k];
        auto cache = gnn_.forward(graph, features, reference.concepts[i]);
        auto loss = nn::mse(cache.output, targets[i]);
        // Average over the batch.
        Tensor grad = loss.grad_logits;
        const float inv = 1.0f / static_cast<float>(end - start);
        for (float& g : grad.data()) g *= inv;
        gnn_.backward(cache, grad);
      }
      optimizer.step();
    }
    const double val_loss = evaluate(val);
    if (val_loss < best_val_loss_) {
      best_val_loss_ = val_loss;
      best = gnn_.snapshot();
    }
  }
  gnn_.restore(best);
  TAGLETS_LOG(kInfo) << "ZSL-KG engine pretrained; best val MSE "
                     << best_val_loss_;
}

nn::Linear ZslKgEngine::predict_head(
    const scads::Scads& scads,
    const std::vector<std::string>& class_names) const {
  const std::size_t c_count = class_names.size();
  Tensor weight = Tensor::zeros(feature_dim_, c_count);
  Tensor bias = Tensor::zeros(c_count);
  const Tensor& features = scads.embeddings().embeddings();
  for (std::size_t c = 0; c < c_count; ++c) {
    const auto id = scads.find_concept(class_names[c]);
    if (!id) {
      TAGLETS_LOG(kWarn) << "ZSL-KG: class '" << class_names[c]
                         << "' not in SCADS graph; predicting zeros";
      continue;
    }
    Tensor z = gnn_.predict(scads.graph(), features, *id);
    for (std::size_t d = 0; d < feature_dim_; ++d) weight.at(d, c) = z[d];
    bias[c] = z[feature_dim_];
  }
  return nn::Linear(std::move(weight), std::move(bias));
}

Taglet ZslKgModule::train(const ModuleContext& context) const {
  TAGLETS_CHECK(!(context.zsl_engine == nullptr ||
                context.scads == nullptr ||
                context.task == nullptr),
                "ZslKgModule: incomplete context");
  nn::Linear head = context.zsl_engine->predict_head(
      *context.scads, context.task->class_names);
  nn::Classifier model(context.zsl_engine->encoder(), std::move(head));
  return Taglet(name(), std::move(model));
}

}  // namespace taglets::modules
