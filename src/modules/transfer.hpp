// Transfer module (Section 3.2.1): sequential fine-tuning. First the
// backbone is fine-tuned on the SCADS-selected auxiliary set R as an
// (N*C)-way classification task (Eq. 1, the intermediate phase), then
// the resulting encoder is fine-tuned on the labeled target examples X
// with a fresh C-way head (Eq. 2).
#pragma once

#include "modules/module.hpp"

namespace taglets::modules {

struct TransferConfig {
  std::size_t aux_epochs = 5;      // intermediate phase (paper: 5 epochs)
  std::size_t target_epochs = 30;  // target phase (paper: 40 w/ decay 20,30)
  std::size_t batch_size = 64;
  double aux_lr = 0.003;
  double target_lr = 0.003;  // paper's fine-tuning learning rate
  double momentum = 0.9;
  /// Step floors so 1-shot tasks still get enough optimizer updates.
  std::size_t aux_min_steps = 1200;
  std::size_t target_min_steps = 800;
  /// Step-decay milestones for the target phase, as fractions of total
  /// steps (the paper decays at epochs 20 and 30 of 40).
  std::vector<double> target_milestones{0.5, 0.75};
};

class TransferModule : public Module {
 public:
  explicit TransferModule(TransferConfig config = {}) : config_(config) {}
  std::string name() const override { return "transfer"; }
  Taglet train(const ModuleContext& context) const override;

 private:
  TransferConfig config_;
};

}  // namespace taglets::modules
