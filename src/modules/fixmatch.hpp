// FixMatch module (Section 3.2.3): inductive semi-supervised learning
// with pseudo-labeling + consistency regularization. To curb
// confirmation bias under very limited labels, the module first
// fine-tunes the pretrained backbone on the SCADS-selected auxiliary
// data R, then runs FixMatch over X and U. The SSL core is shared with
// the FixMatch *baseline* (Section 4.2), which skips the SCADS phase.
#pragma once

#include "modules/module.hpp"
#include "synth/augment.hpp"

namespace taglets::modules {

struct FixMatchConfig {
  std::size_t pretrain_epochs = 5;  // on R (paper: five epochs)
  double pretrain_lr = 0.003;
  std::size_t pretrain_min_steps = 800;
  std::size_t ssl_epochs = 15;  // labeled+unlabeled phase
  std::size_t ssl_min_steps = 800;
  std::size_t batch_size = 64;
  double lr = 0.003;
  double momentum = 0.9;  // Nesterov (paper uses Nesterov momentum)
  double tau = 0.80;      // pseudo-label confidence threshold
  double lambda_u = 1.0;  // unlabeled loss weight
  synth::AugmentConfig augment{};
};

/// The FixMatch SSL loop itself, starting from `encoder`. Used by both
/// the TAGLETS module and the baseline. Applies the paper's
/// eta*cos(7*pi*k/16K) learning-rate decay.
nn::Classifier fixmatch_train(const synth::FewShotTask& task,
                              const nn::Sequential& encoder,
                              std::size_t feature_dim,
                              const FixMatchConfig& config, util::Rng& rng,
                              double epoch_scale = 1.0);

class FixMatchModule : public Module {
 public:
  explicit FixMatchModule(FixMatchConfig config = {}) : config_(config) {}
  std::string name() const override { return "fixmatch"; }
  Taglet train(const ModuleContext& context) const override;

 private:
  FixMatchConfig config_;
};

}  // namespace taglets::modules
