// Prototype module: a training-free taglet in the spirit of
// Prototypical Networks (Snell et al. 2017, cited by the paper among
// few-shot approaches). Class prototypes are mean backbone features of
// the labeled shots plus the SCADS-selected auxiliary images of each
// class's related concepts; the classification head scores examples by
// (negative squared) distance to the prototypes. Registered in the
// module registry as "prototype" but not part of the paper's default
// four-module line-up — it demonstrates the Section 3.2 extension point
// and serves as a cheap fifth ensemble member.
#pragma once

#include "modules/module.hpp"

namespace taglets::modules {

struct PrototypeConfig {
  /// Weight of auxiliary feature vectors relative to labeled ones when
  /// averaging into the prototype (labeled shots count 1.0 each).
  double aux_weight = 1.0;
};

class PrototypeModule : public Module {
 public:
  explicit PrototypeModule(PrototypeConfig config = {}) : config_(config) {}
  std::string name() const override { return "prototype"; }
  Taglet train(const ModuleContext& context) const override;

 private:
  PrototypeConfig config_;
};

}  // namespace taglets::modules
