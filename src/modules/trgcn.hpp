// TrGCN-lite: the two-layer graph neural network behind the ZSL-KG
// module (Nayak & Bach 2020; Section 3.2.4). Given a knowledge graph, a
// node-feature table (SCADS embeddings), and a center node, it
// aggregates the 2-hop neighbourhood with mean pooling plus per-layer
// self/neighbour transforms, and outputs a vector — trained to be the
// classification-head weight (and bias) of the center concept's class.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "graph/knowledge_graph.hpp"
#include "nn/layers.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace taglets::modules {

class TrGcn {
 public:
  struct Config {
    std::size_t input_dim = 16;   // node-feature width (SCADS embedding)
    std::size_t hidden_dim = 32;
    std::size_t output_dim = 33;  // feature_dim + 1 (head weight + bias)
    std::size_t max_neighbors = 16;
  };

  TrGcn(const Config& config, util::Rng& rng);

  const Config& config() const { return config_; }

  /// Class representation z_c = Z(center, G) (Section 3.2.4 step 1).
  tensor::Tensor predict(const graph::KnowledgeGraph& graph,
                         const tensor::Tensor& features,
                         graph::NodeId center) const;

  /// One training forward that caches intermediates for backward().
  struct ForwardCache {
    graph::NodeId center;
    std::vector<graph::NodeId> hop1;          // truncated neighbour list
    std::vector<tensor::Tensor> pre1;          // pre-ReLU layer-1 activations
    std::vector<tensor::Tensor> h1;            // post-ReLU (center first)
    std::vector<tensor::Tensor> self_feats;    // e_v for center + hop1
    std::vector<tensor::Tensor> nbr_means;     // mean e of N(v)
    tensor::Tensor h1_mean;                    // mean over hop1 h1
    tensor::Tensor output;
  };
  ForwardCache forward(const graph::KnowledgeGraph& graph,
                       const tensor::Tensor& features,
                       graph::NodeId center) const;

  /// Accumulate parameter gradients for dL/d(output).
  void backward(const ForwardCache& cache, const tensor::Tensor& grad_output);

  std::vector<nn::Parameter*> parameters();
  void zero_grad();

  /// Parameter snapshot / restore (best-checkpoint keeping during
  /// pretraining, per Appendix A.5).
  std::vector<tensor::Tensor> snapshot() const;
  void restore(const std::vector<tensor::Tensor>& snapshot);

 private:
  /// Truncated, deterministic neighbour list.
  std::vector<graph::NodeId> neighbors_of(const graph::KnowledgeGraph& graph,
                                          graph::NodeId node) const;
  /// Mean feature of a node's neighbours (zero when none).
  tensor::Tensor neighbor_mean(const graph::KnowledgeGraph& graph,
                               const tensor::Tensor& features,
                               graph::NodeId node) const;

  Config config_;
  nn::Parameter w_self1_, w_nbr1_, b1_;
  nn::Parameter w_self2_, w_nbr2_, b2_;
};

}  // namespace taglets::modules
