#include "modules/prototype.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::modules {

using tensor::Tensor;

Taglet PrototypeModule::train(const ModuleContext& context) const {
  TAGLETS_CHECK(!(context.task == nullptr ||
                context.backbone == nullptr ||
                context.selection == nullptr),
                "PrototypeModule: incomplete context");
  const auto& task = *context.task;
  const auto& backbone = *context.backbone;
  nn::Sequential encoder = backbone.encoder;

  // Weighted feature sums per class: labeled shots...
  Tensor sums = Tensor::zeros(task.num_classes(), backbone.feature_dim);
  std::vector<double> weights(task.num_classes(), 0.0);
  Tensor labeled_features = encoder.forward(task.labeled_inputs, false);
  for (std::size_t i = 0; i < task.labeled_labels.size(); ++i) {
    auto src = labeled_features.row(i);
    auto dst = sums.row(task.labeled_labels[i]);
    for (std::size_t d = 0; d < dst.size(); ++d) dst[d] += src[d];
    weights[task.labeled_labels[i]] += 1.0;
  }
  // ...plus the selected auxiliary images, attributed to the target
  // class whose relatedness query chose their concept.
  const auto& selection = *context.selection;
  if (selection.data.size() > 0 && config_.aux_weight > 0.0) {
    const float w = static_cast<float>(config_.aux_weight);
    Tensor aux_features = encoder.forward(selection.data.inputs, false);
    for (std::size_t i = 0; i < selection.data.labels.size(); ++i) {
      const std::size_t target_class =
          selection.source_target_class[selection.data.labels[i]];
      auto src = aux_features.row(i);
      auto dst = sums.row(target_class);
      for (std::size_t d = 0; d < dst.size(); ++d) dst[d] += w * src[d];
      weights[target_class] += config_.aux_weight;
    }
  }

  // Nearest-prototype head: logits_c = 2 p_c . x - |p_c|^2, the affine
  // form of negative squared distance (the |x|^2 term is constant
  // across classes and drops out of the softmax).
  Tensor weight = Tensor::zeros(backbone.feature_dim, task.num_classes());
  Tensor bias = Tensor::zeros(task.num_classes());
  for (std::size_t c = 0; c < task.num_classes(); ++c) {
    auto proto = sums.row(c);
    const float inv =
        weights[c] > 0.0 ? static_cast<float>(1.0 / weights[c]) : 0.0f;
    float sq = 0.0f;
    for (std::size_t d = 0; d < proto.size(); ++d) {
      const float p = proto[d] * inv;
      weight.at(d, c) = 2.0f * p;
      sq += p * p;
    }
    bias[c] = -sq;
  }
  return Taglet(name(),
                nn::Classifier(encoder, nn::Linear(std::move(weight),
                                                   std::move(bias))));
}

}  // namespace taglets::modules
