// ZSL-KG module (Section 3.2.4): zero-shot classification driven purely
// by the knowledge graph. A TrGCN is pretrained once per world to map a
// concept's graph neighbourhood to the classification-head weights of a
// reference classifier over frozen backbone features (the Eq. 9 L2
// objective, with a train/validation class split and best-checkpoint
// selection as in Appendix A.5). At task time the GNN predicts a head
// for each *target* class from the SCADS graph — including novel
// user-added concepts — and the head is installed on the frozen encoder.
#pragma once

#include "backbone/zoo.hpp"
#include "modules/module.hpp"
#include "modules/trgcn.hpp"
#include "scads/scads.hpp"

namespace taglets::modules {

class ZslKgEngine {
 public:
  struct Config {
    std::size_t hidden_dim = 32;
    std::size_t epochs = 80;       // paper: 1000 epochs at full scale
    std::size_t batch_size = 16;   // concepts per optimizer step
    double lr = 1e-3;              // Adam (paper: 1e-3)
    double weight_decay = 5e-4;    // paper: 5e-4
    std::size_t val_classes = 30;  // paper: 950/50 split
  };

  /// Pretrains the GNN against the zoo's reference head. Deterministic
  /// given (zoo's world, config).
  ZslKgEngine(backbone::Zoo& zoo, Config config);
  explicit ZslKgEngine(backbone::Zoo& zoo) : ZslKgEngine(zoo, Config()) {}

  /// Predict a C-way classification head for the given class names using
  /// the task's SCADS graph/embeddings. Classes missing from the graph
  /// get zero weights (uniform prediction) — callers should add novel
  /// concepts to SCADS first (Example A.1).
  nn::Linear predict_head(const scads::Scads& scads,
                          const std::vector<std::string>& class_names) const;

  /// The frozen encoder the predicted heads pair with (RN50-S — the
  /// module is backbone-invariant, as Figure 4's caption notes).
  const nn::Sequential& encoder() const { return encoder_; }
  std::size_t feature_dim() const { return feature_dim_; }
  double best_validation_loss() const { return best_val_loss_; }

 private:
  TrGcn gnn_;
  nn::Sequential encoder_;
  std::size_t feature_dim_;
  double best_val_loss_ = 0.0;
};

class ZslKgModule : public Module {
 public:
  std::string name() const override { return "zsl-kg"; }
  /// Requires context.zsl_engine and context.scads; X and U are unused —
  /// this module is what makes 1-shot ensembles robust.
  Taglet train(const ModuleContext& context) const override;
};

}  // namespace taglets::modules
