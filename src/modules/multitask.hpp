// Multi-task module (Section 3.2.2): jointly learns the target task on X
// and the auxiliary (N*C)-way task on R with a shared encoder and two
// heads, optimizing L_joint = L_target + lambda * L_aux (Eqs. 3-5).
#pragma once

#include "modules/module.hpp"

namespace taglets::modules {

struct MultiTaskConfig {
  std::size_t epochs = 8;  // paper: 8 epochs, decay at 4 and 6
  std::size_t batch_size = 64;
  double lr = 0.003;
  double momentum = 0.9;
  double lambda = 1.0;  // influence of the auxiliary task (Eq. 3)
  std::size_t min_steps = 800;  // floor on joint updates
  std::vector<double> milestones{0.5, 0.75};
};

class MultiTaskModule : public Module {
 public:
  explicit MultiTaskModule(MultiTaskConfig config = {}) : config_(config) {}
  std::string name() const override { return "multitask"; }
  Taglet train(const ModuleContext& context) const override;

 private:
  MultiTaskConfig config_;
};

}  // namespace taglets::modules
