#include "modules/fixmatch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::modules {

using tensor::Tensor;

nn::Classifier fixmatch_train(const synth::FewShotTask& task,
                              const nn::Sequential& encoder,
                              std::size_t feature_dim,
                              const FixMatchConfig& config, util::Rng& rng,
                              double epoch_scale) {
  nn::Classifier model(encoder, feature_dim, task.num_classes(), rng);

  auto params = model.parameters();
  nn::Sgd::Config sgd;
  sgd.lr = config.lr;
  sgd.momentum = config.momentum;
  sgd.nesterov = true;
  nn::Sgd optimizer(params, sgd);
  nn::FixMatchCosineLr schedule(config.lr);

  std::size_t epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.ssl_epochs * epoch_scale));
  const std::size_t n_unlabeled = task.unlabeled_inputs.rows();
  const std::size_t n_labeled = task.labeled_labels.size();
  const std::size_t driver_n = std::max<std::size_t>(n_unlabeled, n_labeled);
  const std::size_t steps_per_epoch =
      (driver_n + config.batch_size - 1) / config.batch_size;
  const std::size_t min_steps = static_cast<std::size_t>(
      static_cast<double>(config.ssl_min_steps) * epoch_scale);
  if (min_steps > 0 && steps_per_epoch * epochs < min_steps) {
    epochs = (min_steps + steps_per_epoch - 1) / steps_per_epoch;
  }
  const std::size_t total_steps = steps_per_epoch * epochs;

  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& u_batch :
         nn::make_batches(driver_n, config.batch_size, rng)) {
      optimizer.set_learning_rate(schedule.rate(step, total_steps));

      // Supervised branch: weakly augmented labeled batch.
      {
        const std::size_t nb = std::min(config.batch_size, n_labeled);
        std::vector<std::size_t> idx =
            rng.sample_without_replacement(n_labeled, nb);
        Tensor x = synth::weak_augment(task.labeled_inputs.gather_rows(idx),
                                       rng, config.augment);
        std::vector<std::size_t> y(nb);
        for (std::size_t i = 0; i < nb; ++i) y[i] = task.labeled_labels[idx[i]];
        Tensor logits = model.logits(x, /*training=*/true);
        auto loss = nn::cross_entropy(logits, y);
        model.backward(loss.grad_logits);
      }

      // Unsupervised branch: confidence-thresholded pseudo labels from
      // the weak view supervise the strong view.
      if (n_unlabeled > 0) {
        std::vector<std::size_t> idx;
        idx.reserve(u_batch.size());
        for (std::size_t i : u_batch) idx.push_back(i % n_unlabeled);
        Tensor u = task.unlabeled_inputs.gather_rows(idx);
        Tensor weak = synth::weak_augment(u, rng, config.augment);
        Tensor weak_proba = model.predict_proba(weak);  // no grad path

        std::vector<std::size_t> confident_rows;
        std::vector<std::size_t> pseudo;
        for (std::size_t i = 0; i < weak_proba.rows(); ++i) {
          auto row = weak_proba.row(i);
          const std::size_t arg = tensor::argmax(row);
          if (row[arg] >= static_cast<float>(config.tau)) {
            confident_rows.push_back(i);
            pseudo.push_back(arg);
          }
        }
        if (!confident_rows.empty()) {
          Tensor strong = synth::strong_augment(u.gather_rows(confident_rows),
                                                rng, config.augment);
          Tensor logits = model.logits(strong, /*training=*/true);
          auto loss = nn::cross_entropy(logits, pseudo);
          // FixMatch normalizes by the full unlabeled batch size, not by
          // the confident subset; cross_entropy averaged over the subset,
          // so rescale by |subset| / |batch| * lambda_u.
          const float rescale = static_cast<float>(
              config.lambda_u * static_cast<double>(confident_rows.size()) /
              static_cast<double>(u_batch.size()));
          Tensor grad = tensor::scale(loss.grad_logits, rescale);
          model.backward(grad);
        }
      }

      optimizer.step();
      ++step;
    }
  }
  return model;
}

Taglet FixMatchModule::train(const ModuleContext& context) const {
  TAGLETS_CHECK(!(context.task == nullptr ||
                context.backbone == nullptr ||
                context.selection == nullptr),
                "FixMatchModule: incomplete context");
  util::Rng rng = module_rng(context, name());

  // SCADS phase: fine-tune the backbone on R before SSL (the module's
  // confirmation-bias mitigation).
  nn::Sequential encoder = context.backbone->encoder;
  const auto& aux = context.selection->data;
  if (aux.size() > 0) {
    nn::Classifier aux_model(encoder, context.backbone->feature_dim,
                             context.selection->intermediate_classes(), rng);
    nn::FitConfig fit;
    fit.epochs = scaled_epochs(config_.pretrain_epochs, context);
    fit.batch_size = config_.batch_size;
    fit.sgd.lr = config_.pretrain_lr;
    fit.sgd.momentum = config_.momentum;
    fit.min_steps = static_cast<std::size_t>(
        static_cast<double>(config_.pretrain_min_steps) * context.epoch_scale);
    nn::fit_hard(aux_model, aux.inputs, aux.labels, fit, rng);
    encoder = aux_model.encoder();
  }

  nn::Classifier model =
      fixmatch_train(*context.task, encoder, context.backbone->feature_dim,
                     config_, rng, context.epoch_scale);
  return Taglet(name(), std::move(model));
}

}  // namespace taglets::modules
