#include "modules/registry.hpp"

#include <stdexcept>

#include "modules/fixmatch.hpp"
#include "modules/multitask.hpp"
#include "modules/prototype.hpp"
#include "modules/transfer.hpp"
#include "modules/zsl_kg.hpp"
#include "util/check.hpp"

namespace taglets::modules {

namespace {

void register_builtins(ModuleRegistry& registry) {
  registry.register_module(
      "transfer", [] { return std::make_unique<TransferModule>(); });
  registry.register_module(
      "multitask", [] { return std::make_unique<MultiTaskModule>(); });
  registry.register_module(
      "fixmatch", [] { return std::make_unique<FixMatchModule>(); });
  registry.register_module("zsl-kg",
                           [] { return std::make_unique<ZslKgModule>(); });
  // Not in the paper's default line-up; available as a cheap fifth
  // ensemble member (see modules/prototype.hpp).
  registry.register_module(
      "prototype", [] { return std::make_unique<PrototypeModule>(); });
}

}  // namespace

ModuleRegistry& ModuleRegistry::global() {
  static ModuleRegistry registry = with_builtins();
  return registry;
}

ModuleRegistry ModuleRegistry::with_builtins() {
  ModuleRegistry registry;
  register_builtins(registry);
  return registry;
}

void ModuleRegistry::register_module(const std::string& name,
                                     ModuleFactory factory) {
  TAGLETS_CHECK(factory, "register_module: null factory");
  factories_[name] = std::move(factory);
}

bool ModuleRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::unique_ptr<Module> ModuleRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  TAGLETS_CHECK_NE(it, factories_.end(),
                   "ModuleRegistry: unknown module " + name);
  return it->second();
}

std::vector<std::string> ModuleRegistry::available() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

const std::vector<std::string>& ModuleRegistry::default_lineup() {
  static const std::vector<std::string> lineup = {"transfer", "multitask",
                                                  "fixmatch", "zsl-kg"};
  return lineup;
}

}  // namespace taglets::modules
