// Module registry — the extensibility hook Section 3.2 promises ("other
// methods can be incorporated on top of the ones we develop here").
// The four built-in modules are pre-registered; users add their own by
// name (see examples/custom_module.cpp).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "modules/module.hpp"

namespace taglets::modules {

using ModuleFactory = std::function<std::unique_ptr<Module>()>;

class ModuleRegistry {
 public:
  /// Process-wide registry with the built-ins pre-registered.
  static ModuleRegistry& global();

  /// Fresh registry containing only the built-ins (for isolated tests).
  static ModuleRegistry with_builtins();

  /// Registers (or replaces) a factory under `name`.
  void register_module(const std::string& name, ModuleFactory factory);
  bool contains(const std::string& name) const;
  std::unique_ptr<Module> create(const std::string& name) const;
  std::vector<std::string> available() const;

  /// The default TAGLETS line-up: transfer, multitask, fixmatch, zsl-kg.
  static const std::vector<std::string>& default_lineup();

 private:
  std::map<std::string, ModuleFactory> factories_;
};

}  // namespace taglets::modules
