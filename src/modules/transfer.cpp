#include "modules/transfer.hpp"

#include <stdexcept>

#include "nn/trainer.hpp"
#include "util/check.hpp"

namespace taglets::modules {

Taglet TransferModule::train(const ModuleContext& context) const {
  TAGLETS_CHECK(!(context.task == nullptr ||
                context.backbone == nullptr ||
                context.selection == nullptr),
                "TransferModule: incomplete context");
  const auto& task = *context.task;
  const auto& selection = *context.selection;
  util::Rng rng = module_rng(context, name());

  // Intermediate phase (Eq. 1): (N*C)-way task over the selected
  // auxiliary data, starting from the pretrained backbone.
  nn::Sequential encoder = context.backbone->encoder;
  if (selection.data.size() > 0) {
    nn::Classifier aux_model(encoder, context.backbone->feature_dim,
                             selection.intermediate_classes(), rng);
    nn::FitConfig fit;
    fit.epochs = scaled_epochs(config_.aux_epochs, context);
    fit.batch_size = config_.batch_size;
    fit.sgd.lr = config_.aux_lr;
    fit.sgd.momentum = config_.momentum;
    fit.min_steps = static_cast<std::size_t>(
        static_cast<double>(config_.aux_min_steps) * context.epoch_scale);
    nn::fit_hard(aux_model, selection.data.inputs, selection.data.labels, fit,
                 rng);
    encoder = aux_model.encoder();  // keep theta', drop the aux head
  }

  // Target phase (Eq. 2): fresh C-way head, fine-tune on X.
  nn::Classifier model(encoder, context.backbone->feature_dim,
                       task.num_classes(), rng);
  nn::FitConfig fit;
  fit.epochs = scaled_epochs(config_.target_epochs, context);
  fit.batch_size = config_.batch_size;
  fit.sgd.lr = config_.target_lr;
  fit.sgd.momentum = config_.momentum;
  fit.min_steps = static_cast<std::size_t>(
      static_cast<double>(config_.target_min_steps) * context.epoch_scale);
  fit.schedule = std::make_shared<nn::StepDecayLr>(config_.target_lr,
                                                   config_.target_milestones);
  nn::fit_hard(model, task.labeled_inputs, task.labeled_labels, fit, rng);

  return Taglet(name(), std::move(model));
}

}  // namespace taglets::modules
