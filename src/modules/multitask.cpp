#include "modules/multitask.hpp"

#include <stdexcept>

#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::modules {

using tensor::Tensor;

Taglet MultiTaskModule::train(const ModuleContext& context) const {
  TAGLETS_CHECK(!(context.task == nullptr ||
                context.backbone == nullptr ||
                context.selection == nullptr),
                "MultiTaskModule: incomplete context");
  const auto& task = *context.task;
  const auto& aux = context.selection->data;
  util::Rng rng = module_rng(context, name());

  nn::Sequential encoder = context.backbone->encoder;
  const std::size_t feature_dim = context.backbone->feature_dim;
  nn::Linear target_head(feature_dim, task.num_classes(), rng);
  nn::Linear aux_head(
      feature_dim,
      std::max<std::size_t>(1, context.selection->intermediate_classes()), rng);

  // Optimizer over the shared encoder plus both heads.
  std::vector<nn::Parameter*> params = encoder.parameters();
  for (auto* p : target_head.parameters()) params.push_back(p);
  for (auto* p : aux_head.parameters()) params.push_back(p);
  nn::Sgd::Config sgd;
  sgd.lr = config_.lr;
  sgd.momentum = config_.momentum;
  nn::Sgd optimizer(params, sgd);
  nn::StepDecayLr schedule(config_.lr, config_.milestones);

  std::size_t epochs = scaled_epochs(config_.epochs, context);
  const bool has_aux = aux.size() > 0;
  // Epochs iterate over the (larger) auxiliary set; a target batch is
  // drawn alongside every auxiliary batch so both losses contribute to
  // each update.
  const std::size_t driver_n = has_aux ? aux.size() : task.labeled_labels.size();
  const std::size_t steps_per_epoch =
      (driver_n + config_.batch_size - 1) / config_.batch_size;
  const std::size_t min_steps = static_cast<std::size_t>(
      static_cast<double>(config_.min_steps) * context.epoch_scale);
  if (min_steps > 0 && steps_per_epoch * epochs < min_steps) {
    epochs = (min_steps + steps_per_epoch - 1) / steps_per_epoch;
  }
  const std::size_t total_steps = steps_per_epoch * epochs;

  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const auto aux_batches =
        nn::make_batches(driver_n, config_.batch_size, rng);
    for (const auto& aux_batch : aux_batches) {
      optimizer.set_learning_rate(schedule.rate(step, total_steps));

      // Target loss on a random labeled batch (Eq. 4).
      {
        const std::size_t nb =
            std::min(config_.batch_size, task.labeled_labels.size());
        std::vector<std::size_t> idx =
            rng.sample_without_replacement(task.labeled_labels.size(), nb);
        Tensor x = task.labeled_inputs.gather_rows(idx);
        std::vector<std::size_t> y(nb);
        for (std::size_t i = 0; i < nb; ++i) y[i] = task.labeled_labels[idx[i]];
        Tensor features = encoder.forward(x, /*training=*/true);
        Tensor logits = target_head.forward(features, true);
        auto loss = nn::cross_entropy(logits, y);
        Tensor grad_features = target_head.backward(loss.grad_logits);
        encoder.backward(grad_features);
      }

      // Auxiliary loss on the driver batch, scaled by lambda (Eq. 5).
      if (has_aux) {
        Tensor x = aux.inputs.gather_rows(aux_batch);
        std::vector<std::size_t> y(aux_batch.size());
        for (std::size_t i = 0; i < aux_batch.size(); ++i) {
          y[i] = aux.labels[aux_batch[i]];
        }
        Tensor features = encoder.forward(x, /*training=*/true);
        Tensor logits = aux_head.forward(features, true);
        auto loss = nn::cross_entropy(logits, y);
        Tensor scaled =
            tensor::scale(loss.grad_logits, static_cast<float>(config_.lambda));
        Tensor grad_features = aux_head.backward(scaled);
        encoder.backward(grad_features);
      }

      optimizer.step();
      ++step;
    }
  }

  return Taglet(name(), nn::Classifier(encoder, std::move(target_head)));
}

}  // namespace taglets::modules
