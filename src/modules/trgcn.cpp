#include "modules/trgcn.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::modules {

using graph::NodeId;
using tensor::Tensor;

namespace {

/// y += x W  (x rank-1 of size in, W (in,out), y rank-1 of size out).
void accumulate_affine(const Tensor& x, const Tensor& w, Tensor& y) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    auto wrow = w.row(i);
    for (std::size_t j = 0; j < y.size(); ++j) y[j] += xv * wrow[j];
  }
}

/// dW += x (outer) g ; returns nothing. Also accumulates db += g.
void accumulate_grads(const Tensor& x, const Tensor& g, nn::Parameter& w,
                      nn::Parameter& b) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    auto wrow = w.grad.row(i);
    for (std::size_t j = 0; j < g.size(); ++j) wrow[j] += xv * g[j];
  }
  for (std::size_t j = 0; j < g.size(); ++j) b.grad[j] += g[j];
}

}  // namespace

TrGcn::TrGcn(const Config& config, util::Rng& rng)
    : config_(config),
      w_self1_(nn::kaiming_normal(config.input_dim, config.hidden_dim, rng)),
      w_nbr1_(nn::kaiming_normal(config.input_dim, config.hidden_dim, rng)),
      b1_(Tensor::zeros(config.hidden_dim)),
      w_self2_(nn::xavier_uniform(config.hidden_dim, config.output_dim, rng)),
      w_nbr2_(nn::xavier_uniform(config.hidden_dim, config.output_dim, rng)),
      b2_(Tensor::zeros(config.output_dim)) {}

std::vector<NodeId> TrGcn::neighbors_of(const graph::KnowledgeGraph& graph,
                                        NodeId node) const {
  std::vector<NodeId> out;
  for (const auto& nb : graph.neighbors(node)) out.push_back(nb.node);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() > config_.max_neighbors) out.resize(config_.max_neighbors);
  return out;
}

Tensor TrGcn::neighbor_mean(const graph::KnowledgeGraph& graph,
                            const Tensor& features, NodeId node) const {
  Tensor mean = Tensor::zeros(config_.input_dim);
  const auto nbrs = neighbors_of(graph, node);
  for (NodeId u : nbrs) {
    auto row = features.row(u);
    for (std::size_t d = 0; d < mean.size(); ++d) mean[d] += row[d];
  }
  if (!nbrs.empty()) {
    const float inv = 1.0f / static_cast<float>(nbrs.size());
    for (std::size_t d = 0; d < mean.size(); ++d) mean[d] *= inv;
  }
  return mean;
}

TrGcn::ForwardCache TrGcn::forward(const graph::KnowledgeGraph& graph,
                                   const Tensor& features,
                                   NodeId center) const {
  TAGLETS_CHECK(!(!features.is_matrix() ||
                features.cols() != config_.input_dim),
                "TrGcn::forward: feature width mismatch");
  TAGLETS_CHECK_LT(center, features.rows(),
                   "TrGcn::forward: center has no features");
  ForwardCache cache;
  cache.center = center;
  cache.hop1 = neighbors_of(graph, center);

  // Layer 1 on center + its hop-1 neighbours (index 0 = center).
  std::vector<NodeId> layer1_nodes{center};
  layer1_nodes.insert(layer1_nodes.end(), cache.hop1.begin(), cache.hop1.end());
  for (NodeId v : layer1_nodes) {
    Tensor self_feat = Tensor::zeros(config_.input_dim);
    {
      auto row = features.row(v);
      std::copy(row.begin(), row.end(), self_feat.data().begin());
    }
    Tensor nbr_feat = neighbor_mean(graph, features, v);
    Tensor pre = b1_.value;
    accumulate_affine(self_feat, w_self1_.value, pre);
    accumulate_affine(nbr_feat, w_nbr1_.value, pre);
    Tensor post = pre;
    for (float& x : post.data()) x = x > 0.0f ? x : 0.0f;
    cache.self_feats.push_back(std::move(self_feat));
    cache.nbr_means.push_back(std::move(nbr_feat));
    cache.pre1.push_back(std::move(pre));
    cache.h1.push_back(std::move(post));
  }

  // Layer 2: center transform + mean over hop-1 h1.
  cache.h1_mean = Tensor::zeros(config_.hidden_dim);
  for (std::size_t i = 1; i < cache.h1.size(); ++i) {
    for (std::size_t d = 0; d < config_.hidden_dim; ++d) {
      cache.h1_mean[d] += cache.h1[i][d];
    }
  }
  if (cache.h1.size() > 1) {
    const float inv = 1.0f / static_cast<float>(cache.h1.size() - 1);
    for (float& x : cache.h1_mean.data()) x *= inv;
  }
  Tensor out = b2_.value;
  accumulate_affine(cache.h1[0], w_self2_.value, out);
  accumulate_affine(cache.h1_mean, w_nbr2_.value, out);
  cache.output = std::move(out);
  return cache;
}

Tensor TrGcn::predict(const graph::KnowledgeGraph& graph,
                      const Tensor& features, NodeId center) const {
  return forward(graph, features, center).output;
}

void TrGcn::backward(const ForwardCache& cache, const Tensor& grad_output) {
  TAGLETS_CHECK_EQ(grad_output.size(), config_.output_dim,
                   "TrGcn::backward: grad dim mismatch");
  // Layer 2 parameter grads.
  accumulate_grads(cache.h1[0], grad_output, w_self2_, b2_);
  {
    // b2 was already incremented by accumulate_grads above; remove the
    // duplicate that the next call would add by passing a scratch bias.
    nn::Parameter scratch(Tensor::zeros(config_.output_dim));
    accumulate_grads(cache.h1_mean, grad_output, w_nbr2_, scratch);
  }

  // Gradients into layer-1 activations.
  const std::size_t n_nbrs = cache.h1.size() - 1;
  std::vector<Tensor> dh1(cache.h1.size(),
                          Tensor::zeros(config_.hidden_dim));
  // center: W_self2 g
  for (std::size_t d = 0; d < config_.hidden_dim; ++d) {
    auto wrow = w_self2_.value.row(d);
    float acc = 0.0f;
    for (std::size_t j = 0; j < config_.output_dim; ++j) {
      acc += wrow[j] * grad_output[j];
    }
    dh1[0][d] = acc;
  }
  if (n_nbrs > 0) {
    const float inv = 1.0f / static_cast<float>(n_nbrs);
    for (std::size_t i = 1; i < cache.h1.size(); ++i) {
      for (std::size_t d = 0; d < config_.hidden_dim; ++d) {
        auto wrow = w_nbr2_.value.row(d);
        float acc = 0.0f;
        for (std::size_t j = 0; j < config_.output_dim; ++j) {
          acc += wrow[j] * grad_output[j];
        }
        dh1[i][d] = acc * inv;
      }
    }
  }

  // Layer 1 parameter grads through the ReLU.
  for (std::size_t i = 0; i < cache.h1.size(); ++i) {
    Tensor da = dh1[i];
    for (std::size_t d = 0; d < config_.hidden_dim; ++d) {
      if (cache.pre1[i][d] <= 0.0f) da[d] = 0.0f;
    }
    accumulate_grads(cache.self_feats[i], da, w_self1_, b1_);
    nn::Parameter scratch(Tensor::zeros(config_.hidden_dim));
    accumulate_grads(cache.nbr_means[i], da, w_nbr1_, scratch);
  }
}

std::vector<nn::Parameter*> TrGcn::parameters() {
  return {&w_self1_, &w_nbr1_, &b1_, &w_self2_, &w_nbr2_, &b2_};
}

void TrGcn::zero_grad() {
  for (nn::Parameter* p : parameters()) p->zero_grad();
}

std::vector<Tensor> TrGcn::snapshot() const {
  return {w_self1_.value, w_nbr1_.value, b1_.value,
          w_self2_.value, w_nbr2_.value, b2_.value};
}

void TrGcn::restore(const std::vector<Tensor>& snapshot) {
  TAGLETS_CHECK_EQ(snapshot.size(), 6, "TrGcn::restore");
  w_self1_.value = snapshot[0];
  w_nbr1_.value = snapshot[1];
  b1_.value = snapshot[2];
  w_self2_.value = snapshot[3];
  w_nbr2_.value = snapshot[4];
  b2_.value = snapshot[5];
}

}  // namespace taglets::modules
