// Labeled image datasets (synthetic stand-ins for FMD / OfficeHome /
// Grocery Store / ImageNet-21k; see DESIGN.md). Inputs are row-per-image
// "pixel" tensors; labels index into `class_names`. `class_concepts[c]`
// records which knowledge-graph concept class c was joined to — the
// class-to-concept mapping Section 3.1 describes — or kNoConcept for
// classes absent from the graph (the Grocery dataset's oatghurt /
// soyghurt cases, Example A.1).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "graph/knowledge_graph.hpp"
#include "tensor/tensor.hpp"

namespace taglets::synth {

/// Visual domain of a dataset (OfficeHome's axis; auxiliary data is
/// natural-domain like ImageNet).
enum class Domain { kNatural = 0, kProduct = 1, kClipart = 2 };

const char* domain_name(Domain d);

inline constexpr graph::NodeId kNoConcept =
    std::numeric_limits<graph::NodeId>::max();

struct Dataset {
  std::string name;
  Domain domain = Domain::kNatural;
  tensor::Tensor inputs;             // (n, pixel_dim)
  std::vector<std::size_t> labels;   // size n, values < class_names.size()
  std::vector<std::string> class_names;
  std::vector<graph::NodeId> class_concepts;  // per class; may be kNoConcept

  std::size_t size() const { return labels.size(); }
  std::size_t num_classes() const { return class_names.size(); }

  /// Indices of all examples with the given label.
  std::vector<std::size_t> indices_of_class(std::size_t label) const;
  /// Per-class example counts.
  std::vector<std::size_t> class_counts() const;
  /// New dataset containing only the given example rows (classes kept).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Throws std::logic_error if labels/inputs/classes are inconsistent.
  void validate() const;
};

/// Concatenate datasets with identical class definitions.
Dataset concat(const Dataset& a, const Dataset& b);

}  // namespace taglets::synth
