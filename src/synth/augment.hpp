// Data augmentation in pixel-vector space. FixMatch's stochastic
// function alpha (Section 3.2.3) "returns two augmented versions of a
// single input"; we implement its weak branch as small additive noise
// (the analogue of flip/crop) and its strong branch as larger noise plus
// random feature masking (the analogue of RandAugment/Cutout).
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace taglets::synth {

struct AugmentConfig {
  double weak_noise = 0.05;
  double strong_noise = 0.20;
  double strong_mask_fraction = 0.25;
};

/// Weak augmentation of a batch (or single vector).
tensor::Tensor weak_augment(const tensor::Tensor& inputs, util::Rng& rng,
                            const AugmentConfig& config = {});

/// Strong augmentation: heavier noise plus zeroing a random fraction of
/// the features of each row.
tensor::Tensor strong_augment(const tensor::Tensor& inputs, util::Rng& rng,
                              const AugmentConfig& config = {});

}  // namespace taglets::synth
