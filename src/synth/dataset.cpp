#include "synth/dataset.hpp"

#include <stdexcept>

namespace taglets::synth {

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kNatural: return "natural";
    case Domain::kProduct: return "product";
    case Domain::kClipart: return "clipart";
  }
  return "?";
}

std::vector<std::size_t> Dataset::indices_of_class(std::size_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t y : labels) counts.at(y)++;
  return counts;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.name = name;
  out.domain = domain;
  out.class_names = class_names;
  out.class_concepts = class_concepts;
  out.inputs = inputs.gather_rows(indices);
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) out.labels.push_back(labels.at(i));
  return out;
}

void Dataset::validate() const {
  if (!inputs.is_matrix() && size() > 0) {
    throw std::logic_error("Dataset: inputs must be a matrix");
  }
  if (inputs.rows() != labels.size()) {
    throw std::logic_error("Dataset: inputs/labels size mismatch");
  }
  if (class_concepts.size() != class_names.size()) {
    throw std::logic_error("Dataset: class metadata size mismatch");
  }
  for (std::size_t y : labels) {
    if (y >= num_classes()) throw std::logic_error("Dataset: label out of range");
  }
}

Dataset concat(const Dataset& a, const Dataset& b) {
  if (a.class_names != b.class_names) {
    throw std::invalid_argument("concat: class mismatch");
  }
  if (a.size() == 0) return b;
  if (b.size() == 0) return a;
  if (a.inputs.cols() != b.inputs.cols()) {
    throw std::invalid_argument("concat: input width mismatch");
  }
  Dataset out = a;
  tensor::Tensor merged = tensor::Tensor::zeros(a.size() + b.size(), a.inputs.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto src = a.inputs.row(i);
    auto dst = merged.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    auto src = b.inputs.row(i);
    auto dst = merged.row(a.size() + i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  out.inputs = std::move(merged);
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

}  // namespace taglets::synth
