#include "synth/dataset.hpp"
#include "util/check.hpp"

#include <stdexcept>

namespace taglets::synth {

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kNatural: return "natural";
    case Domain::kProduct: return "product";
    case Domain::kClipart: return "clipart";
  }
  return "?";
}

std::vector<std::size_t> Dataset::indices_of_class(std::size_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t y : labels) counts.at(y)++;
  return counts;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.name = name;
  out.domain = domain;
  out.class_names = class_names;
  out.class_concepts = class_concepts;
  out.inputs = inputs.gather_rows(indices);
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) out.labels.push_back(labels.at(i));
  return out;
}

void Dataset::validate() const {
  TAGLETS_CHECK(!(!inputs.is_matrix() && size() > 0),
                "Dataset: inputs must be a matrix");
  TAGLETS_CHECK_EQ(inputs.rows(), labels.size(),
                   "Dataset: inputs/labels size mismatch");
  TAGLETS_CHECK_EQ(class_concepts.size(), class_names.size(),
                   "Dataset: class metadata size mismatch");
  for (std::size_t y : labels) {
    TAGLETS_CHECK_LT(y, num_classes(), "Dataset: label out of range");
  }
}

Dataset concat(const Dataset& a, const Dataset& b) {
  TAGLETS_CHECK_EQ(a.class_names, b.class_names, "concat: class mismatch");
  if (a.size() == 0) return b;
  if (b.size() == 0) return a;
  TAGLETS_CHECK_EQ(a.inputs.cols(), b.inputs.cols(),
                   "concat: input width mismatch");
  Dataset out = a;
  tensor::Tensor merged = tensor::Tensor::zeros(a.size() + b.size(), a.inputs.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto src = a.inputs.row(i);
    auto dst = merged.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    auto src = b.inputs.row(i);
    auto dst = merged.row(a.size() + i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  out.inputs = std::move(merged);
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

}  // namespace taglets::synth
