#include "synth/tasks.hpp"

#include <stdexcept>

namespace taglets::synth {

const std::vector<std::string>& fmd_class_names() {
  static const std::vector<std::string> names = {
      "fabric", "foliage", "glass", "leather", "metal",
      "paper",  "plastic", "stone", "water",   "wood",
  };
  return names;
}

const std::vector<std::string>& officehome_class_names() {
  static const std::vector<std::string> names = {
      "alarm_clock", "backpack",    "batteries",  "bed",         "bike",
      "bottle",      "bucket",      "calculator", "calendar",    "candles",
      "chair",       "clipboard",   "computer",   "couch",       "curtains",
      "desk_lamp",   "drill",       "eraser",     "exit_sign",   "fan",
      "file_cabinet","flipflops",   "flowers",    "folder",      "fork",
      "glasses",     "hammer",      "helmet",     "kettle",      "keyboard",
      "knives",      "lamp_shade",  "laptop",     "marker",      "monitor",
      "mop",         "mouse",       "mug",        "notebook",    "oven",
      "pan",         "paper_clip",  "pen",        "pencil",      "postit_notes",
      "printer",     "push_pin",    "radio",      "refrigerator","ruler",
      "scissors",    "screwdriver", "shelf",      "sink",        "sneakers",
      "soda",        "speaker",     "spoon",      "table",       "telephone",
      "toothbrush",  "toys",        "trash_can",  "tv",          "webcam",
  };
  return names;
}

const std::vector<std::string>& grocery_class_names() {
  static const std::vector<std::string> names = {
      "apple",        "avocado",   "banana",     "kiwi",       "lemon",
      "lime",         "mango",     "melon",      "nectarine",  "orange",
      "papaya",       "passion_fruit", "peach",  "pear",       "pineapple",
      "plum",         "pomegranate",   "red_grapefruit", "satsumas", "asparagus",
      "aubergine",    "cabbage",   "carrots",    "cucumber",   "garlic",
      "ginger",       "leek",      "mushroom",   "onion",      "pepper",
      "potato",       "red_beet",  "tomato",     "zucchini",   "juice",
      "milk",         "oatghurt",  "oat_milk",   "sour_cream", "soy_milk",
      "soyghurt",     "yoghurt",
  };
  return names;
}

const std::vector<std::string>& grocery_oov_class_names() {
  static const std::vector<std::string> names = {"oatghurt", "soyghurt"};
  return names;
}

std::vector<std::string> all_target_class_names() {
  std::vector<std::string> out = fmd_class_names();
  const auto& oh = officehome_class_names();
  out.insert(out.end(), oh.begin(), oh.end());
  for (const std::string& g : grocery_class_names()) {
    bool oov = false;
    for (const std::string& o : grocery_oov_class_names()) {
      if (g == o) oov = true;
    }
    if (!oov) out.push_back(g);
  }
  return out;
}

WorldConfig default_world_config(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  config.named_concepts = all_target_class_names();
  return config;
}

const TaskSpec& fmd_spec() {
  static const TaskSpec spec{
      "FlickrMaterial-S", fmd_class_names(), Domain::kNatural,
      /*images_per_class=*/100, /*test_per_class=*/5, /*supports_20_shot=*/true};
  return spec;
}

const TaskSpec& officehome_product_spec() {
  static const TaskSpec spec{
      "OfficeHome-Product-S", officehome_class_names(), Domain::kProduct,
      /*images_per_class=*/40, /*test_per_class=*/10, /*supports_20_shot=*/true};
  return spec;
}

const TaskSpec& officehome_clipart_spec() {
  static const TaskSpec spec{
      "OfficeHome-Clipart-S", officehome_class_names(), Domain::kClipart,
      /*images_per_class=*/40, /*test_per_class=*/10, /*supports_20_shot=*/true};
  return spec;
}

const TaskSpec& grocery_spec() {
  static const TaskSpec spec{
      "GroceryStore-S", grocery_class_names(), Domain::kNatural,
      /*images_per_class=*/30, /*test_per_class=*/10, /*supports_20_shot=*/false};
  return spec;
}

std::vector<TaskSpec> all_task_specs() {
  return {officehome_product_spec(), officehome_clipart_spec(), grocery_spec(),
          fmd_spec()};
}

Dataset build_task_pool(World& world, const TaskSpec& spec,
                        std::uint64_t sample_seed) {
  // Ensure blended OOV classes exist (GroceryStore-S only). oatghurt is a
  // yoghurt/oat_milk blend, soyghurt a yoghurt/soy_milk blend, mirroring
  // the Example A.1 linkage ("yoghurt, carton, and oat milk").
  for (const std::string& name : spec.class_names) {
    if (world.prototype_for_name(name).has_value()) continue;
    std::vector<std::size_t> sources;
    if (name == "oatghurt") {
      sources = {*world.prototype_for_name("yoghurt"),
                 *world.prototype_for_name("oat_milk")};
    } else if (name == "soyghurt") {
      sources = {*world.prototype_for_name("yoghurt"),
                 *world.prototype_for_name("soy_milk")};
    } else {
      throw std::invalid_argument("build_task_pool: unknown class " + name);
    }
    world.add_blended_class(name, sources);
  }
  util::Rng rng(util::combine_seeds({world.config().seed, sample_seed,
                                     std::hash<std::string>{}(spec.name)}));
  return world.make_dataset(spec.name, spec.class_names, spec.images_per_class,
                            spec.domain, rng);
}

}  // namespace taglets::synth
