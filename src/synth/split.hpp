// Train/test partitioning and k-shot labeling, following Appendix A.3:
// a fixed number of test images per class is held out, a fixed number of
// train images per class is labeled (1, 5, or 20 "shots"), and the rest
// of the train pool becomes the unlabeled set U. The same seed drives
// both the partition and the shot choice, as in the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "synth/dataset.hpp"

namespace taglets::synth {

/// A concrete few-shot learning problem handed to TAGLETS or a baseline.
struct FewShotTask {
  std::string dataset_name;
  Domain domain = Domain::kNatural;
  std::vector<std::string> class_names;
  std::vector<graph::NodeId> class_concepts;

  tensor::Tensor labeled_inputs;            // (C * shots, pixel)
  std::vector<std::size_t> labeled_labels;

  tensor::Tensor unlabeled_inputs;          // (U, pixel); labels withheld
  /// Ground truth for the unlabeled pool — never shown to learners; used
  /// only by tests/diagnostics to measure pseudo-label quality.
  std::vector<std::size_t> unlabeled_true_labels;

  tensor::Tensor test_inputs;
  std::vector<std::size_t> test_labels;

  std::size_t num_classes() const { return class_names.size(); }
  std::size_t shots() const {
    return num_classes() == 0 ? 0 : labeled_labels.size() / num_classes();
  }
};

/// Carve a FewShotTask out of a full image pool. Throws when a class has
/// fewer than `test_per_class + shots` images.
FewShotTask make_few_shot_task(const Dataset& pool, std::size_t shots,
                               std::size_t test_per_class,
                               std::uint64_t split_seed);

}  // namespace taglets::synth
