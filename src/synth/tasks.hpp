// The four target tasks of Section 4.1, instantiated in the synthetic
// world: FMD-S (10 material classes), OfficeHome-Product-S and
// OfficeHome-Clipart-S (the same 65 object classes in two shifted
// domains), and GroceryStore-S (42 classes, two of which — oatghurt and
// soyghurt — deliberately do not exist in the knowledge graph,
// reproducing the Example A.1 extensibility scenario).
#pragma once

#include <vector>

#include "synth/world.hpp"

namespace taglets::synth {

/// Class name lists (mirroring the real datasets' label sets).
const std::vector<std::string>& fmd_class_names();          // 10
const std::vector<std::string>& officehome_class_names();   // 65
const std::vector<std::string>& grocery_class_names();      // 42, incl. 2 OOV

/// Names of the grocery classes that are NOT in the knowledge graph.
const std::vector<std::string>& grocery_oov_class_names();  // oatghurt, soyghurt

/// Union of all names that must be attached to world concepts (all the
/// above except the OOV grocery classes, which are blended on demand).
std::vector<std::string> all_target_class_names();

/// World configuration with all target class names pre-attached.
WorldConfig default_world_config(std::uint64_t seed = 7);

struct TaskSpec {
  std::string name;
  std::vector<std::string> class_names;
  Domain domain = Domain::kNatural;
  std::size_t images_per_class = 0;
  std::size_t test_per_class = 0;   // Appendix A.3 test sizes
  bool supports_20_shot = true;     // Grocery: min 18/class, so no 20-shot
};

const TaskSpec& fmd_spec();                // 100/class, 5 test
const TaskSpec& officehome_product_spec(); // 40/class, 10 test
const TaskSpec& officehome_clipart_spec(); // 40/class, 10 test
const TaskSpec& grocery_spec();            // 30/class, 10 test, no 20-shot
std::vector<TaskSpec> all_task_specs();

/// Materialize the full image pool for a task. For GroceryStore-S this
/// first registers the two blended OOV classes with the world (idempotent
/// per World instance is NOT guaranteed — callers create them once).
Dataset build_task_pool(World& world, const TaskSpec& spec,
                        std::uint64_t sample_seed);

}  // namespace taglets::synth
