// The synthetic visual world every experiment runs in. It plays the role
// of "reality" in the reproduction: a concept ontology (WordNet stand-in),
// a common-sense knowledge graph over the concepts (ConceptNet stand-in),
// latent visual prototypes that diffuse down the ontology tree — so that
// semantic relatedness in the graph implies feature-space similarity,
// the property SCADS selection exploits — plus a fixed nonlinear
// "camera" that renders prototypes into pixel vectors under per-domain
// shifts, and noisy word vectors from which SCADS embeddings are
// retrofitted (Appendix A.1).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/embedding_index.hpp"
#include "graph/knowledge_graph.hpp"
#include "graph/taxonomy.hpp"
#include "synth/dataset.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace taglets::synth {

struct WorldConfig {
  std::uint64_t seed = 7;

  // Ontology / knowledge graph.
  std::size_t concept_count = 1200;
  std::size_t min_children = 2;
  std::size_t max_children = 5;
  std::size_t cross_edges = 2400;
  double cross_edge_locality = 3.0;

  // Latent semantics.
  std::size_t latent_dim = 24;
  double tree_step = 0.45;    // prototype diffusion per IsA edge
  double cross_pull = 0.10;   // prototype mixing along cross edges

  // Rendering. The latent -> pixel "camera" is a fixed random two-layer
  // network: a nonlinear map is essential so that no encoder can invert
  // it globally from a modest pretraining corpus — which is what makes
  // *task-related* auxiliary data genuinely more valuable than generic
  // data, the property the paper's SCADS experiments measure.
  std::size_t pixel_dim = 64;
  std::size_t render_hidden_dim = 96;
  double render_gain = 1.3;          // pre-tanh scale (saturation level)
  /// The camera is piecewise: the latent space is split into this many
  /// regions (nearest-anchor), each with its own random class-path first
  /// layer and its own style-mixing matrix. Local complexity is what
  /// makes nearby auxiliary data genuinely more informative than remote
  /// data; 0 or 1 disables the mixture.
  std::size_t render_regions = 32;
  /// Structured per-image nuisance: every image draws a style vector t
  /// that enters the pixels through a region-specific mixing matrix at
  /// `style_scale` amplitude. Because the style directions dominate the
  /// class signal, raw pixels (or a random encoder) are poor features —
  /// only an encoder trained on a region's data learns to project its
  /// style subspace out. This is what gives pretrained backbones (and
  /// task-related auxiliary data) their value, as in the real datasets.
  std::size_t style_dim = 24;
  double style_scale = 1.5;
  double intra_class_noise = 0.15;  // small residual latent jitter
  double pixel_noise = 0.10;
  double domain_shift = 0.20;  // product-domain transform strength
  double clipart_shift_scale = 1.6;  // clipart = this x product strength

  // Word vectors / SCADS embeddings.
  std::size_t word_dim = 16;
  double word_noise = 0.35;
  double oov_fraction = 0.12;  // unnamed concepts without word vectors
  std::size_t retrofit_iterations = 15;

  /// Human class names to attach to suitable ontology concepts (depth
  /// >= 2 with at least one sibling), so dataset classes can be joined
  /// to graph nodes by name.
  std::vector<std::string> named_concepts;
};

class World {
 public:
  explicit World(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const graph::Taxonomy& taxonomy() const { return taxonomy_; }
  const graph::KnowledgeGraph& graph() const { return graph_; }
  /// Retrofitted SCADS embeddings, one row per graph node.
  const tensor::Tensor& scads_embeddings() const { return scads_embeddings_; }
  /// Raw word vectors (nullopt for out-of-vocabulary concepts).
  const std::vector<std::optional<tensor::Tensor>>& word_vectors() const {
    return word_vectors_;
  }
  bool in_vocab(graph::NodeId id) const { return word_vectors_.at(id).has_value(); }

  std::size_t pixel_dim() const { return config_.pixel_dim; }
  std::size_t latent_dim() const { return config_.latent_dim; }

  /// Prototype table: ontology concepts occupy [0, concept_count);
  /// blended extra classes (not present in the graph) follow.
  std::size_t prototype_count() const { return prototypes_.rows(); }
  std::span<const float> prototype(std::size_t index) const {
    return prototypes_.row(index);
  }

  /// Index of the prototype joined to `name` (an ontology concept name,
  /// an assigned class name, or a blended class name).
  std::optional<std::size_t> prototype_for_name(const std::string& name) const;

  /// Create a class that exists visually but NOT in the knowledge graph
  /// (the Grocery oatghurt/soyghurt scenario). Its prototype is the mean
  /// of the source concepts' prototypes plus noise. Returns its
  /// prototype index.
  std::size_t add_blended_class(const std::string& name,
                                std::span<const std::size_t> source_prototypes,
                                double noise = 0.25);

  /// Render one image of the given prototype in the given domain.
  tensor::Tensor sample_image(std::size_t prototype_index, Domain domain,
                              util::Rng& rng) const;

  /// Dataset over the named classes: `per_class` images each.
  Dataset make_dataset(const std::string& dataset_name,
                       const std::vector<std::string>& class_names,
                       std::size_t per_class, Domain domain,
                       util::Rng& rng) const;

  /// Auxiliary corpus over explicit concepts (one aux class per concept).
  Dataset make_auxiliary_corpus(std::span<const graph::NodeId> concepts,
                                std::size_t per_class, util::Rng& rng) const;

  /// All ontology concepts except the root — the candidate pool for
  /// "ImageNet-21k-S".
  std::vector<graph::NodeId> auxiliary_concepts() const;

  /// Deterministic (seeded by the world) subset of the auxiliary pool —
  /// "ImageNet-1k-S" for the weaker backbone and ZSL-KG pretraining.
  std::vector<graph::NodeId> auxiliary_subset(double fraction) const;

 private:
  WorldConfig config_;
  graph::Taxonomy taxonomy_;
  graph::KnowledgeGraph graph_;
  tensor::Tensor prototypes_;  // (concepts + extras, latent_dim)
  std::vector<std::string> extra_names_;
  std::unordered_map<std::string, std::size_t> name_to_prototype_;
  std::vector<std::optional<tensor::Tensor>> word_vectors_;
  tensor::Tensor scads_embeddings_;

  /// Camera region of a prototype (nearest anchor).
  std::size_t render_region(std::span<const float> prototype) const;

  // Fixed rendering parameters (random piecewise two-layer camera plus
  // per-region style mixing).
  std::vector<tensor::Tensor> render1_;  // per region: (latent, render_hidden)
  std::vector<tensor::Tensor> style_mix_;  // per region: (style, pixel)
  tensor::Tensor render_anchors_;  // (regions, latent)
  tensor::Tensor render1_bias_;    // (render_hidden)
  tensor::Tensor render2_;         // (render_hidden, pixel)
  tensor::Tensor product_shift_;   // (pixel, pixel) additive perturbation
  tensor::Tensor clipart_shift_;
  tensor::Tensor product_bias_;    // (pixel)
  tensor::Tensor clipart_bias_;
};

}  // namespace taglets::synth
