#include "synth/augment.hpp"

namespace taglets::synth {

using tensor::Tensor;

Tensor weak_augment(const Tensor& inputs, util::Rng& rng,
                    const AugmentConfig& config) {
  Tensor out = inputs;
  for (float& x : out.data()) {
    x += static_cast<float>(rng.normal(0.0, config.weak_noise));
  }
  return out;
}

Tensor strong_augment(const Tensor& inputs, util::Rng& rng,
                      const AugmentConfig& config) {
  Tensor out = inputs;
  const std::size_t rows = out.is_matrix() ? out.rows() : 1;
  const std::size_t cols = out.is_matrix() ? out.cols() : out.size();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = out.data().data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(config.strong_mask_fraction)) {
        row[c] = 0.0f;
      } else {
        row[c] += static_cast<float>(rng.normal(0.0, config.strong_noise));
      }
    }
  }
  return out;
}

}  // namespace taglets::synth
