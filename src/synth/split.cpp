#include "synth/split.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace taglets::synth {

FewShotTask make_few_shot_task(const Dataset& pool, std::size_t shots,
                               std::size_t test_per_class,
                               std::uint64_t split_seed) {
  pool.validate();
  TAGLETS_CHECK_NE(shots, 0, "make_few_shot_task: 0 shots");

  // One generator for partitioning AND labeling (Appendix A.3: "We use
  // the same seed for both partitioning ... and subsequently choosing
  // train images ... to be labeled").
  util::Rng rng(util::combine_seeds(
      {split_seed, std::hash<std::string>{}(pool.name)}));

  std::vector<std::size_t> test_idx, labeled_idx, unlabeled_idx;
  for (std::size_t c = 0; c < pool.num_classes(); ++c) {
    std::vector<std::size_t> members = pool.indices_of_class(c);
    TAGLETS_CHECK_GE(members.size(), test_per_class + shots,
                     "make_few_shot_task: class too small: " +
                         pool.class_names[c]);
    rng.shuffle(members);
    std::size_t cursor = 0;
    for (std::size_t k = 0; k < test_per_class; ++k) {
      test_idx.push_back(members[cursor++]);
    }
    for (std::size_t k = 0; k < shots; ++k) {
      labeled_idx.push_back(members[cursor++]);
    }
    for (; cursor < members.size(); ++cursor) {
      unlabeled_idx.push_back(members[cursor]);
    }
  }

  FewShotTask task;
  task.dataset_name = pool.name;
  task.domain = pool.domain;
  task.class_names = pool.class_names;
  task.class_concepts = pool.class_concepts;

  task.labeled_inputs = pool.inputs.gather_rows(labeled_idx);
  for (std::size_t i : labeled_idx) task.labeled_labels.push_back(pool.labels[i]);

  task.unlabeled_inputs = pool.inputs.gather_rows(unlabeled_idx);
  for (std::size_t i : unlabeled_idx) {
    task.unlabeled_true_labels.push_back(pool.labels[i]);
  }

  task.test_inputs = pool.inputs.gather_rows(test_idx);
  for (std::size_t i : test_idx) task.test_labels.push_back(pool.labels[i]);
  return task;
}

}  // namespace taglets::synth
