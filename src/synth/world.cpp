#include "synth/world.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/retrofit.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace taglets::synth {

using graph::NodeId;
using tensor::Tensor;

namespace {

Tensor random_matrix(std::size_t rows, std::size_t cols, double stddev,
                     util::Rng& rng) {
  Tensor m = Tensor::zeros(rows, cols);
  for (float& x : m.data()) x = static_cast<float>(rng.normal(0.0, stddev));
  return m;
}

}  // namespace

World::World(const WorldConfig& config)
    : config_(config),
      taxonomy_([&] {
        util::Rng tree_rng(util::combine_seeds({config.seed, 1}));
        graph::TreeSpec spec;
        spec.node_count = config.concept_count;
        spec.min_children = config.min_children;
        spec.max_children = config.max_children;
        return graph::Taxonomy(graph::random_tree_parents(spec, tree_rng));
      }()) {
  util::Rng rng(util::combine_seeds({config.seed, 2}));

  // ---- names: generic concepts, then class names on suitable nodes ----
  std::vector<std::string> names =
      graph::make_concept_names(config.concept_count, "concept");
  {
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < config.concept_count; ++i) {
      if (taxonomy_.is_root(i)) continue;
      if (taxonomy_.depth(i) < 2) continue;
      if (taxonomy_.children(taxonomy_.parent(i)).size() < 2) continue;
      candidates.push_back(i);
    }
    TAGLETS_CHECK_GE(candidates.size(), config.named_concepts.size(),
                     "World: not enough concepts to name");
    rng.shuffle(candidates);
    for (std::size_t k = 0; k < config.named_concepts.size(); ++k) {
      names[candidates[k]] = config.named_concepts[k];
    }
  }

  // ---- knowledge graph: IsA backbone + cross edges -------------------
  graph_ = graph::graph_from_taxonomy(taxonomy_, names);
  graph::add_random_cross_edges(graph_, taxonomy_, config.cross_edges,
                                config.cross_edge_locality, rng);

  // ---- prototypes: diffusion down the tree ----------------------------
  prototypes_ = Tensor::zeros(config.concept_count, config.latent_dim);
  {
    // Parents have smaller ids than children (random_tree_parents
    // guarantees it), so a single ascending pass works.
    auto root_row = prototypes_.row(taxonomy_.root());
    for (float& x : root_row) x = static_cast<float>(rng.normal());
    for (std::size_t i = 0; i < config.concept_count; ++i) {
      if (taxonomy_.is_root(i)) continue;
      auto parent_row = prototypes_.row(taxonomy_.parent(i));
      auto row = prototypes_.row(i);
      for (std::size_t d = 0; d < config.latent_dim; ++d) {
        row[d] = parent_row[d] +
                 static_cast<float>(rng.normal(0.0, config.tree_step));
      }
    }
    // Cross edges pull prototypes slightly together so non-hierarchical
    // relations also carry visual signal.
    if (config.cross_pull > 0.0) {
      const Tensor before = prototypes_;
      for (const auto& e : graph_.edges()) {
        if (e.relation == graph::Relation::kIsA) continue;
        auto a = prototypes_.row(e.from);
        auto b = prototypes_.row(e.to);
        auto a0 = before.row(e.from);
        auto b0 = before.row(e.to);
        const float pull = static_cast<float>(config.cross_pull) * e.weight;
        for (std::size_t d = 0; d < config.latent_dim; ++d) {
          a[d] += pull * (b0[d] - a0[d]);
          b[d] += pull * (a0[d] - b0[d]);
        }
      }
    }
  }

  // ---- name index ------------------------------------------------------
  for (NodeId i = 0; i < config.concept_count; ++i) {
    name_to_prototype_.emplace(graph_.name(i), i);
  }

  // ---- word vectors + retrofitted SCADS embeddings ---------------------
  {
    Tensor word_proj = random_matrix(config.latent_dim, config.word_dim,
                                     1.0 / std::sqrt(config.latent_dim), rng);
    word_vectors_.resize(config.concept_count);
    for (NodeId i = 0; i < config.concept_count; ++i) {
      const bool named = !util::starts_with(graph_.name(i), "concept_");
      if (!named && rng.bernoulli(config.oov_fraction)) continue;  // OOV
      Tensor wv = Tensor::zeros(config.word_dim);
      auto proto = prototypes_.row(i);
      for (std::size_t d = 0; d < config.word_dim; ++d) {
        double v = 0.0;
        for (std::size_t l = 0; l < config.latent_dim; ++l) {
          v += proto[l] * word_proj.at(l, d);
        }
        wv[d] = static_cast<float>(v + rng.normal(0.0, config.word_noise));
      }
      word_vectors_[i] = std::move(wv);
    }
    graph::RetrofitConfig rc;
    rc.iterations = config.retrofit_iterations;
    scads_embeddings_ = graph::retrofit_embeddings(graph_, word_vectors_, rc);
  }

  // ---- rendering parameters --------------------------------------------
  const std::size_t regions = std::max<std::size_t>(1, config.render_regions);
  render1_.reserve(regions);
  style_mix_.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    render1_.push_back(random_matrix(config.latent_dim,
                                     config.render_hidden_dim,
                                     std::sqrt(2.0 / config.latent_dim), rng));
    style_mix_.push_back(random_matrix(config.style_dim, config.pixel_dim,
                                       1.0 / std::sqrt(config.style_dim), rng));
  }
  // Region anchors: prototypes of randomly chosen concepts, so regions
  // align with the ontology's semantic clusters.
  render_anchors_ = Tensor::zeros(regions, config.latent_dim);
  for (std::size_t r = 0; r < regions; ++r) {
    auto src = prototypes_.row(rng.uniform_index(config.concept_count));
    auto dst = render_anchors_.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  render1_bias_ = Tensor::zeros(config.render_hidden_dim);
  for (std::size_t d = 0; d < config.render_hidden_dim; ++d) {
    render1_bias_[d] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  render2_ = random_matrix(config.render_hidden_dim, config.pixel_dim,
                           std::sqrt(2.0 / config.render_hidden_dim), rng);
  const double shift = config.domain_shift;
  product_shift_ = random_matrix(config.pixel_dim, config.pixel_dim,
                                 shift / std::sqrt(config.pixel_dim), rng);
  clipart_shift_ = random_matrix(
      config.pixel_dim, config.pixel_dim,
      shift * config.clipart_shift_scale / std::sqrt(config.pixel_dim), rng);
  product_bias_ = Tensor::zeros(config.pixel_dim);
  clipart_bias_ = Tensor::zeros(config.pixel_dim);
  for (std::size_t d = 0; d < config.pixel_dim; ++d) {
    product_bias_[d] = static_cast<float>(rng.normal(0.0, shift * 0.5));
    clipart_bias_[d] = static_cast<float>(
        rng.normal(0.0, shift * config.clipart_shift_scale * 0.5));
  }
}

std::size_t World::render_region(std::span<const float> prototype) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < render_anchors_.rows(); ++r) {
    auto anchor = render_anchors_.row(r);
    double dist = 0.0;
    for (std::size_t d = 0; d < anchor.size(); ++d) {
      const double diff = prototype[d] - anchor[d];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = r;
    }
  }
  return best;
}

std::optional<std::size_t> World::prototype_for_name(
    const std::string& name) const {
  auto it = name_to_prototype_.find(name);
  if (it == name_to_prototype_.end()) return std::nullopt;
  return it->second;
}

std::size_t World::add_blended_class(
    const std::string& name, std::span<const std::size_t> source_prototypes,
    double noise) {
  TAGLETS_CHECK_LE(name_to_prototype_.count(name), 0,
                   "add_blended_class: name exists: " + name);
  TAGLETS_CHECK(!(source_prototypes.empty()), "add_blended_class: no sources");
  util::Rng rng(util::combine_seeds(
      {config_.seed, 77, static_cast<std::uint64_t>(prototypes_.rows())}));
  Tensor blended = Tensor::zeros(config_.latent_dim);
  for (std::size_t src : source_prototypes) {
    TAGLETS_CHECK_LT(src, prototypes_.rows(), "add_blended_class: bad source");
    auto row = prototypes_.row(src);
    for (std::size_t d = 0; d < config_.latent_dim; ++d) blended[d] += row[d];
  }
  for (std::size_t d = 0; d < config_.latent_dim; ++d) {
    blended[d] = blended[d] / static_cast<float>(source_prototypes.size()) +
                 static_cast<float>(rng.normal(0.0, noise));
  }
  // Append as a new prototype row.
  Tensor grown = Tensor::zeros(prototypes_.rows() + 1, config_.latent_dim);
  for (std::size_t r = 0; r < prototypes_.rows(); ++r) {
    auto src = prototypes_.row(r);
    auto dst = grown.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  auto last = grown.row(prototypes_.rows());
  std::copy(blended.data().begin(), blended.data().end(), last.begin());
  const std::size_t index = prototypes_.rows();
  prototypes_ = std::move(grown);
  extra_names_.push_back(name);
  name_to_prototype_.emplace(name, index);
  return index;
}

Tensor World::sample_image(std::size_t prototype_index, Domain domain,
                           util::Rng& rng) const {
  TAGLETS_CHECK_LT(prototype_index, prototypes_.rows(),
                   "sample_image: bad prototype index");
  const std::size_t L = config_.latent_dim, P = config_.pixel_dim;
  auto proto = prototypes_.row(prototype_index);

  // Latent style jitter (intra-class variation).
  std::vector<float> z(L);
  for (std::size_t d = 0; d < L; ++d) {
    z[d] = proto[d] + static_cast<float>(rng.normal(0.0, config_.intra_class_noise));
  }

  // Render through the region's random two-layer camera. The region is
  // chosen by the class prototype (not the jittered sample) so all
  // images of a class share one camera.
  const std::size_t H = config_.render_hidden_dim;
  const std::size_t region = render_region(proto);
  const Tensor& r1 = render1_[region];
  std::vector<float> hidden(H);
  for (std::size_t j = 0; j < H; ++j) hidden[j] = render1_bias_[j];
  for (std::size_t l = 0; l < L; ++l) {
    const float zv = z[l];
    auto rrow = r1.row(l);
    for (std::size_t j = 0; j < H; ++j) hidden[j] += zv * rrow[j];
  }
  for (std::size_t j = 0; j < H; ++j) {
    hidden[j] = hidden[j] > 0.0f ? hidden[j] : 0.0f;  // ReLU
  }
  const float gain = static_cast<float>(config_.render_gain);
  std::vector<float> px(P, 0.0f);
  for (std::size_t j = 0; j < H; ++j) {
    const float hv = hidden[j];
    if (hv == 0.0f) continue;
    auto rrow = render2_.row(j);
    for (std::size_t p = 0; p < P; ++p) px[p] += hv * rrow[p];
  }
  for (std::size_t p = 0; p < P; ++p) px[p] *= gain;

  // Structured per-image style nuisance through the region's mixing
  // matrix: high-amplitude directions only a region-trained encoder can
  // project out.
  const Tensor& style = style_mix_[region];
  const float style_scale = static_cast<float>(config_.style_scale);
  for (std::size_t s = 0; s < config_.style_dim; ++s) {
    const float tv = static_cast<float>(rng.normal());
    auto srow = style.row(s);
    for (std::size_t p = 0; p < P; ++p) px[p] += style_scale * tv * srow[p];
  }

  // Domain shift: x <- x + S x + b for the shifted domains.
  if (domain != Domain::kNatural) {
    const Tensor& S = domain == Domain::kProduct ? product_shift_ : clipart_shift_;
    const Tensor& b = domain == Domain::kProduct ? product_bias_ : clipart_bias_;
    std::vector<float> shifted(px);
    for (std::size_t r = 0; r < P; ++r) {
      auto srow = S.row(r);
      double acc = 0.0;
      for (std::size_t c = 0; c < P; ++c) acc += srow[c] * px[c];
      shifted[r] = px[r] + static_cast<float>(acc) + b[r];
    }
    px = std::move(shifted);
  }

  // Sensor noise + saturation.
  Tensor out = Tensor::zeros(P);
  for (std::size_t p = 0; p < P; ++p) {
    out[p] = std::tanh(px[p] + static_cast<float>(rng.normal(0.0, config_.pixel_noise)));
  }
  return out;
}

Dataset World::make_dataset(const std::string& dataset_name,
                            const std::vector<std::string>& class_names,
                            std::size_t per_class, Domain domain,
                            util::Rng& rng) const {
  Dataset ds;
  ds.name = dataset_name;
  ds.domain = domain;
  ds.class_names = class_names;
  ds.class_concepts.reserve(class_names.size());
  const std::size_t n = class_names.size() * per_class;
  ds.inputs = Tensor::zeros(n, config_.pixel_dim);
  ds.labels.reserve(n);
  std::size_t row = 0;
  for (std::size_t c = 0; c < class_names.size(); ++c) {
    const auto proto = prototype_for_name(class_names[c]);
    TAGLETS_CHECK(proto, "make_dataset: unknown class " + class_names[c]);
    // Record the graph concept when one exists (blended extras do not).
    ds.class_concepts.push_back(
        *proto < config_.concept_count ? *proto : kNoConcept);
    for (std::size_t k = 0; k < per_class; ++k) {
      Tensor img = sample_image(*proto, domain, rng);
      auto dst = ds.inputs.row(row);
      std::copy(img.data().begin(), img.data().end(), dst.begin());
      ds.labels.push_back(c);
      ++row;
    }
  }
  ds.validate();
  return ds;
}

Dataset World::make_auxiliary_corpus(std::span<const NodeId> concepts,
                                     std::size_t per_class,
                                     util::Rng& rng) const {
  Dataset ds;
  ds.name = "auxiliary";
  ds.domain = Domain::kNatural;
  ds.class_names.reserve(concepts.size());
  ds.class_concepts.assign(concepts.begin(), concepts.end());
  const std::size_t n = concepts.size() * per_class;
  ds.inputs = Tensor::zeros(n, config_.pixel_dim);
  ds.labels.reserve(n);
  std::size_t row = 0;
  for (std::size_t c = 0; c < concepts.size(); ++c) {
    TAGLETS_CHECK_LT(concepts[c], config_.concept_count,
                     "make_auxiliary_corpus: bad concept");
    ds.class_names.push_back(graph_.name(concepts[c]));
    for (std::size_t k = 0; k < per_class; ++k) {
      Tensor img = sample_image(concepts[c], Domain::kNatural, rng);
      auto dst = ds.inputs.row(row);
      std::copy(img.data().begin(), img.data().end(), dst.begin());
      ds.labels.push_back(c);
      ++row;
    }
  }
  ds.validate();
  return ds;
}

std::vector<NodeId> World::auxiliary_concepts() const {
  std::vector<NodeId> out;
  out.reserve(config_.concept_count - 1);
  for (NodeId i = 0; i < config_.concept_count; ++i) {
    if (!taxonomy_.is_root(i)) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> World::auxiliary_subset(double fraction) const {
  TAGLETS_CHECK(!(fraction <= 0.0 || fraction > 1.0),
                "auxiliary_subset: bad fraction");
  const std::size_t want = static_cast<std::size_t>(std::max(
      1.0, fraction * static_cast<double>(config_.concept_count - 1)));
  // Clustered sampling: whole subtrees at a time. A small pretraining
  // corpus like ImageNet-1k is not a uniform sample of all visual
  // concepts — it covers some semantic regions densely and misses others
  // entirely. Reproducing that bias is what leaves the weaker backbone
  // genuinely blind to parts of the ontology, so task-related auxiliary
  // data can add information the encoder lacks.
  util::Rng rng(util::combine_seeds({config_.seed, 3}));
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < config_.concept_count; ++i) {
    if (!taxonomy_.is_root(i) && taxonomy_.depth(i) == 2) roots.push_back(i);
  }
  rng.shuffle(roots);
  std::vector<NodeId> out;
  std::vector<bool> taken(config_.concept_count, false);
  for (std::size_t r : roots) {
    if (out.size() >= want) break;
    for (std::size_t node : taxonomy_.subtree(r)) {
      if (out.size() >= want) break;
      if (!taken[node]) {
        taken[node] = true;
        out.push_back(node);
      }
    }
  }
  return out;
}

}  // namespace taglets::synth
