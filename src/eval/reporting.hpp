// Table / figure-series rendering in the paper's format: one row per
// (method, backbone), one "mean ± ci" cell per (dataset, shots), plus
// shape-check summaries comparing TAGLETS against the best baseline.
#pragma once

#include <string>
#include <vector>

#include "eval/harness.hpp"

namespace taglets::eval {

struct TableRequest {
  std::string title;
  std::vector<synth::TaskSpec> datasets;
  std::vector<std::size_t> shots{1, 5, 20};
  std::size_t split = 0;
  std::vector<Cell> rows;
};

/// The paper's standard row line-up: five methods on BiT, then five plus
/// two pruned-TAGLETS rows on ResNet-50 (Tables 1-6).
std::vector<Cell> standard_table_rows();

/// Runs every cell and renders the table plus a shape-check block (who
/// wins per shots setting and by how much).
std::string render_accuracy_table(Harness& harness,
                                  const TableRequest& request);

/// Figure 4 / 8-10 series: per-module accuracy for shots x prune levels
/// on one dataset (ResNet-50 backbone), averaged over seeds.
std::string render_module_pruning_figure(Harness& harness,
                                         const synth::TaskSpec& spec,
                                         std::size_t split);

/// Figure 5 / 11-13 series: ensemble and end-model improvement over the
/// mean module accuracy, for shots x prune levels.
std::string render_ensemble_gain_figure(Harness& harness,
                                        const synth::TaskSpec& spec,
                                        std::size_t split);

}  // namespace taglets::eval
