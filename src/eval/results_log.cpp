#include "eval/results_log.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_io.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

namespace taglets::eval {

namespace {
const std::vector<std::string> kHeader = {
    "experiment", "dataset", "shots",  "split", "method",
    "backbone",   "prune",   "mean",   "ci95",  "seeds"};
}  // namespace

void ResultsLog::add(ResultRow row) { rows_.push_back(std::move(row)); }

std::vector<ResultRow> ResultsLog::filter(const std::string& experiment,
                                          const std::string& dataset,
                                          const std::string& method) const {
  std::vector<ResultRow> out;
  for (const ResultRow& row : rows_) {
    if (!experiment.empty() && row.experiment != experiment) continue;
    if (!dataset.empty() && row.dataset != dataset) continue;
    if (!method.empty() && row.method != method) continue;
    out.push_back(row);
  }
  return out;
}

std::optional<double> ResultsLog::best_mean(
    const std::string& dataset, std::size_t shots,
    const std::string& exclude_method) const {
  std::optional<double> best;
  for (const ResultRow& row : rows_) {
    if (row.dataset != dataset || row.shots != shots) continue;
    if (row.method == exclude_method) continue;
    if (!best || row.mean > *best) best = row.mean;
  }
  return best;
}

std::string ResultsLog::to_csv() const {
  std::ostringstream out;
  util::CsvWriter writer(out, kHeader);
  for (const ResultRow& row : rows_) {
    writer.write_row({row.experiment, row.dataset, std::to_string(row.shots),
                      std::to_string(row.split), row.method, row.backbone,
                      std::to_string(row.prune_level),
                      util::format_fixed(row.mean, 4),
                      util::format_fixed(row.ci95, 4),
                      std::to_string(row.seeds)});
  }
  return out.str();
}

void ResultsLog::write_csv(const std::string& path) const {
  // Append semantics, implemented as read + atomic whole-file rewrite
  // so an interrupted write cannot truncate or tear the accumulated
  // results (docs/ROBUSTNESS.md).
  std::string merged;
  if (std::filesystem::exists(path)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("ResultsLog: cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    merged = buffer.str();
  }
  const std::string csv = to_csv();
  if (merged.empty()) {
    merged = csv;
  } else {
    // Skip the header line when appending to an existing file.
    const auto newline = csv.find('\n');
    merged += csv.substr(newline + 1);
  }
  util::atomic_write_file(path, merged, "results.csv");
}

ResultsLog ResultsLog::from_csv(const std::string& text) {
  ResultsLog log;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first && util::starts_with(line, "experiment,")) {
      first = false;
      continue;
    }
    first = false;
    const auto cells = util::split(line, ',');
    if (cells.size() != kHeader.size()) {
      throw std::runtime_error("ResultsLog::from_csv: bad row: " + line);
    }
    ResultRow row;
    row.experiment = cells[0];
    row.dataset = cells[1];
    row.shots = static_cast<std::size_t>(std::stoul(cells[2]));
    row.split = static_cast<std::size_t>(std::stoul(cells[3]));
    row.method = cells[4];
    row.backbone = cells[5];
    row.prune_level = std::stoi(cells[6]);
    row.mean = std::stod(cells[7]);
    row.ci95 = std::stod(cells[8]);
    row.seeds = static_cast<std::size_t>(std::stoul(cells[9]));
    log.add(std::move(row));
  }
  return log;
}

}  // namespace taglets::eval
