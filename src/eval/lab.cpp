#include "eval/lab.hpp"

#include "util/logging.hpp"

namespace taglets::eval {

Lab::Lab(LabConfig config) : config_(std::move(config)) {
  world_ = std::make_unique<synth::World>(
      synth::default_world_config(config_.world_seed));
  zoo_ = std::make_unique<backbone::Zoo>(world_.get(), config_.pretrain,
                                         config_.cache_dir);
  scads_ = std::make_unique<scads::Scads>(world_->graph(), world_->taxonomy(),
                                          world_->scads_embeddings());
  // Install "ImageNet-21k-S": every non-root concept, K images each.
  util::Rng rng(util::combine_seeds({config_.world_seed, 0x21AAULL}));
  auto concepts = world_->auxiliary_concepts();
  synth::Dataset aux = world_->make_auxiliary_corpus(
      concepts, config_.aux_images_per_concept, rng);
  aux.name = "imagenet-21k-s";
  scads_->install_dataset(std::move(aux));
  add_grocery_novel_concepts();
  TAGLETS_LOG(kInfo) << "lab ready: " << scads_->total_examples()
                     << " auxiliary examples installed";
}

void Lab::add_grocery_novel_concepts() {
  using graph::Relation;
  if (!scads_->find_concept("oatghurt")) {
    scads_->add_novel_concept("oatghurt", {{"yoghurt", Relation::kRelatedTo},
                                           {"oat_milk", Relation::kRelatedTo},
                                           {"milk", Relation::kIsA}});
  }
  if (!scads_->find_concept("soyghurt")) {
    scads_->add_novel_concept("soyghurt", {{"yoghurt", Relation::kRelatedTo},
                                           {"soy_milk", Relation::kRelatedTo},
                                           {"milk", Relation::kIsA}});
  }
}

modules::ZslKgEngine& Lab::zsl_engine() {
  if (!zsl_engine_) {
    zsl_engine_ = std::make_unique<modules::ZslKgEngine>(*zoo_, config_.zsl);
  }
  return *zsl_engine_;
}

const synth::Dataset& Lab::task_pool(const synth::TaskSpec& spec) {
  auto it = pools_.find(spec.name);
  if (it != pools_.end()) return it->second;
  synth::Dataset pool = synth::build_task_pool(*world_, spec, /*sample_seed=*/11);
  return pools_.emplace(spec.name, std::move(pool)).first->second;
}

synth::FewShotTask Lab::task(const synth::TaskSpec& spec, std::size_t shots,
                             std::size_t split) {
  return synth::make_few_shot_task(task_pool(spec), shots, spec.test_per_class,
                                   /*split_seed=*/split + 101);
}

}  // namespace taglets::eval
