// Experiment harness: runs (method x backbone x shots x split x seed)
// cells of the paper's tables and the per-module diagnostics behind its
// figures. Seed count and epoch scaling are configurable through the
// TAGLETS_SEEDS / TAGLETS_FAST environment variables so the bench
// binaries stay argument-free.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "ensemble/servable.hpp"
#include "eval/lab.hpp"
#include "taglets/controller.hpp"
#include "util/stats.hpp"

namespace taglets::eval {

/// Result of comparing int8 serving accuracy against float32 on a
/// labelled evaluation set (the gate that must pass before a quantized
/// model is allowed to serve — see docs/PERFORMANCE.md).
struct Int8GateResult {
  double float32_accuracy = 0.0;  ///< % correct at Precision::kFloat32
  double int8_accuracy = 0.0;     ///< % correct at Precision::kInt8
  double delta_pp = 0.0;          ///< float32 - int8, percentage points
  double limit_pp = 0.0;          ///< allowed delta
  bool pass = false;              ///< delta_pp <= limit_pp
};

/// Run the model over `inputs` at both precisions and compare accuracy
/// against `labels`. The model's precision setting is restored before
/// returning. `limit_pp` is the largest acceptable accuracy drop in
/// percentage points (int8 beating float32 always passes).
Int8GateResult int8_accuracy_gate(ensemble::ServableModel& model,
                                  const tensor::Tensor& inputs,
                                  std::span<const std::size_t> labels,
                                  double limit_pp = 1.0);

/// Method identifiers used in the tables.
inline constexpr const char* kFineTuning = "fine-tuning";
inline constexpr const char* kFineTuningDistilled = "fine-tuning (distilled)";
inline constexpr const char* kFixMatch = "fixmatch";
inline constexpr const char* kMetaPseudoLabels = "meta pseudo labels";
inline constexpr const char* kSimClr = "simclrv2";
inline constexpr const char* kTaglets = "taglets";

struct Cell {
  std::string method;
  backbone::Kind backbone = backbone::Kind::kRn50S;
  /// Pruning level applied to SCADS selection (TAGLETS rows only).
  int prune_level = -1;
};

class Harness {
 public:
  /// `seeds == 0` reads TAGLETS_SEEDS (default 3); `epoch_scale <= 0`
  /// reads TAGLETS_FAST (1 -> 0.34) else 1.0.
  explicit Harness(Lab& lab, std::size_t seeds = 0, double epoch_scale = 0.0);

  std::size_t seeds() const { return seeds_; }
  double epoch_scale() const { return epoch_scale_; }
  Lab& lab() { return lab_; }

  /// One method accuracy (%) for a single training seed.
  double run_once(const synth::TaskSpec& spec, std::size_t shots,
                  std::size_t split, const Cell& cell, std::uint64_t seed);

  /// Accuracy (%) summarized over the configured seeds — a table cell.
  util::MeanCi run_cell(const synth::TaskSpec& spec, std::size_t shots,
                        std::size_t split, const Cell& cell);

  /// Per-module diagnostics for one TAGLETS run (Figures 4-6, 8-13):
  /// individual taglet accuracies, their mean, the ensemble accuracy,
  /// and the distilled end-model accuracy, all in %. Map keys are
  /// module names, disambiguated with "#<slot>" when the line-up
  /// repeats a module. `modules` overrides the default line-up when
  /// non-empty.
  struct ModuleDiagnostics {
    std::map<std::string, double> module_accuracy;
    double module_mean = 0.0;
    double ensemble = 0.0;
    double end_model = 0.0;
  };
  ModuleDiagnostics run_modules(const synth::TaskSpec& spec, std::size_t shots,
                                std::size_t split, backbone::Kind backbone,
                                int prune_level, std::uint64_t seed,
                                const std::vector<std::string>& modules = {});

  /// Leave-one-out ablation (Figure 6): accuracy delta (%) of the
  /// ensemble when each module is removed, for one seed. Keys follow
  /// the run_modules disambiguation rule, so duplicate module names
  /// never overwrite each other's entry.
  std::map<std::string, double> run_leave_one_out(
      const synth::TaskSpec& spec, std::size_t shots, std::size_t split,
      backbone::Kind backbone, std::uint64_t seed,
      const std::vector<std::string>& modules = {});

  /// TAGLETS SystemConfig for this harness (selection defaults etc.).
  SystemConfig system_config(backbone::Kind backbone, int prune_level,
                             std::uint64_t seed) const;

 private:
  Lab& lab_;
  std::size_t seeds_;
  double epoch_scale_;
};

}  // namespace taglets::eval
