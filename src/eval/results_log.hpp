// Machine-readable results sink. Benches print human tables; this log
// accumulates the same cells as structured rows and writes RFC-4180 CSV
// so results can be diffed / plotted across runs. Enabled in benches by
// setting TAGLETS_RESULTS_CSV=<path>.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace taglets::eval {

struct ResultRow {
  std::string experiment;  // e.g. "table1"
  std::string dataset;
  std::size_t shots = 0;
  std::size_t split = 0;
  std::string method;
  std::string backbone;
  int prune_level = -1;
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t seeds = 0;
};

class ResultsLog {
 public:
  void add(ResultRow row);
  std::size_t size() const { return rows_.size(); }
  const std::vector<ResultRow>& rows() const { return rows_; }

  /// All rows matching a predicate-ish filter (empty string = any).
  std::vector<ResultRow> filter(const std::string& experiment,
                                const std::string& dataset = "",
                                const std::string& method = "") const;

  /// Best mean among rows of a (dataset, shots) cell, restricted to
  /// methods whose name differs from `exclude_method`.
  std::optional<double> best_mean(const std::string& dataset,
                                  std::size_t shots,
                                  const std::string& exclude_method) const;

  /// Serialize to CSV (header + one line per row).
  std::string to_csv() const;
  /// Append-write to a file path; creates the file with a header when
  /// it does not exist.
  void write_csv(const std::string& path) const;

  /// Parse rows back from CSV text (inverse of to_csv, tolerant of a
  /// leading header line). Throws std::runtime_error on malformed rows.
  static ResultsLog from_csv(const std::string& text);

 private:
  std::vector<ResultRow> rows_;
};

}  // namespace taglets::eval
