#include "eval/harness.hpp"

#include <stdexcept>

#include "baselines/finetune.hpp"
#include "baselines/fixmatch_baseline.hpp"
#include "baselines/meta_pseudo_labels.hpp"
#include "baselines/simclr.hpp"
#include "ensemble/ensemble.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace taglets::eval {

Int8GateResult int8_accuracy_gate(ensemble::ServableModel& model,
                                  const tensor::Tensor& inputs,
                                  std::span<const std::size_t> labels,
                                  double limit_pp) {
  TAGLETS_CHECK_EQ(inputs.rows(), labels.size(), "int8_accuracy_gate");
  TAGLETS_CHECK(!labels.empty(), "int8_accuracy_gate: empty eval set");
  const ensemble::Precision prior = model.precision();
  auto accuracy_at = [&](ensemble::Precision p) {
    model.set_precision(p);
    const auto predicted = model.predict_batch(inputs);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (predicted[i] == labels[i]) ++correct;
    }
    return 100.0 * static_cast<double>(correct) /
           static_cast<double>(labels.size());
  };
  Int8GateResult result;
  result.limit_pp = limit_pp;
  result.float32_accuracy = accuracy_at(ensemble::Precision::kFloat32);
  result.int8_accuracy = accuracy_at(ensemble::Precision::kInt8);
  model.set_precision(prior);
  result.delta_pp = result.float32_accuracy - result.int8_accuracy;
  result.pass = result.delta_pp <= limit_pp;
  return result;
}

Harness::Harness(Lab& lab, std::size_t seeds, double epoch_scale)
    : lab_(lab),
      seeds_(seeds != 0
                 ? seeds
                 : static_cast<std::size_t>(util::env_long("TAGLETS_SEEDS", 3))),
      epoch_scale_(epoch_scale > 0.0
                       ? epoch_scale
                       : (util::env_flag("TAGLETS_FAST") ? 0.34 : 1.0)) {
  if (seeds_ == 0) seeds_ = 1;
}

SystemConfig Harness::system_config(backbone::Kind backbone, int prune_level,
                                    std::uint64_t seed) const {
  SystemConfig config;
  config.backbone = backbone;
  config.selection.prune_level = prune_level;
  config.train_seed = seed + 1;  // avoid the seed==0 "use train_seed" sentinel
  config.epoch_scale = epoch_scale_;
  return config;
}

double Harness::run_once(const synth::TaskSpec& spec, std::size_t shots,
                         std::size_t split, const Cell& cell,
                         std::uint64_t seed) {
  synth::FewShotTask task = lab_.task(spec, shots, split);
  const std::uint64_t run_seed = util::combine_seeds(
      {seed + 1, shots, split, static_cast<std::uint64_t>(cell.backbone),
       std::hash<std::string>{}(spec.name)});

  if (cell.method == kTaglets) {
    Controller controller(&lab_.scads(), &lab_.zoo(), &lab_.zsl_engine());
    SystemConfig config =
        system_config(cell.backbone, cell.prune_level, run_seed);
    SystemResult result = controller.run(task, config);
    tensor::Tensor logits =
        result.end_model.model().logits(task.test_inputs, false);
    return 100.0 * nn::accuracy(logits, task.test_labels);
  }

  const backbone::Pretrained& phi = lab_.zoo().get(cell.backbone);
  std::unique_ptr<baselines::Baseline> method;
  if (cell.method == kFineTuning) {
    method = std::make_unique<baselines::FineTune>();
  } else if (cell.method == kFineTuningDistilled) {
    method = std::make_unique<baselines::DistilledFineTune>();
  } else if (cell.method == kFixMatch) {
    method = std::make_unique<baselines::FixMatchBaseline>();
  } else if (cell.method == kMetaPseudoLabels) {
    // Appendix A.5: the MPL student always uses the ResNet-50 backbone.
    method = std::make_unique<baselines::MetaPseudoLabels>(
        &lab_.zoo().get(backbone::Kind::kRn50S));
  } else if (cell.method == kSimClr) {
    method = std::make_unique<baselines::SimClr>();
  } else {
    throw std::invalid_argument("Harness: unknown method " + cell.method);
  }
  nn::Classifier model = method->train(task, phi, run_seed, epoch_scale_);
  return 100.0 * nn::evaluate_accuracy(model, task.test_inputs,
                                       task.test_labels);
}

util::MeanCi Harness::run_cell(const synth::TaskSpec& spec, std::size_t shots,
                               std::size_t split, const Cell& cell) {
  std::vector<double> accs;
  accs.reserve(seeds_);
  for (std::size_t seed = 0; seed < seeds_; ++seed) {
    accs.push_back(run_once(spec, shots, split, cell, seed));
  }
  return util::summarize(accs);
}

namespace {

/// Key for per-module maps: the module name, suffixed with "#<slot>"
/// when the line-up repeats a name, so no entry silently overwrites
/// another.
std::string module_key(const std::map<std::string, double>& existing,
                       const std::string& name, std::size_t slot) {
  if (existing.count(name) == 0) return name;
  return name + "#" + std::to_string(slot);
}

}  // namespace

Harness::ModuleDiagnostics Harness::run_modules(
    const synth::TaskSpec& spec, std::size_t shots, std::size_t split,
    backbone::Kind backbone, int prune_level, std::uint64_t seed,
    const std::vector<std::string>& modules) {
  synth::FewShotTask task = lab_.task(spec, shots, split);
  const std::uint64_t run_seed = util::combine_seeds(
      {seed + 1, shots, split, static_cast<std::uint64_t>(backbone),
       std::hash<std::string>{}(spec.name)});
  Controller controller(&lab_.scads(), &lab_.zoo(), &lab_.zsl_engine());
  SystemConfig config = system_config(backbone, prune_level, run_seed);
  if (!modules.empty()) config.module_names = modules;
  SystemResult result = controller.run(task, config);

  ModuleDiagnostics diag;
  double sum = 0.0;
  for (std::size_t i = 0; i < result.taglets.size(); ++i) {
    auto& taglet = result.taglets[i];
    const double acc = 100.0 * nn::evaluate_accuracy(
                                   taglet.model(), task.test_inputs,
                                   task.test_labels);
    diag.module_accuracy[module_key(diag.module_accuracy, taglet.name(), i)] =
        acc;
    sum += acc;
  }
  // Guard the empty case: 0/0 would make the mean silently NaN and
  // poison every downstream aggregate.
  diag.module_mean = result.taglets.empty()
                         ? 0.0
                         : sum / static_cast<double>(result.taglets.size());
  diag.ensemble = 100.0 * ensemble::ensemble_accuracy(
                              result.taglets, task.test_inputs,
                              task.test_labels);
  tensor::Tensor logits =
      result.end_model.model().logits(task.test_inputs, false);
  diag.end_model = 100.0 * nn::accuracy(logits, task.test_labels);
  return diag;
}

std::map<std::string, double> Harness::run_leave_one_out(
    const synth::TaskSpec& spec, std::size_t shots, std::size_t split,
    backbone::Kind backbone, std::uint64_t seed,
    const std::vector<std::string>& modules) {
  synth::FewShotTask task = lab_.task(spec, shots, split);
  const std::uint64_t run_seed = util::combine_seeds(
      {seed + 1, shots, split, static_cast<std::uint64_t>(backbone),
       std::hash<std::string>{}(spec.name)});
  Controller controller(&lab_.scads(), &lab_.zoo(), &lab_.zsl_engine());
  SystemConfig config = system_config(backbone, /*prune_level=*/-1, run_seed);
  if (!modules.empty()) config.module_names = modules;
  scads::Selection selection = controller.select(task, config);
  std::vector<modules::Taglet> taglets =
      controller.train_taglets(task, selection, config);

  const double full = 100.0 * ensemble::ensemble_accuracy(
                                  taglets, task.test_inputs, task.test_labels);
  std::map<std::string, double> deltas;
  for (std::size_t skip = 0; skip < taglets.size(); ++skip) {
    std::vector<modules::Taglet> subset;
    for (std::size_t i = 0; i < taglets.size(); ++i) {
      if (i != skip) subset.push_back(taglets[i]);
    }
    const double acc = 100.0 * ensemble::ensemble_accuracy(
                                   subset, task.test_inputs, task.test_labels);
    // negative = removal hurts
    deltas[module_key(deltas, taglets[skip].name(), skip)] = acc - full;
  }
  return deltas;
}

}  // namespace taglets::eval
