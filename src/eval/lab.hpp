// Lab: the shared experimental environment every bench and integration
// test runs in. Owns one synthetic world, the backbone zoo, a SCADS with
// "ImageNet-21k-S" installed (plus the Grocery novel concepts), the
// pretrained ZSL-KG engine, and cached task pools. Building these once
// and sharing them mirrors the paper's setup, where ConceptNet +
// ImageNet-21k + pretrained encoders are fixed across all experiments.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "backbone/zoo.hpp"
#include "modules/zsl_kg.hpp"
#include "scads/scads.hpp"
#include "synth/tasks.hpp"

namespace taglets::eval {

struct LabConfig {
  std::uint64_t world_seed = 7;
  /// Images per concept installed into SCADS ("ImageNet-21k-S" density).
  std::size_t aux_images_per_concept = 28;
  backbone::PretrainConfig pretrain{};
  modules::ZslKgEngine::Config zsl{};
  /// Disk cache directory for backbones ("" = TAGLETS_CACHE env or none).
  std::optional<std::string> cache_dir;
};

class Lab {
 public:
  explicit Lab(LabConfig config = LabConfig());

  synth::World& world() { return *world_; }
  backbone::Zoo& zoo() { return *zoo_; }
  scads::Scads& scads() { return *scads_; }
  /// Lazily pretrains the ZSL-KG engine on first use.
  modules::ZslKgEngine& zsl_engine();

  /// Full image pool for a task (cached per spec).
  const synth::Dataset& task_pool(const synth::TaskSpec& spec);

  /// FewShotTask for (spec, shots, split) — Appendix A.3 protocol.
  synth::FewShotTask task(const synth::TaskSpec& spec, std::size_t shots,
                          std::size_t split);

  const LabConfig& config() const { return config_; }

 private:
  /// Registers oatghurt/soyghurt in SCADS with their Example A.1 links.
  void add_grocery_novel_concepts();

  LabConfig config_;
  std::unique_ptr<synth::World> world_;
  std::unique_ptr<backbone::Zoo> zoo_;
  std::unique_ptr<scads::Scads> scads_;
  std::unique_ptr<modules::ZslKgEngine> zsl_engine_;
  std::map<std::string, synth::Dataset> pools_;
};

}  // namespace taglets::eval
