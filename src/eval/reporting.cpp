#include "eval/reporting.hpp"

#include <map>
#include <sstream>

#include "eval/results_log.hpp"
#include "obs/metrics.hpp"
#include "util/atomic_io.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace taglets::eval {

namespace {

std::string backbone_label(backbone::Kind kind) {
  return kind == backbone::Kind::kBitS ? "BiT (IN-21k-S)" : "RN50 (IN-1k-S)";
}

std::string row_label(const Cell& cell) {
  std::string label = cell.method;
  if (cell.method == kTaglets && cell.prune_level >= 0) {
    label += " prune-level " + std::to_string(cell.prune_level);
  }
  return label;
}

}  // namespace

std::vector<Cell> standard_table_rows() {
  using backbone::Kind;
  std::vector<Cell> rows;
  for (Kind kind : {Kind::kBitS, Kind::kRn50S}) {
    rows.push_back(Cell{kFineTuning, kind, -1});
    rows.push_back(Cell{kFineTuningDistilled, kind, -1});
    rows.push_back(Cell{kFixMatch, kind, -1});
    rows.push_back(Cell{kMetaPseudoLabels, kind, -1});
    rows.push_back(Cell{kTaglets, kind, -1});
  }
  rows.push_back(Cell{kTaglets, backbone::Kind::kRn50S, 0});
  rows.push_back(Cell{kTaglets, backbone::Kind::kRn50S, 1});
  return rows;
}

std::string render_accuracy_table(Harness& harness,
                                  const TableRequest& request) {
  std::vector<std::string> header{"Method", "Backbone"};
  for (const auto& spec : request.datasets) {
    for (std::size_t shots : request.shots) {
      if (shots == 20 && !spec.supports_20_shot) continue;
      header.push_back(spec.name + " " + std::to_string(shots) + "-shot");
    }
  }
  util::TextTable table(header);
  ResultsLog results;

  // accuracy[dataset][shots][row index]
  std::map<std::string, std::map<std::size_t, std::vector<double>>> means;

  backbone::Kind last_backbone = request.rows.empty()
                                     ? backbone::Kind::kBitS
                                     : request.rows.front().backbone;
  for (const Cell& cell : request.rows) {
    if (cell.backbone != last_backbone) {
      table.add_rule();
      last_backbone = cell.backbone;
    }
    std::vector<std::string> row{row_label(cell), backbone_label(cell.backbone)};
    for (const auto& spec : request.datasets) {
      for (std::size_t shots : request.shots) {
        if (shots == 20 && !spec.supports_20_shot) continue;
        const util::MeanCi summary =
            harness.run_cell(spec, shots, request.split, cell);
        row.push_back(summary.to_string());
        means[spec.name][shots].push_back(summary.mean);
        results.add(ResultRow{request.title, spec.name, shots, request.split,
                              cell.method, backbone_label(cell.backbone),
                              cell.prune_level, summary.mean, summary.ci,
                              harness.seeds()});
      }
    }
    table.add_row(std::move(row));
  }

  std::ostringstream out;
  out << "=== " << request.title << " (split " << request.split << ", "
      << harness.seeds() << " seeds) ===\n";
  out << table.render();

  // Shape check: TAGLETS (unpruned) vs best non-TAGLETS row, per column.
  out << "\nShape check (TAGLETS minus best baseline, percentage points):\n";
  for (const auto& spec : request.datasets) {
    for (std::size_t shots : request.shots) {
      if (shots == 20 && !spec.supports_20_shot) continue;
      double best_baseline = -1.0;
      double best_taglets = -1.0;
      for (std::size_t r = 0; r < request.rows.size(); ++r) {
        const Cell& cell = request.rows[r];
        const double mean = means[spec.name][shots][r];
        if (cell.method == kTaglets && cell.prune_level < 0) {
          best_taglets = std::max(best_taglets, mean);
        } else if (cell.method != kTaglets) {
          best_baseline = std::max(best_baseline, mean);
        }
      }
      out << "  " << spec.name << " " << shots << "-shot: "
          << util::format_fixed(best_taglets - best_baseline, 2) << "\n";
    }
  }

  // Optional machine-readable sink for cross-run diffs / plotting.
  const std::string csv_path = util::env_string("TAGLETS_RESULTS_CSV", "");
  if (!csv_path.empty()) {
    results.write_csv(csv_path);
    out << "(cells appended to " << csv_path << ")\n";
  }
  // Optional metrics snapshot (pipeline counters accumulated over every
  // cell the harness ran), same surface taglets_run --metrics-out uses.
  const std::string metrics_path =
      util::env_string("TAGLETS_METRICS_OUT", "");
  if (!metrics_path.empty()) {
    util::atomic_write_file(metrics_path,
                            obs::MetricsRegistry::global().to_json() + "\n",
                            "metrics.export");
    out << "(metrics snapshot written to " << metrics_path << ")\n";
  }
  return out.str();
}

std::string render_module_pruning_figure(Harness& harness,
                                         const synth::TaskSpec& spec,
                                         std::size_t split) {
  const std::vector<std::size_t> shot_options =
      spec.supports_20_shot ? std::vector<std::size_t>{1, 5, 20}
                            : std::vector<std::size_t>{1, 5};
  const std::vector<int> prune_levels{-1, 0, 1};

  util::TextTable table({"Module", "Prune", "Shots", "Accuracy (%)"});
  std::ostringstream out;
  out << "=== Module accuracy vs pruning, " << spec.name << " (split "
      << split << ", RN50 backbone, " << harness.seeds() << " seeds) ===\n";

  for (int prune : prune_levels) {
    for (std::size_t shots : shot_options) {
      // Aggregate each module over seeds.
      std::map<std::string, std::vector<double>> per_module;
      for (std::size_t seed = 0; seed < harness.seeds(); ++seed) {
        auto diag = harness.run_modules(spec, shots, split,
                                        backbone::Kind::kRn50S, prune, seed);
        for (const auto& [name, acc] : diag.module_accuracy) {
          per_module[name].push_back(acc);
        }
      }
      for (const auto& [name, accs] : per_module) {
        table.add_row({name,
                       prune < 0 ? "none" : std::to_string(prune),
                       std::to_string(shots),
                       util::summarize(accs).to_string()});
      }
    }
  }
  out << table.render();
  return out.str();
}

std::string render_ensemble_gain_figure(Harness& harness,
                                        const synth::TaskSpec& spec,
                                        std::size_t split) {
  const std::vector<std::size_t> shot_options =
      spec.supports_20_shot ? std::vector<std::size_t>{1, 5, 20}
                            : std::vector<std::size_t>{1, 5};
  const std::vector<int> prune_levels{-1, 0, 1};

  util::TextTable table({"Shots", "Prune", "Module mean (%)",
                         "Ensemble gain", "End-model gain"});
  std::ostringstream out;
  out << "=== Ensemble / end-model improvement over mean module accuracy, "
      << spec.name << " (split " << split << ", RN50 backbone, "
      << harness.seeds() << " seeds) ===\n";

  for (std::size_t shots : shot_options) {
    for (int prune : prune_levels) {
      std::vector<double> base, ens_gain, end_gain;
      for (std::size_t seed = 0; seed < harness.seeds(); ++seed) {
        auto diag = harness.run_modules(spec, shots, split,
                                        backbone::Kind::kRn50S, prune, seed);
        base.push_back(diag.module_mean);
        ens_gain.push_back(diag.ensemble - diag.module_mean);
        end_gain.push_back(diag.end_model - diag.module_mean);
      }
      table.add_row({std::to_string(shots),
                     prune < 0 ? "none" : std::to_string(prune),
                     util::summarize(base).to_string(),
                     util::summarize(ens_gain).to_string(),
                     util::summarize(end_gain).to_string()});
    }
  }
  out << table.render();
  return out.str();
}

}  // namespace taglets::eval
