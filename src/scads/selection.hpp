// Auxiliary data selection (Example 3.1) and pruning (Section 4.3).
// For each target class c we embed its concept, take the top-N most
// cosine-similar concepts that have installed data, and pull K images
// from each — yielding the selected set R with |R| = C * (N * K).
// Pruning simulates distantly-related-only auxiliary data by excluding
// the target class subtree (level 0) or the parent subtree (level 1)
// from the candidate pool before selection.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "scads/scads.hpp"
#include "synth/split.hpp"

namespace taglets::scads {

struct SelectionConfig {
  std::size_t related_per_class = 1;   // N
  std::size_t images_per_concept = 24; // K
  /// -1 disables pruning; 0 and 1 follow the paper's levels.
  int prune_level = -1;
  /// Seed for the K-image sampling.
  std::uint64_t seed = 0;
};

/// The selected auxiliary set R plus its provenance. `data.labels` are
/// selected-concept indices (the N*C-way intermediate task of Eq. 1).
struct Selection {
  synth::Dataset data;
  std::vector<graph::NodeId> selected_concepts;  // one per intermediate class
  std::vector<std::size_t> source_target_class;  // which target class chose it
  std::vector<float> similarities;

  std::size_t intermediate_classes() const { return selected_concepts.size(); }
};

/// Concepts excluded by pruning for the given target concepts
/// (union of per-class pruned subtrees). Concepts outside the taxonomy
/// (novel user-added nodes) are never pruned.
std::unordered_set<graph::NodeId> pruned_concepts(
    const Scads& scads, std::span<const graph::NodeId> target_concepts,
    int prune_level);

/// Top-N related concepts for a single class name, honoring pruning.
/// Class names absent from the graph fall back to the Appendix A.2
/// prefix approximation for their query embedding.
std::vector<graph::EmbeddingIndex::Hit> related_concepts(
    const Scads& scads, const std::string& class_name, std::size_t n,
    const std::unordered_set<graph::NodeId>& excluded);

/// Build the full selection R for a task. Concepts are deduplicated
/// across target classes (each intermediate class appears once).
Selection select_auxiliary(const Scads& scads, const synth::FewShotTask& task,
                           const SelectionConfig& config);

/// Binary (de)serialization of a Selection for stage checkpointing
/// (docs/ROBUSTNESS.md): magic "TGSE", the dataset (inputs via the
/// tensor serializer, so floats round-trip bit for bit), and the
/// provenance vectors. read_selection throws std::runtime_error on
/// malformed input.
void write_selection(std::ostream& out, const Selection& selection);
Selection read_selection(std::istream& in);

}  // namespace taglets::scads
