#include "scads/selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace taglets::scads {

using graph::NodeId;
using tensor::Tensor;

std::unordered_set<NodeId> pruned_concepts(
    const Scads& scads, std::span<const NodeId> target_concepts,
    int prune_level) {
  std::unordered_set<NodeId> out;
  if (prune_level < 0) return out;
  const auto& taxonomy = scads.taxonomy();
  for (NodeId cnode : target_concepts) {
    if (cnode == synth::kNoConcept || cnode >= taxonomy.size()) continue;
    for (std::size_t node : taxonomy.pruned_set(cnode, prune_level)) {
      out.insert(node);
    }
  }
  return out;
}

std::vector<graph::EmbeddingIndex::Hit> related_concepts(
    const Scads& scads, const std::string& class_name, std::size_t n,
    const std::unordered_set<NodeId>& excluded) {
  // Query embedding: the class's own node when present, otherwise the
  // prefix-based approximation (Appendix A.2).
  Tensor query;
  if (auto id = scads.find_concept(class_name)) {
    const auto vec = scads.embeddings().vector(*id);
    query = Tensor::from_vector(std::vector<float>(vec.begin(), vec.end()));
  } else {
    query = scads.embeddings().approximate_embedding(class_name);
  }
  if (query.squared_norm() == 0.0f) return {};

  std::vector<NodeId> candidates;
  for (NodeId cnode : scads.concepts_with_data()) {
    if (excluded.count(cnode) == 0) candidates.push_back(cnode);
  }
  // Deterministic candidate order (the hash map iteration order is not).
  std::sort(candidates.begin(), candidates.end());
  obs::MetricsRegistry::global()
      .counter("scads.candidates_scanned_total")
      .add(candidates.size());
  return scads.embeddings().top_k(query.data(), candidates, n);
}

Selection select_auxiliary(const Scads& scads, const synth::FewShotTask& task,
                           const SelectionConfig& config) {
  TAGLETS_TRACE_SCOPE(
      "scads.select",
      {{"classes", std::to_string(task.class_names.size())},
       {"prune_level", std::to_string(config.prune_level)}});
  const auto excluded =
      pruned_concepts(scads, task.class_concepts, config.prune_level);

  Selection selection;
  std::unordered_set<NodeId> taken;
  struct Slot {
    NodeId cnode;
    std::size_t target_class;
    float similarity;
  };
  std::vector<Slot> slots;
  for (std::size_t c = 0; c < task.class_names.size(); ++c) {
    // Over-fetch so deduplication across classes can still fill N slots.
    const std::size_t fetch =
        config.related_per_class * task.class_names.size() +
        config.related_per_class;
    auto hits = related_concepts(scads, task.class_names[c], fetch, excluded);
    std::size_t kept = 0;
    for (const auto& hit : hits) {
      if (kept == config.related_per_class) break;
      if (!taken.insert(hit.node).second) continue;
      slots.push_back(Slot{hit.node, c, hit.similarity});
      ++kept;
    }
  }

  // Materialize R: K images per selected concept, labeled by slot.
  util::Rng rng(util::combine_seeds({config.seed, 0x5CAD5ULL}));
  std::vector<std::pair<ExampleRef, std::size_t>> picked;  // (ref, slot label)
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (const ExampleRef& ref :
         scads.sample_examples(slots[s].cnode, config.images_per_concept, rng)) {
      picked.emplace_back(ref, s);
    }
  }

  synth::Dataset& data = selection.data;
  data.name = "scads-selection";
  data.domain = synth::Domain::kNatural;
  for (const Slot& slot : slots) {
    data.class_names.push_back(scads.graph().name(slot.cnode));
    data.class_concepts.push_back(slot.cnode);
    selection.selected_concepts.push_back(slot.cnode);
    selection.source_target_class.push_back(slot.target_class);
    selection.similarities.push_back(slot.similarity);
  }
  const std::size_t pixel_dim =
      picked.empty() ? 0 : scads.example_pixels(picked.front().first).size();
  data.inputs = Tensor::zeros(picked.size(), pixel_dim);
  data.labels.reserve(picked.size());
  for (std::size_t i = 0; i < picked.size(); ++i) {
    auto src = scads.example_pixels(picked[i].first);
    auto dst = data.inputs.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    data.labels.push_back(picked[i].second);
  }
  if (!picked.empty()) data.validate();
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("scads.concepts_selected_total").add(slots.size());
  registry.counter("scads.examples_selected_total").add(picked.size());
  return selection;
}

}  // namespace taglets::scads
