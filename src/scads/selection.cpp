#include "scads/selection.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"
#include "util/check.hpp"

namespace taglets::scads {

using graph::NodeId;
using tensor::Tensor;

std::unordered_set<NodeId> pruned_concepts(
    const Scads& scads, std::span<const NodeId> target_concepts,
    int prune_level) {
  std::unordered_set<NodeId> out;
  if (prune_level < 0) return out;
  const auto& taxonomy = scads.taxonomy();
  for (NodeId cnode : target_concepts) {
    if (cnode == synth::kNoConcept || cnode >= taxonomy.size()) continue;
    for (std::size_t node : taxonomy.pruned_set(cnode, prune_level)) {
      out.insert(node);
    }
  }
  return out;
}

std::vector<graph::EmbeddingIndex::Hit> related_concepts(
    const Scads& scads, const std::string& class_name, std::size_t n,
    const std::unordered_set<NodeId>& excluded) {
  // Query embedding: the class's own node when present, otherwise the
  // prefix-based approximation (Appendix A.2).
  Tensor query;
  if (auto id = scads.find_concept(class_name)) {
    const auto vec = scads.embeddings().vector(*id);
    query = Tensor::from_vector(std::vector<float>(vec.begin(), vec.end()));
  } else {
    query = scads.embeddings().approximate_embedding(class_name);
  }
  if (query.squared_norm() == 0.0f) return {};

  std::vector<NodeId> candidates;
  for (NodeId cnode : scads.concepts_with_data()) {
    if (excluded.count(cnode) == 0) candidates.push_back(cnode);
  }
  // Deterministic candidate order (the hash map iteration order is not).
  std::sort(candidates.begin(), candidates.end());
  obs::MetricsRegistry::global()
      .counter("scads.candidates_scanned_total")
      .add(candidates.size());
  return scads.embeddings().top_k(query.data(), candidates, n);
}

Selection select_auxiliary(const Scads& scads, const synth::FewShotTask& task,
                           const SelectionConfig& config) {
  TAGLETS_TRACE_SCOPE(
      "scads.select",
      {{"classes", std::to_string(task.class_names.size())},
       {"prune_level", std::to_string(config.prune_level)}});
  const auto excluded =
      pruned_concepts(scads, task.class_concepts, config.prune_level);

  Selection selection;
  std::unordered_set<NodeId> taken;
  struct Slot {
    NodeId cnode;
    std::size_t target_class;
    float similarity;
  };
  std::vector<Slot> slots;
  for (std::size_t c = 0; c < task.class_names.size(); ++c) {
    // Over-fetch so deduplication across classes can still fill N slots.
    const std::size_t fetch =
        config.related_per_class * task.class_names.size() +
        config.related_per_class;
    auto hits = related_concepts(scads, task.class_names[c], fetch, excluded);
    std::size_t kept = 0;
    for (const auto& hit : hits) {
      if (kept == config.related_per_class) break;
      if (!taken.insert(hit.node).second) continue;
      slots.push_back(Slot{hit.node, c, hit.similarity});
      ++kept;
    }
  }

  // Materialize R: K images per selected concept, labeled by slot.
  util::Rng rng(util::combine_seeds({config.seed, 0x5CAD5ULL}));
  std::vector<std::pair<ExampleRef, std::size_t>> picked;  // (ref, slot label)
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (const ExampleRef& ref :
         scads.sample_examples(slots[s].cnode, config.images_per_concept, rng)) {
      picked.emplace_back(ref, s);
    }
  }

  synth::Dataset& data = selection.data;
  data.name = "scads-selection";
  data.domain = synth::Domain::kNatural;
  for (const Slot& slot : slots) {
    data.class_names.push_back(scads.graph().name(slot.cnode));
    data.class_concepts.push_back(slot.cnode);
    selection.selected_concepts.push_back(slot.cnode);
    selection.source_target_class.push_back(slot.target_class);
    selection.similarities.push_back(slot.similarity);
  }
  const std::size_t pixel_dim =
      picked.empty() ? 0 : scads.example_pixels(picked.front().first).size();
  data.inputs = Tensor::zeros(picked.size(), pixel_dim);
  data.labels.reserve(picked.size());
  for (std::size_t i = 0; i < picked.size(); ++i) {
    auto src = scads.example_pixels(picked[i].first);
    TAGLETS_CHECK_EQ(src.size(), pixel_dim,
                     "select_auxiliary: example width differs from the first "
                     "picked example (mixed-width installed datasets)");
    auto dst = data.inputs.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    data.labels.push_back(picked[i].second);
  }
  if (!picked.empty()) data.validate();
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("scads.concepts_selected_total").add(slots.size());
  registry.counter("scads.examples_selected_total").add(picked.size());
  return selection;
}

namespace {

constexpr char kSelectionMagic[4] = {'T', 'G', 'S', 'E'};
// Caps so a corrupted header reports as such instead of allocating.
constexpr std::uint64_t kMaxEntries = 1ull << 32;
constexpr std::uint32_t kMaxStringLength = 1u << 16;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_selection: truncated stream");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  if (len > kMaxStringLength) {
    throw std::runtime_error("read_selection: corrupt string length");
  }
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("read_selection: truncated string");
  return s;
}

template <typename T>
void write_u64_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  for (const T& x : v) {
    write_pod<std::uint64_t>(out, static_cast<std::uint64_t>(x));
  }
}

template <typename T>
std::vector<T> read_u64_vector(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > kMaxEntries) {
    throw std::runtime_error("read_selection: corrupt vector length");
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(read_pod<std::uint64_t>(in));
  return v;
}

}  // namespace

void write_selection(std::ostream& out, const Selection& selection) {
  out.write(kSelectionMagic, sizeof(kSelectionMagic));
  const synth::Dataset& data = selection.data;
  write_string(out, data.name);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(data.domain));
  tensor::write_tensor(out, data.inputs);
  write_u64_vector(out, data.labels);
  write_pod<std::uint64_t>(out, data.class_names.size());
  for (const std::string& name : data.class_names) write_string(out, name);
  write_u64_vector(out, data.class_concepts);
  write_u64_vector(out, selection.selected_concepts);
  write_u64_vector(out, selection.source_target_class);
  write_pod<std::uint64_t>(out, selection.similarities.size());
  for (float s : selection.similarities) write_pod<float>(out, s);
  if (!out) throw std::runtime_error("write_selection: stream failure");
}

Selection read_selection(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSelectionMagic, sizeof(kSelectionMagic)) != 0) {
    throw std::runtime_error("read_selection: bad magic");
  }
  Selection selection;
  synth::Dataset& data = selection.data;
  data.name = read_string(in);
  const auto domain = read_pod<std::uint32_t>(in);
  if (domain > static_cast<std::uint32_t>(synth::Domain::kClipart)) {
    throw std::runtime_error("read_selection: corrupt domain");
  }
  data.domain = static_cast<synth::Domain>(domain);
  data.inputs = tensor::read_tensor(in);
  data.labels = read_u64_vector<std::size_t>(in);
  const auto classes = read_pod<std::uint64_t>(in);
  if (classes > kMaxEntries) {
    throw std::runtime_error("read_selection: corrupt class count");
  }
  data.class_names.reserve(static_cast<std::size_t>(classes));
  for (std::uint64_t c = 0; c < classes; ++c) {
    data.class_names.push_back(read_string(in));
  }
  data.class_concepts = read_u64_vector<graph::NodeId>(in);
  selection.selected_concepts = read_u64_vector<graph::NodeId>(in);
  selection.source_target_class = read_u64_vector<std::size_t>(in);
  const auto sims = read_pod<std::uint64_t>(in);
  if (sims > kMaxEntries) {
    throw std::runtime_error("read_selection: corrupt similarity count");
  }
  selection.similarities.reserve(static_cast<std::size_t>(sims));
  for (std::uint64_t s = 0; s < sims; ++s) {
    selection.similarities.push_back(read_pod<float>(in));
  }
  if (!data.labels.empty()) data.validate();
  return selection;
}

}  // namespace taglets::scads
