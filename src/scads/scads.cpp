#include "scads/scads.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::scads {

using graph::NodeId;
using tensor::Tensor;

Scads::Scads(const graph::KnowledgeGraph& graph,
             const graph::Taxonomy& taxonomy, Tensor scads_embeddings)
    : graph_(graph), taxonomy_(taxonomy) {
  index_ = std::make_unique<graph::EmbeddingIndex>(&graph_,
                                                   std::move(scads_embeddings));
}

std::size_t Scads::install_dataset(synth::Dataset dataset) {
  dataset.validate();
  for (NodeId cnode : dataset.class_concepts) {
    TAGLETS_CHECK(!(cnode != synth::kNoConcept && cnode >= graph_.node_count()),
                  "install_dataset: concept id out of range");
  }
  const std::size_t index = datasets_.size();
  datasets_.push_back(std::move(dataset));
  dataset_active_.push_back(true);
  const synth::Dataset& ds = datasets_.back();
  for (std::size_t row = 0; row < ds.size(); ++row) {
    const NodeId cnode = ds.class_concepts[ds.labels[row]];
    if (cnode == synth::kNoConcept) continue;
    examples_[cnode].push_back(ExampleRef{index, row});
  }
  return index;
}

void Scads::remove_dataset(const std::string& name) {
  bool found = false;
  for (std::size_t i = 0; i < datasets_.size(); ++i) {
    if (dataset_active_[i] && datasets_[i].name == name) {
      dataset_active_[i] = false;
      found = true;
    }
  }
  TAGLETS_CHECK(found, "remove_dataset: unknown " + name);
  rebuild_example_map();
}

void Scads::rebuild_example_map() {
  examples_.clear();
  for (std::size_t i = 0; i < datasets_.size(); ++i) {
    if (!dataset_active_[i]) continue;
    const synth::Dataset& ds = datasets_[i];
    for (std::size_t row = 0; row < ds.size(); ++row) {
      const NodeId cnode = ds.class_concepts[ds.labels[row]];
      if (cnode == synth::kNoConcept) continue;
      examples_[cnode].push_back(ExampleRef{i, row});
    }
  }
}

const synth::Dataset& Scads::dataset(std::size_t index) const {
  return datasets_.at(index);
}

NodeId Scads::add_novel_concept(
    const std::string& name,
    const std::vector<std::pair<std::string, graph::Relation>>& links) {
  TAGLETS_CHECK(!(graph_.has_node(name)), "add_novel_concept: exists: " + name);
  const NodeId id = graph_.add_node(name);
  Tensor embedding = Tensor::zeros(index_->dim());
  std::size_t linked = 0;
  for (const auto& [target, relation] : links) {
    const auto tid = graph_.find(target);
    TAGLETS_CHECK(tid, "add_novel_concept: unknown link target " + target);
    graph_.add_edge(id, *tid, relation);
    auto src = index_->vector(*tid);
    for (std::size_t d = 0; d < embedding.size(); ++d) embedding[d] += src[d];
    ++linked;
  }
  if (linked > 0) {
    for (std::size_t d = 0; d < embedding.size(); ++d) {
      embedding[d] /= static_cast<float>(linked);
    }
    tensor::normalize_rows(embedding);
  } else {
    // Appendix A.2 fallback: approximate from prefix-sharing concepts.
    embedding = index_->approximate_embedding(name);
  }
  index_->set_vector(id, embedding);
  return id;
}

std::optional<NodeId> Scads::find_concept(const std::string& name) const {
  return graph_.find(name);
}

std::vector<NodeId> Scads::concepts_with_data() const {
  std::vector<NodeId> out;
  out.reserve(examples_.size());
  for (const auto& [cnode, refs] : examples_) {
    if (!refs.empty()) out.push_back(cnode);
  }
  return out;
}

std::size_t Scads::example_count(NodeId cnode) const {
  auto it = examples_.find(cnode);
  return it == examples_.end() ? 0 : it->second.size();
}

std::vector<ExampleRef> Scads::sample_examples(NodeId cnode, std::size_t k,
                                               util::Rng& rng) const {
  auto it = examples_.find(cnode);
  if (it == examples_.end() || it->second.empty()) return {};
  const auto& refs = it->second;
  if (refs.size() <= k) return refs;
  std::vector<ExampleRef> out;
  out.reserve(k);
  for (std::size_t i : rng.sample_without_replacement(refs.size(), k)) {
    out.push_back(refs[i]);
  }
  return out;
}

std::span<const float> Scads::example_pixels(const ExampleRef& ref) const {
  return datasets_.at(ref.dataset_index).inputs.row(ref.row);
}

std::size_t Scads::total_examples() const {
  std::size_t n = 0;
  for (const auto& [cnode, refs] : examples_) n += refs.size();
  return n;
}

}  // namespace taglets::scads
