// SCADS — Structured Collection of Annotated Datasets (Section 3.1).
// Auxiliary labeled datasets are joined onto a common-sense knowledge
// graph: every class of every installed dataset maps to a concept node,
// so examples of related categories can be retrieved through graph-based
// semantic similarity instead of pairwise visual comparison. SCADS owns
// a mutable copy of the world's graph and embeddings so users can add
// novel concepts (Appendix A.2) without touching the world.
#pragma once

#include <optional>
#include <string>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/embedding_index.hpp"
#include "graph/knowledge_graph.hpp"
#include "graph/taxonomy.hpp"
#include "synth/dataset.hpp"
#include "util/rng.hpp"

namespace taglets::scads {

/// Reference to one stored auxiliary example.
struct ExampleRef {
  std::size_t dataset_index;
  std::size_t row;
};

class Scads {
 public:
  /// Builds a SCADS over copies of the given graph/taxonomy/embeddings.
  Scads(const graph::KnowledgeGraph& graph, const graph::Taxonomy& taxonomy,
        tensor::Tensor scads_embeddings);

  // ---- dataset management (install / remove, Section 3.1) -------------

  /// Joins an annotated dataset: each class with a valid concept id is
  /// attached to that node. Returns the internal dataset index.
  std::size_t install_dataset(synth::Dataset dataset);
  /// Detach a dataset by name; its examples become unavailable.
  void remove_dataset(const std::string& name);
  std::size_t dataset_count() const { return datasets_.size(); }
  const synth::Dataset& dataset(std::size_t index) const;

  // ---- graph access -----------------------------------------------------

  const graph::KnowledgeGraph& graph() const { return graph_; }
  const graph::Taxonomy& taxonomy() const { return taxonomy_; }
  const graph::EmbeddingIndex& embeddings() const { return *index_; }

  /// Add a concept that is missing from the graph, linked to existing
  /// concepts (Example A.1: oatghurt -> yoghurt, oat_milk, ...). Its
  /// SCADS embedding is approximated from the linked concepts'
  /// embeddings, falling back to the Appendix A.2 prefix scheme when no
  /// links are given. Returns the new node id.
  graph::NodeId add_novel_concept(
      const std::string& name,
      const std::vector<std::pair<std::string, graph::Relation>>& links);

  /// Node id for a class name, if present.
  std::optional<graph::NodeId> find_concept(const std::string& name) const;

  // ---- retrieval ----------------------------------------------------------

  /// Concepts that currently have at least one installed example.
  std::vector<graph::NodeId> concepts_with_data() const;
  /// Number of installed examples attached to a concept.
  std::size_t example_count(graph::NodeId cnode) const;
  /// Up to `k` example refs for a concept, sampled without replacement.
  std::vector<ExampleRef> sample_examples(graph::NodeId cnode, std::size_t k,
                                          util::Rng& rng) const;
  /// Pixel row for an example ref.
  std::span<const float> example_pixels(const ExampleRef& ref) const;

  /// Total number of installed examples.
  std::size_t total_examples() const;

 private:
  graph::KnowledgeGraph graph_;
  graph::Taxonomy taxonomy_;
  std::unique_ptr<graph::EmbeddingIndex> index_;
  std::vector<synth::Dataset> datasets_;
  std::vector<bool> dataset_active_;
  /// cnode -> example refs across all installed datasets.
  std::unordered_map<graph::NodeId, std::vector<ExampleRef>> examples_;

  void rebuild_example_map();
};

}  // namespace taglets::scads
