#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/sync.hpp"

namespace taglets::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  TAGLETS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                "Histogram: bucket bounds must be ascending");
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; the +inf overflow bucket
  // is counts_.back().
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> default_latency_buckets_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,  2.5,   5.0,
          10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 2500.0};
}

double histogram_quantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count == 0 || snap.counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(snap.count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    const std::uint64_t in_bucket = snap.counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      if (i >= snap.bounds.size()) {
        // +inf overflow bucket: the best finite statement we can make
        // is "at least the largest finite bound".
        return snap.bounds.empty() ? 0.0 : snap.bounds.back();
      }
      const double lo = i == 0 ? 0.0 : snap.bounds[i - 1];
      const double hi = snap.bounds[i];
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    seen += in_bucket;
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"source\":\"" << json_escape(source) << "\",\"meta\":{";
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(meta[i].first) << "\":\""
       << json_escape(meta[i].second) << "\"";
  }
  os << "},\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(counters[i].name) << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(gauges[i].name)
       << "\":" << json_number(gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram::Snapshot& snap = histograms[i].snap;
    if (i > 0) os << ",";
    os << "\"" << json_escape(histograms[i].name)
       << "\":{\"count\":" << snap.count << ",\"sum\":" << json_number(snap.sum)
       << ",\"mean\":" << json_number(snap.mean())
       << ",\"p50\":" << json_number(histogram_quantile(snap, 0.50))
       << ",\"p99\":" << json_number(histogram_quantile(snap, 0.99))
       << ",\"bounds\":[";
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      if (b > 0) os << ",";
      os << json_number(snap.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      if (b > 0) os << ",";
      os << snap.counts[b];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

struct MetricsRegistry::State {
  mutable util::Mutex mu{"obs.metrics", util::lockrank::kObsMetrics};
  // std::map keeps snapshots sorted by name; unique_ptr keeps returned
  // references stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters
      TAGLETS_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>> gauges TAGLETS_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      TAGLETS_GUARDED_BY(mu);

  bool name_taken(const std::string& name) const TAGLETS_REQUIRES(mu) {
    return counters.count(name) + gauges.count(name) +
               histograms.count(name) >
           0;
  }
};

MetricsRegistry::MetricsRegistry() : state_(std::make_unique<State>()) {}

MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  State& s = state();
  util::MutexLock lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end()) {
    TAGLETS_CHECK(!(s.name_taken(name)),
                  "MetricsRegistry: '" + name +
                      "' already registered as another kind");
    it = s.counters.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  State& s = state();
  util::MutexLock lock(s.mu);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end()) {
    TAGLETS_CHECK(!(s.name_taken(name)),
                  "MetricsRegistry: '" + name +
                      "' already registered as another kind");
    it = s.gauges.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  State& s = state();
  util::MutexLock lock(s.mu);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end()) {
    TAGLETS_CHECK(!(s.name_taken(name)),
                  "MetricsRegistry: '" + name +
                      "' already registered as another kind");
    it = s.histograms
             .emplace(name,
                      std::unique_ptr<Histogram>(new Histogram(std::move(bounds))))
             .first;
  } else {
    TAGLETS_CHECK_EQ(it->second->bounds_, bounds,
                     "MetricsRegistry: histogram '" + name +
                         "' re-registered with different buckets");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot(std::string source) const {
  State& s = state();
  util::MutexLock lock(s.mu);
  MetricsSnapshot out;
  out.source = std::move(source);
  out.counters.reserve(s.counters.size());
  for (const auto& [name, c] : s.counters) {
    out.counters.push_back({name, c->value()});
  }
  out.gauges.reserve(s.gauges.size());
  for (const auto& [name, g] : s.gauges) {
    out.gauges.push_back({name, g->value()});
  }
  out.histograms.reserve(s.histograms.size());
  for (const auto& [name, h] : s.histograms) {
    out.histograms.push_back({name, h->snapshot()});
  }
  return out;
}

std::string MetricsRegistry::to_text() const {
  State& s = state();
  util::MutexLock lock(s.mu);
  std::ostringstream os;
  for (const auto& [name, c] : s.counters) {
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : s.gauges) {
    os << name << " " << json_number(g->value()) << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const Histogram::Snapshot snap = h->snapshot();
    os << name << " count=" << snap.count << " sum=" << json_number(snap.sum)
       << " mean=" << json_number(snap.mean()) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  State& s = state();
  util::MutexLock lock(s.mu);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : s.counters) {
    if (!first) os << ",";
    os << "\"" << json_escape(name) << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : s.gauges) {
    if (!first) os << ",";
    os << "\"" << json_escape(name) << "\":" << json_number(g->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    const Histogram::Snapshot snap = h->snapshot();
    if (!first) os << ",";
    os << "\"" << json_escape(name) << "\":{\"count\":" << snap.count
       << ",\"sum\":" << json_number(snap.sum)
       << ",\"mean\":" << json_number(snap.mean()) << ",\"bounds\":[";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i > 0) os << ",";
      os << json_number(snap.bounds[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i > 0) os << ",";
      os << snap.counts[i];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot write " + path);
  }
  out << to_json() << "\n";
  if (!out.good()) {
    throw std::runtime_error("MetricsRegistry: short write to " + path);
  }
}

void MetricsRegistry::reset_for_testing() {
  State& s = state();
  util::MutexLock lock(s.mu);
  for (auto& [name, c] : s.counters) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : s.gauges) {
    g->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : s.histograms) {
    for (auto& bucket : h->counts_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace taglets::obs
