#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace taglets::obs {

namespace {

/// Per-thread buffer cap; beyond it events are counted as dropped
/// rather than growing without bound under sustained traffic.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

bool env_truthy(const char* name) {
  // obs sits below util in the library stack, so it reads the
  // environment directly instead of using util::env_flag.
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{[] {
    const bool on = env_truthy("TAGLETS_TRACE");
    if (on) Tracer::global();  // anchor the epoch before any span starts
    return on;
  }()};
  return enabled;
}

std::uint32_t next_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local std::uint32_t t_depth = 0;

util::Mutex& process_name_mu() {
  static util::Mutex mu{"obs.process_name",
                        util::lockrank::kObsProcessName};
  return mu;
}

std::string& process_name_storage() {
  static std::string name = "taglets";
  return name;
}

}  // namespace

void set_process_name(std::string name) {
  util::MutexLock lock(process_name_mu());
  process_name_storage() = std::move(name);
}

std::string process_name() {
  util::MutexLock lock(process_name_mu());
  return process_name_storage();
}

bool trace_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) {
  // Anchor the export epoch no later than the first span's start so
  // exported timestamps are non-negative (the epoch is captured when
  // the tracer singleton is constructed).
  if (enabled) Tracer::global();
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

std::uint32_t current_thread_id() {
  thread_local std::uint32_t id = next_thread_id();
  return id;
}

struct Tracer::ThreadBuffer {
  // Owner thread appends; snapshot/clear read/drop.
  util::Mutex mu{"obs.trace.buffer", util::lockrank::kObsTraceBuffer};
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events TAGLETS_GUARDED_BY(mu);
};

Tracer::Tracer() : epoch_(TraceClock::now()) {}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // The shared_ptr keeps a buffer exportable after its thread exits.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->tid = current_thread_id();
    util::MutexLock lock(registry_mu_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::record(TraceEvent event) {
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  util::MutexLock lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Silent span loss would make a merged fleet trace lie by omission;
    // surface it on the metrics side too.
    static Counter& dropped_total =
        MetricsRegistry::global().counter("obs.trace.dropped_total");
    dropped_total.add();
    return;
  }
  buffer.events.push_back(std::move(event));
}

void Tracer::record_complete(std::string name, TraceClock::time_point start,
                             TraceClock::time_point end, TraceAttrs attrs) {
  TraceEvent event;
  event.name = std::move(name);
  event.ts_us = to_epoch_us(start);
  event.dur_us = std::max(0.0, to_epoch_us(end) - event.ts_us);
  event.attrs = std::move(attrs);
  record(std::move(event));
}

double Tracer::to_epoch_us(TraceClock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::MutexLock lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    util::MutexLock lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  MetricsRegistry::global().gauge("obs.trace.buffer_spans").set(
      static_cast<double>(out.size()));
  return out;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::MutexLock lock(registry_mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    util::MutexLock lock(buffer->mu);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::string Tracer::export_json() const {
  std::vector<TraceEvent> events = snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  // Real pid + a process_name metadata event so multiple processes'
  // exports stay distinguishable when merged into one Perfetto view.
  const long pid = static_cast<long>(::getpid());
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
     << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(process_name())
     << "\"}}";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << ",";
    os << "{\"name\":\"" << json_escape(e.name)
       << "\",\"cat\":\"taglets\",\"ph\":\"X\",\"pid\":" << pid
       << ",\"tid\":" << e.tid
       << ",\"ts\":" << json_number(e.ts_us)
       << ",\"dur\":" << json_number(e.dur_us) << ",\"args\":{";
    for (std::size_t a = 0; a < e.attrs.size(); ++a) {
      if (a > 0) os << ",";
      os << "\"" << json_escape(e.attrs[a].first) << "\":\""
         << json_escape(e.attrs[a].second) << "\"";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void Tracer::export_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("Tracer: cannot write " + path);
  out << export_json() << "\n";
  if (!out.good()) throw std::runtime_error("Tracer: short write to " + path);
}

std::string trace_export_json() { return Tracer::global().export_json(); }

void trace_export_json(const std::string& path) {
  Tracer::global().export_json(path);
}

void TraceSpan::begin(std::string name, TraceAttrs attrs) {
  if (active_) return;
  active_ = true;
  name_ = std::move(name);
  attrs_ = std::move(attrs);
  depth_ = t_depth++;
  start_ = TraceClock::now();
}

void TraceSpan::finish() {
  const TraceClock::time_point end = TraceClock::now();
  active_ = false;
  --t_depth;
  Tracer& tracer = Tracer::global();
  TraceEvent event;
  event.name = std::move(name_);
  event.ts_us = tracer.to_epoch_us(start_);
  event.dur_us = std::max(0.0, tracer.to_epoch_us(end) - event.ts_us);
  event.depth = depth_;
  event.attrs = std::move(attrs_);
  tracer.record(std::move(event));
}

}  // namespace taglets::obs
