// Tiny JSON emission helpers shared by the observability exporters
// (metrics snapshots, trace files, structured log lines). Only what the
// writers need: string escaping and locale-independent number
// formatting — this is not a JSON library.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace taglets::obs {

/// Escape `s` for inclusion inside a double-quoted JSON string.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Format a double as a JSON number. JSON has no NaN/Inf, so those
/// degrade to 0 rather than corrupting the document.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace taglets::obs
