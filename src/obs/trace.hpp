// Low-overhead tracing for the Figure-2 pipeline and the serve path.
// TAGLETS_TRACE_SCOPE("stage", {{"k", v}}) opens an RAII span; spans
// nest naturally per thread and are buffered in per-thread vectors so
// recording never contends on a global lock (each thread locks only its
// own uncontended buffer mutex — a couple of atomic ops). The whole
// layer is a runtime no-op when disabled: the macro's attribute
// expressions sit behind a single relaxed atomic load, so hot paths pay
// one branch when tracing is off (TAGLETS_TRACE unset).
//
// Export is Chrome trace-event JSON ("X" complete events), loadable in
// chrome://tracing and Perfetto. Spans that logically start on one
// thread and finish on another (a serve request's enqueue -> resolve
// life) are recorded retroactively with record_complete().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace taglets::obs {

using TraceClock = std::chrono::steady_clock;
using TraceAttrs = std::vector<std::pair<std::string, std::string>>;

/// One finished span. `ts_us`/`dur_us` are microseconds relative to the
/// tracer's process-wide epoch; `depth` is the span's nesting level on
/// its recording thread (0 = outermost), kept for tests and tooling —
/// Chrome/Perfetto re-derive nesting from ts/dur.
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t depth = 0;
  TraceAttrs attrs;
};

/// True when spans are being recorded. Initialized from TAGLETS_TRACE
/// (truthy enables); flip at runtime with set_trace_enabled.
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Human-readable name for this process's lane in merged multi-process
/// traces ("frontend", "shard:g0", ...). Exported as a Chrome-trace
/// `process_name` metadata event alongside the real pid. Defaults to
/// "taglets".
void set_process_name(std::string name);
std::string process_name();

/// Stable small integer id of the calling thread, assigned on first
/// use. Shared with the structured log sink so logs join traces.
std::uint32_t current_thread_id();

class Tracer {
 public:
  /// The process-wide tracer all spans record into.
  static Tracer& global();

  /// Record a finished span on the calling thread's buffer.
  void record(TraceEvent event);
  /// Record a span from explicit start/end time points (cross-thread
  /// lifetimes, e.g. a serve request). Attributed to the calling
  /// thread at depth 0.
  void record_complete(std::string name, TraceClock::time_point start,
                       TraceClock::time_point end, TraceAttrs attrs = {});

  /// Microseconds since the tracer's epoch for `tp` (the epoch is
  /// captured when the tracer is first touched).
  double to_epoch_us(TraceClock::time_point tp) const;
  /// Microseconds since the epoch for "now" — the timestamp a span
  /// recorded this instant would carry. Clock-alignment handshakes in
  /// the fleet tier exchange this value.
  double now_us() const { return to_epoch_us(TraceClock::now()); }

  /// All events recorded so far, across every thread, in no particular
  /// order. For tests and in-process consumers.
  std::vector<TraceEvent> snapshot() const;
  /// Drop all buffered events (thread registrations survive).
  void clear();
  /// Events dropped because a thread buffer hit its cap.
  std::uint64_t dropped() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}).
  std::string export_json() const;
  /// Write export_json() to `path` (throws std::runtime_error).
  void export_json(const std::string& path) const;

 private:
  Tracer();
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  TraceClock::time_point epoch_;
  mutable util::Mutex registry_mu_{"obs.trace.registry",
                                   util::lockrank::kObsTraceRegistry};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_
      TAGLETS_GUARDED_BY(registry_mu_);
  std::atomic<std::uint64_t> dropped_{0};
};

/// Convenience: Tracer::global().export_json(). The exported file loads
/// in chrome://tracing and https://ui.perfetto.dev.
std::string trace_export_json();
void trace_export_json(const std::string& path);

/// RAII span. Default-constructed spans are inert; begin() arms them.
/// Use through TAGLETS_TRACE_SCOPE so attribute construction is skipped
/// entirely when tracing is disabled.
class TraceSpan {
 public:
  TraceSpan() = default;
  ~TraceSpan() { if (active_) finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void begin(std::string name, TraceAttrs attrs = {});

 private:
  void finish();

  bool active_ = false;
  std::string name_;
  TraceAttrs attrs_;
  TraceClock::time_point start_{};
  std::uint32_t depth_ = 0;
};

}  // namespace taglets::obs

#define TAGLETS_OBS_CONCAT_INNER(a, b) a##b
#define TAGLETS_OBS_CONCAT(a, b) TAGLETS_OBS_CONCAT_INNER(a, b)

/// Open a span covering the rest of the enclosing block:
///   TAGLETS_TRACE_SCOPE("module.train", {{"module", name}});
/// Attribute expressions are evaluated only when tracing is enabled.
#define TAGLETS_TRACE_SCOPE(...)                                            \
  ::taglets::obs::TraceSpan TAGLETS_OBS_CONCAT(taglets_trace_scope_,        \
                                               __LINE__);                   \
  if (::taglets::obs::trace_enabled())                                      \
  TAGLETS_OBS_CONCAT(taglets_trace_scope_, __LINE__).begin(__VA_ARGS__)
