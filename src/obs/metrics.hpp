// Process-wide metrics surface for the pipeline and the serve path
// (challenge 3: multi-module SSL systems are hard to serve in
// production — the first requirement is knowing where time and work
// go). One registry holds every named counter, gauge, and fixed-bucket
// histogram; hot paths cache the returned references and update them
// with a single atomic op, and any reader can snapshot the whole
// surface to text or JSON at any time.
//
// Deliberately dependency-free (std only, environment read via
// std::getenv): obs sits *below* util in the library stack so that
// util::Parallel, util::logging, and everything above them can be
// instrumented without a cycle.
//
// Naming conventions (see docs/OBSERVABILITY.md):
//   <layer>.<noun>[_<unit>][_total]   e.g. serve.requests_ok_total,
//   pipeline.last_train_seconds, nn.epoch_loss. Counters end in
//   _total; gauges name their unit; histograms name their unit (_ms).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace taglets::obs {

/// Monotonically increasing event count. All methods are thread-safe.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, last epoch loss).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts per upper bound plus an implicit
/// +inf overflow bucket, with total count and sum for mean recovery.
/// Bucket bounds are fixed at creation so concurrent observes never
/// allocate or lock.
class Histogram {
 public:
  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<std::uint64_t> counts;   // bounds.size() + 1 (+inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for millisecond latencies, 50us to 2.5s.
std::vector<double> default_latency_buckets_ms();

/// Quantile estimate (q in [0,1]) from a histogram snapshot by linear
/// interpolation inside the bucket holding the q-th observation. The
/// +inf overflow bucket reports its lower bound (the largest finite
/// bound); an empty histogram reports 0.
double histogram_quantile(const Histogram::Snapshot& snap, double q);

/// One process's entire metrics surface as plain data: the structured
/// form the fleet tier serializes over the wire (replacing opaque JSON
/// blobs) so a frontend can aggregate per-shard counters, gauges, and
/// full histogram bucket layouts. `source` labels the producing process
/// ("frontend", "shard:g0"); `meta` carries free-form key/value context
/// the aggregator attaches (endpoint, health state, version, ...).
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    Histogram::Snapshot snap;
  };

  std::string source;
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// {"source":...,"meta":{...},"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,mean,bounds,counts}}}.
  std::string to_json() const;
};

/// Named metric registry. counter()/gauge()/histogram() create on
/// first use and return a reference that stays valid for the life of
/// the registry; callers on hot paths should call once and cache it.
/// Requesting an existing name as a different kind (or a histogram
/// with different bounds) throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Structured copy of every registered metric, sorted by name.
  MetricsSnapshot snapshot(std::string source = "") const;

  /// Human-readable snapshot, one metric per line, sorted by name.
  std::string to_text() const;
  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Write to_json() to `path` (throws std::runtime_error on failure).
  void write_json(const std::string& path) const;

  /// Zero every registered metric (names and bucket layouts survive).
  /// For tests and benches that need a clean surface; cached references
  /// stay valid.
  void reset_for_testing();

  /// The process-wide registry every instrumented layer records into.
  static MetricsRegistry& global();

 private:
  struct State;
  State& state() const { return *state_; }
  std::unique_ptr<State> state_;  // pointer-stable across moves of names
};

}  // namespace taglets::obs
