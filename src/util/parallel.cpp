#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/env.hpp"

namespace taglets::util {

namespace {

/// Chunks per thread: small oversubscription smooths load imbalance
/// without making chunk dispatch overhead visible.
constexpr std::size_t kChunksPerThread = 4;

std::atomic<Parallel*> g_global_override{nullptr};

}  // namespace

/// Shared state of one for_ranges call. Helper tasks hold the Loop via
/// shared_ptr; `fn` is a borrowed pointer into the owner's stack frame,
/// which is safe because a chunk is only claimed while the owner is
/// still blocked in for_ranges (stale helpers see next >= chunks and
/// return without touching fn).
struct Parallel::Loop {
  std::size_t n = 0;
  std::size_t chunks = 0;
  std::size_t chunk_size = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  Mutex err_mu{"util.parallel.err", lockrank::kUtilParallelErr};
  std::exception_ptr error TAGLETS_GUARDED_BY(err_mu);
};

bool Parallel::join_wake_ready(const Loop& loop) const
    TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
  return loop.remaining.load(std::memory_order_acquire) == 0 ||
         !queue_.empty();
}

Parallel::Parallel(std::size_t threads) {
  if (threads == 0) {
    const long env = env_long("TAGLETS_THREADS", 0);
    if (env > 0) threads = static_cast<std::size_t>(env);
  }
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  // The caller of for_ranges always participates, so `threads` total
  // concurrency needs only threads-1 pool workers; serial mode spawns
  // none and runs everything inline.
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Parallel::~Parallel() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Workers run arbitrary loop bodies, so the destructor must not hold
  // any tracked lock while joining.
  check_join_safe(0, "Parallel::~Parallel");
  for (auto& w : workers_) w.join();
}

void Parallel::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.wait(lock, [this] { return wake_ready(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void Parallel::run_chunks(const std::shared_ptr<Loop>& loop) {
  for (;;) {
    const std::size_t c = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= loop->chunks) return;
    if (!loop->cancelled.load(std::memory_order_acquire)) {
      const std::size_t begin = c * loop->chunk_size;
      const std::size_t end = std::min(loop->n, begin + loop->chunk_size);
      try {
        (*loop->fn)(begin, end);
      } catch (...) {
        {
          MutexLock g(loop->err_mu);
          if (!loop->error) loop->error = std::current_exception();
        }
        loop->cancelled.store(true, std::memory_order_release);
      }
    }
    if (loop->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk overall: wake the owner (and any waiters helping).
      MutexLock g(mu_);
      cv_.notify_all();
    }
  }
}

void Parallel::for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    fn(0, n);
    return;
  }

  // Task-batch span: covers chunk enqueue, the owner's own chunk work,
  // and the join. One relaxed atomic load when tracing is off.
  TAGLETS_TRACE_SCOPE("parallel.for_ranges", {{"n", std::to_string(n)}});

  auto loop = std::make_shared<Loop>();
  loop->n = n;
  // Deterministic partition: a pure function of (n, threads_), never of
  // runtime scheduling.
  const std::size_t target = std::min(n, threads_ * kChunksPerThread);
  loop->chunk_size = (n + target - 1) / target;
  loop->chunks = (n + loop->chunk_size - 1) / loop->chunk_size;
  loop->fn = &fn;
  loop->remaining.store(loop->chunks, std::memory_order_relaxed);

  // One helper task per potential extra worker; helpers that arrive
  // after the loop drained exit immediately.
  const std::size_t helpers = std::min(loop->chunks - 1, threads_ - 1);
  {
    MutexLock lock(mu_);
    if (stopping_) throw std::runtime_error("Parallel: enqueue after stop");
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.emplace([this, loop] { run_chunks(loop); });
    }
  }
  cv_.notify_all();

  // The owner claims chunks itself, so the loop completes even if every
  // pool worker is busy elsewhere.
  run_chunks(loop);

  // Join all in-flight chunks before returning/rethrowing. While other
  // threads finish our chunks, help drain the shared queue — this is
  // what makes nested parallel_for deadlock-free: a blocked owner keeps
  // executing other loops' work instead of holding a worker hostage.
  {
    MutexLock lock(mu_);
    while (loop->remaining.load(std::memory_order_acquire) != 0) {
      if (!queue_.empty()) {
        std::function<void()> task = std::move(queue_.front());
        queue_.pop();
        lock.unlock();
        task();
        lock.lock();
        continue;
      }
      cv_.wait(lock, [this, &loop] { return join_wake_ready(*loop); });
    }
  }

  std::exception_ptr error;
  {
    MutexLock g(loop->err_mu);
    error = loop->error;
  }
  if (error) std::rethrow_exception(error);
}

bool Parallel::help_one() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void Parallel::for_each(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  for_ranges(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

Parallel& Parallel::global() {
  Parallel* override = g_global_override.load(std::memory_order_acquire);
  if (override != nullptr) return *override;
  static Parallel instance;
  return instance;
}

Parallel* Parallel::exchange_global(Parallel* pool) {
  return g_global_override.exchange(pool, std::memory_order_acq_rel);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  Parallel::global().for_each(n, fn);
}

void parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  Parallel::global().for_ranges(n, fn);
}

}  // namespace taglets::util
