// Summary statistics used throughout the evaluation harness. The paper
// reports every cell as `mean ± half-width of a 95% confidence interval`
// over three seeds; `ci95` reproduces that computation (normal
// approximation with the 1.96 critical value, matching common practice
// for such tables).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace taglets::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: needs to sort
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Half-width of the 95% confidence interval for the mean
/// (1.96 * stddev / sqrt(n)); 0 for n < 2.
double ci95(std::span<const double> xs);

/// Pearson correlation; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Paired t statistic for the mean difference xs - ys (same length,
/// n >= 2); 0 when the differences are constant-zero. Used by the
/// harness to sanity-check whether a method gap exceeds seed noise.
double paired_t_statistic(std::span<const double> xs,
                          std::span<const double> ys);

/// A mean ± ci95 pair, formatted like the paper's table cells.
struct MeanCi {
  double mean = 0.0;
  double ci = 0.0;
  std::string to_string(int precision = 2) const;
};

MeanCi summarize(std::span<const double> xs);

/// Online accumulator for streaming means/variances (Welford).
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace taglets::util
