// Process-wide parallel execution layer. TAGLETS is embarrassingly
// parallel at three granularities — GEMM row blocks, batch rows at
// inference time, and whole modules during training (Section 3.2) — so
// every hot path shares one lazily-initialized pool instead of spinning
// up per-call pools.
//
// Guarantees:
//  * Thread count comes from TAGLETS_THREADS (0/unset selects
//    hardware_concurrency); `TAGLETS_THREADS=1` forces serial inline
//    execution with no worker threads at all.
//  * Nesting-safe: a caller that is itself inside a parallel region
//    executes chunks of its own loop and helps drain the shared queue
//    while waiting, so nested parallel_for cannot deadlock.
//  * Exception-safe: a throwing iteration cancels unclaimed chunks, but
//    the owner joins *all* in-flight chunks before rethrowing the first
//    exception — no task can outlive the caller's stack frame.
//  * Deterministic: chunk boundaries are a pure function of (n, thread
//    count); callers that write disjoint outputs per index and keep a
//    fixed within-chunk order get bitwise-identical results at every
//    thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace taglets::util {

class Parallel {
 public:
  /// `threads == 0` reads TAGLETS_THREADS, falling back to
  /// hardware_concurrency() (min 1). `threads == 1` is serial mode.
  explicit Parallel(std::size_t threads = 0);
  ~Parallel();

  Parallel(const Parallel&) = delete;
  Parallel& operator=(const Parallel&) = delete;

  /// Configured concurrency (1 means serial inline execution).
  std::size_t threads() const { return threads_; }

  /// Run `fn(begin, end)` over a deterministic partition of [0, n).
  /// Blocks until every chunk has finished; rethrows the first
  /// exception only after all in-flight chunks are joined.
  void for_ranges(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  /// Run `fn(i)` for every i in [0, n); chunked via for_ranges.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Pops and runs one queued helper task inline; returns false when
  /// the queue was empty. Blocking coordination layered on top of the
  /// pool (the task-graph executor's wait-for-ready loop) calls this
  /// instead of sleeping, so a lane stuck waiting keeps the pool
  /// making progress — a nested loop's chunks may be queued behind it.
  bool help_one();

  /// The process-wide pool, created on first use.
  static Parallel& global();

  /// Testing hook: swap the pool `global()` returns (nullptr restores
  /// the default). Returns the previous override. Not thread-safe
  /// against concurrent global() users — swap only from a quiesced
  /// test/bench thread.
  static Parallel* exchange_global(Parallel* pool);

 private:
  struct Loop;

  void worker_loop();
  void run_chunks(const std::shared_ptr<Loop>& loop);

  /// Wait predicates; they run with mu_ held by the CondVar machinery,
  /// which the static analysis cannot see.
  bool wake_ready() const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return stopping_ || !queue_.empty();
  }
  bool join_wake_ready(const Loop& loop) const;

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
  Mutex mu_{"util.parallel", lockrank::kUtilPool};
  std::queue<std::function<void()>> queue_ TAGLETS_GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ TAGLETS_GUARDED_BY(mu_) = false;
};

/// Convenience wrappers over Parallel::global().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);
void parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace taglets::util
