#include "util/env.hpp"

#include <cstdlib>

namespace taglets::util {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

long env_long(const std::string& name, long fallback) {
  const std::string v = env_string(name, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return fallback;
  return out;
}

bool env_flag(const std::string& name, bool fallback) {
  const std::string v = env_string(name, "");
  if (v.empty()) return fallback;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace taglets::util
