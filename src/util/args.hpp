// Tiny command-line flag parser for the tools/ binaries:
// --name value / --name=value / --flag (boolean), plus positional args.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace taglets::util {

class ArgParser {
 public:
  /// Parses argv; throws std::invalid_argument on a flag with no name.
  ArgParser(int argc, const char* const* argv);

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;
  /// String value; fallback when absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  long get_long(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Present as a bare flag, or with a truthy value.
  bool get_flag(const std::string& name) const;

  /// Names of all flags that were passed.
  std::vector<std::string> flag_names() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // "" for bare flags
  std::vector<std::string> positional_;
};

}  // namespace taglets::util
