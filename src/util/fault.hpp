// Deterministic fault injection for the I/O and stage-boundary paths
// (docs/ROBUSTNESS.md). Every durable side effect in the system passes
// through a named *site*; setting
//
//   TAGLETS_FAULT=<site>:<nth>[,<site>:<nth>...]
//
// makes the <nth> call (1-based) at that site throw FaultInjected, so a
// crash at any point of the pipeline can be reproduced bit for bit.
// Sites are plain dotted strings ("servable.save", "checkpoint.taglet",
// "pipeline.after_training"); the catalog lives in docs/ROBUSTNESS.md.
//
// The companion retry_with_backoff() helper bounds recovery from
// transient environmental failures (full disk, NFS hiccup): it retries
// std::runtime_error-family exceptions — including injected faults —
// with exponential backoff, and never retries logic errors
// (ContractViolation et al.), which indicate a bug rather than a flaky
// environment.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace taglets::util::fault {

/// Thrown by maybe_fail() when the configured call count is reached.
/// Derives from std::runtime_error: injected faults model environmental
/// failures, so every handler and retry policy treats them as such.
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Marks one I/O (or stage-boundary) call at a named site. Throws
/// FaultInjected iff TAGLETS_FAULT arms this site and this is the Nth
/// call. Disarmed cost is one relaxed atomic load.
void maybe_fail(const std::string& site);

/// True when any site is armed (the spec parsed to at least one entry).
bool any_armed();

/// Test hooks: install a spec string as if it came from TAGLETS_FAULT
/// (empty disarms everything) and reset all per-site call counters.
/// Malformed specs throw std::invalid_argument.
void set_spec_for_testing(const std::string& spec);
void reset_counters_for_testing();

/// Bounded retry policy for transient failures. max_attempts counts the
/// initial try, so 1 means "no retries" — the default, because every
/// write in this codebase is cheap to redo at a higher level and silent
/// retry loops hide real breakage. TAGLETS_IO_RETRIES (attempts) and
/// TAGLETS_IO_RETRY_BACKOFF_MS override the defaults for deployments
/// where storage genuinely flakes.
struct RetryPolicy {
  int max_attempts = 1;
  double initial_backoff_ms = 1.0;
  double multiplier = 2.0;

  static RetryPolicy from_env();
};

/// Runs `fn`, retrying per `policy` on std::runtime_error (which covers
/// FaultInjected). Logic errors propagate immediately: a contract
/// violation will not become correct by trying again.
template <class Fn>
auto retry_with_backoff(const std::string& what, const RetryPolicy& policy,
                        Fn&& fn) -> decltype(fn()) {
  double backoff_ms = policy.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const std::logic_error&) {
      throw;
    } catch (const std::runtime_error& e) {
      if (attempt >= policy.max_attempts) throw;
      TAGLETS_LOG(kWarn) << what << ": attempt " << attempt << "/"
                         << policy.max_attempts << " failed (" << e.what()
                         << "), retrying in " << backoff_ms << "ms";
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= policy.multiplier;
    }
  }
}

}  // namespace taglets::util::fault
