#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace taglets::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t combine_seeds(std::initializer_list<std::uint64_t> parts) {
  std::uint64_t state = 0x243f6a8885a308d3ULL;  // pi digits
  std::uint64_t out = 0;
  for (std::uint64_t p : parts) {
    state ^= p + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    out = splitmix64(state);
  }
  return out;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return static_cast<std::size_t>(x % n);
}

long Rng::uniform_int(long lo, long hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  return lo + static_cast<long>(
                  uniform_index(static_cast<std::size_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace taglets::util
