// CSV emission so experiment results can be post-processed / plotted
// outside the harness. Handles quoting of separators and quotes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace taglets::util {

/// Quote a single CSV field if needed (RFC 4180 style).
std::string csv_escape(const std::string& field);

/// Streams rows to an ostream; the header is written on construction.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);
  void write_row(const std::vector<std::string>& cells);
  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace taglets::util
