#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace taglets::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty");
  return *std::max_element(xs.begin(), xs.end());
}

double ci95(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double paired_t_statistic(std::span<const double> xs,
                          std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("paired_t_statistic: need paired n >= 2");
  }
  std::vector<double> diffs(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) diffs[i] = xs[i] - ys[i];
  const double sd = stddev(diffs);
  if (sd == 0.0) return 0.0;
  return mean(diffs) / (sd / std::sqrt(static_cast<double>(diffs.size())));
}

std::string MeanCi::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean << " ± " << ci;
  return os.str();
}

MeanCi summarize(std::span<const double> xs) {
  return MeanCi{mean(xs), ci95(xs)};
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace taglets::util
