#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace taglets::util {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::size_t common_prefix_length(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace taglets::util
