#include "util/csv.hpp"

#include <stdexcept>

namespace taglets::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  write_row(header);
  rows_ = 0;  // header does not count
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace taglets::util
