// Fixed-size thread pool with a futures-based submit() API. Hot paths
// (tensor kernels, ensembling, module fan-out) run on the shared
// util::Parallel layer instead; keep this class for ad-hoc
// future-returning task submission.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace taglets::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for all.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  /// Wait predicate; runs with mu_ held by the CondVar machinery,
  /// which the static analysis cannot see.
  bool wake_ready() const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return stopping_ || !queue_.empty();
  }

  std::vector<std::thread> workers_;
  Mutex mu_{"util.pool", lockrank::kUtilPool};
  std::queue<std::function<void()>> queue_ TAGLETS_GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ TAGLETS_GUARDED_BY(mu_) = false;
};

}  // namespace taglets::util
