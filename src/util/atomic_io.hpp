// Crash-safe file writes (docs/ROBUSTNESS.md). Every artifact the
// system persists — servable models, checkpoints, trace/metrics
// snapshots, results CSVs — goes through these helpers, which write to
// a temp file in the destination directory, flush and error-check the
// close, and only then rename over the final path. A crash, full disk,
// or injected fault at any point leaves either the old file or no file;
// never a partial one. The temp file is removed on failure.
//
// Each call names a fault-injection site (util/fault.hpp). The site is
// checked twice per write — call 1 models an open/write failure (no
// temp data survives), call 2 models a failure after the temp file is
// fully written but before the rename — so `site:1` and `site:2` in
// TAGLETS_FAULT cover both halves of the protocol deterministically.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace taglets::util {

/// Atomically replaces `path` with the bytes `writer` streams out
/// (opened in binary mode). Throws std::runtime_error (or the writer's
/// exception) on failure; `path` is untouched in that case.
void atomic_write_stream(const std::string& path, const std::string& site,
                         const std::function<void(std::ostream&)>& writer);

/// Convenience form for pre-rendered content.
void atomic_write_file(const std::string& path, std::string_view contents,
                       const std::string& site = "atomic_io.write");

/// The temp path atomic_write_stream stages into ("<path>.tmp");
/// exposed so tests and the CI fault matrix can assert it is cleaned up.
std::string atomic_temp_path(const std::string& path);

}  // namespace taglets::util
