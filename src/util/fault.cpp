#include "util/fault.hpp"

#include <atomic>
#include <map>

#include "util/env.hpp"
#include "util/sync.hpp"
#include "util/string_util.hpp"

namespace taglets::util::fault {

namespace {

struct State {
  Mutex mu{"util.fault", lockrank::kUtilFault};
  std::map<std::string, long> target
      TAGLETS_GUARDED_BY(mu);  // site -> 1-based failing call
  std::map<std::string, long> count
      TAGLETS_GUARDED_BY(mu);  // site -> calls observed so far
};

State& state() {
  static State s;
  return s;
}

/// Fast-path arm flag; sites only count calls while armed, so runs
/// without TAGLETS_FAULT pay a single relaxed load per site.
std::atomic<bool>& armed_flag() {
  static std::atomic<bool> armed{false};
  return armed;
}

/// Parses "site:nth,site:nth" (nth optional, default 1). Throws
/// std::invalid_argument on empty sites or unparsable counts so a typo
/// in TAGLETS_FAULT fails the run loudly instead of injecting nothing.
std::map<std::string, long> parse_spec(const std::string& spec) {
  std::map<std::string, long> target;
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    const auto colon = entry.rfind(':');
    std::string site = entry.substr(0, colon);
    long nth = 1;
    if (colon != std::string::npos) {
      const std::string count_text = entry.substr(colon + 1);
      try {
        std::size_t used = 0;
        nth = std::stol(count_text, &used);
        if (used != count_text.size()) throw std::invalid_argument(count_text);
      } catch (const std::exception&) {
        throw std::invalid_argument("TAGLETS_FAULT: bad call count '" +
                                    count_text + "' in entry '" + entry + "'");
      }
    }
    if (site.empty() || nth < 1) {
      throw std::invalid_argument("TAGLETS_FAULT: bad entry '" + entry + "'");
    }
    target[site] = nth;
  }
  return target;
}

void install_spec(const std::string& spec) {
  auto target = parse_spec(spec);
  State& s = state();
  MutexLock lock(s.mu);
  s.target = std::move(target);
  s.count.clear();
  armed_flag().store(!s.target.empty(), std::memory_order_release);
}

/// One-time TAGLETS_FAULT read; test hooks re-install over it.
void ensure_env_loaded() {
  static const bool loaded = [] {
    install_spec(env_string("TAGLETS_FAULT", ""));
    return true;
  }();
  (void)loaded;
}

}  // namespace

void maybe_fail(const std::string& site) {
  ensure_env_loaded();
  if (!armed_flag().load(std::memory_order_acquire)) return;
  State& s = state();
  MutexLock lock(s.mu);
  const auto it = s.target.find(site);
  if (it == s.target.end()) return;
  const long seen = ++s.count[site];
  if (seen == it->second) {
    throw FaultInjected("injected fault at site '" + site + "' (call #" +
                        std::to_string(seen) + ")");
  }
}

bool any_armed() {
  ensure_env_loaded();
  return armed_flag().load(std::memory_order_acquire);
}

void set_spec_for_testing(const std::string& spec) {
  ensure_env_loaded();
  install_spec(spec);
}

void reset_counters_for_testing() {
  ensure_env_loaded();
  State& s = state();
  MutexLock lock(s.mu);
  s.count.clear();
}

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy policy;
  policy.max_attempts =
      static_cast<int>(env_long("TAGLETS_IO_RETRIES", policy.max_attempts));
  if (policy.max_attempts < 1) policy.max_attempts = 1;
  const long backoff = env_long("TAGLETS_IO_RETRY_BACKOFF_MS", -1);
  if (backoff >= 0) policy.initial_backoff_ms = static_cast<double>(backoff);
  return policy;
}

}  // namespace taglets::util::fault
