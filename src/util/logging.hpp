// Minimal leveled logger. Experiments and benches log progress at INFO;
// library internals log at DEBUG so default output stays quiet.
#pragma once

#include <sstream>
#include <string>

namespace taglets::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Initialized from the
/// TAGLETS_LOG environment variable (debug|info|warn|error|off), default warn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "trained " << n << " modules";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_threshold()) detail::log_emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_threshold()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace taglets::util

#define TAGLETS_LOG(level) \
  ::taglets::util::LogLine(::taglets::util::LogLevel::level)
