// Minimal leveled logger. Experiments and benches log progress at INFO;
// library internals log at DEBUG so default output stays quiet.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace taglets::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Initialized from the
/// TAGLETS_LOG environment variable (debug|info|warn|error|off), default warn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// One emitted log statement with the metadata the structured sink
/// carries. `tid` is the same small thread id the tracer assigns
/// (obs::current_thread_id), so JSON log lines join trace spans.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::int64_t ts_ms = 0;  // wall clock, ms since the Unix epoch
  std::uint32_t tid = 0;
  std::string message;
};

/// Custom destination for log records. Installing a sink replaces the
/// stderr writer entirely (the threshold still applies); passing
/// nullptr restores the default. Sinks may be called concurrently.
using LogSink = std::function<void(const LogRecord&)>;
void set_log_sink(LogSink sink);

/// When enabled (TAGLETS_LOG_JSON=1 or set_log_json(true)), the default
/// stderr writer emits one JSON object per line — level, timestamp,
/// thread id, message — instead of the human "[LEVEL] msg" format. The
/// human format is untouched when disabled.
bool log_json_enabled();
void set_log_json(bool enabled);

/// The JSON line the structured mode writes (without the newline).
std::string format_json_log(const LogRecord& record);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "trained " << n << " modules";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_threshold()) detail::log_emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_threshold()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace taglets::util

#define TAGLETS_LOG(level) \
  ::taglets::util::LogLine(::taglets::util::LogLevel::level)
