#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace taglets::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |";
    return os.str();
  };
  auto rule = [&]() {
    std::ostringstream os;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|";
    return os.str();
  };

  std::ostringstream os;
  os << render_line(header_) << "\n" << rule() << "\n";
  for (const Row& row : rows_) {
    if (row.rule_before) os << rule() << "\n";
    os << render_line(row.cells) << "\n";
  }
  return os.str();
}

}  // namespace taglets::util
