// Deterministic pseudo-random number generation for reproducible
// experiments. All stochastic components of the system (data synthesis,
// weight init, shuffling, augmentation) draw from `Rng`, which wraps a
// xoshiro256** generator seeded through splitmix64 so that nearby seeds
// produce decorrelated streams.
#pragma once

#include <cstdint>
#include <vector>
#include <algorithm>
#include <cstddef>

namespace taglets::util {

/// splitmix64 step; used for seeding and cheap hashing of seed tuples.
std::uint64_t splitmix64(std::uint64_t& state);

/// Combine multiple seed components (e.g. {world_seed, split, shot, trial})
/// into a single well-mixed 64-bit seed.
std::uint64_t combine_seeds(std::initializer_list<std::uint64_t> parts);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be
/// used with <algorithm> shuffles, but the member helpers below are the
/// preferred interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive.
  long uniform_int(long lo, long hi);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n). k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fork a decorrelated child generator (stable given the call order).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace taglets::util
