// Wall-clock timing helpers for the serving-latency accounting the paper
// motivates (challenge 3: pipelines are difficult to serve in production).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace taglets::util {

/// Simple stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Collects per-call latencies and reports simple percentiles.
class LatencyRecorder {
 public:
  void record_ms(double ms) { samples_.push_back(ms); }
  std::size_t count() const { return samples_.size(); }
  double mean_ms() const;
  double percentile_ms(double p) const;  // p in [0, 100]
  std::string summary() const;

 private:
  std::vector<double> samples_;
};

}  // namespace taglets::util
