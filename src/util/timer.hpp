// Wall-clock timing helpers for the serving-latency accounting the paper
// motivates (challenge 3: pipelines are difficult to serve in production).
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace taglets::util {

/// Simple stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Collects per-call latencies and reports simple percentiles.
/// Thread-safe: record_ms and all readers may be called concurrently
/// (serving paths record from multiple worker threads at once). Copies
/// and moves snapshot the samples under the source's lock and give the
/// destination a fresh mutex; source and destination locks are never
/// held together, so two recorders sharing one lock rank cannot
/// deadlock.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder& other);
  LatencyRecorder& operator=(const LatencyRecorder& other);
  LatencyRecorder(LatencyRecorder&& other) noexcept;
  LatencyRecorder& operator=(LatencyRecorder&& other) noexcept;

  void record_ms(double ms);
  std::size_t count() const;
  double mean_ms() const;
  double percentile_ms(double p) const;  // p in [0, 100]
  /// Many percentiles from one snapshot: sorts (or reuses the cached
  /// sorted view of) the samples once instead of once per percentile.
  std::vector<double> percentiles_ms(std::span<const double> ps) const;
  std::string summary() const;
  /// Snapshot copy of all recorded samples, in record order.
  std::vector<double> samples() const;

 private:
  /// Rebuild the sorted cache if stale; call with mu_ held.
  void ensure_sorted_locked() const TAGLETS_REQUIRES(mu_);
  static double percentile_sorted(const std::vector<double>& sorted, double p);

  mutable Mutex mu_{"util.latency", lockrank::kUtilLatency};
  std::vector<double> samples_ TAGLETS_GUARDED_BY(mu_);
  /// Sorted copy of samples_, rebuilt lazily: percentile readers used
  /// to re-sort the full vector on every call, which made a stats
  /// snapshot O(k · n log n) for k percentiles.
  mutable std::vector<double> sorted_ TAGLETS_GUARDED_BY(mu_);
  mutable bool sorted_valid_ TAGLETS_GUARDED_BY(mu_) = false;
};

}  // namespace taglets::util
