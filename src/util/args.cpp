#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace taglets::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("ArgParser: bare '--' not supported");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag;
    // otherwise a bare boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long ArgParser::get_long(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long out = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("ArgParser: --" + name + " is not an integer");
  }
  return out;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double out = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("ArgParser: --" + name + " is not a number");
  }
  return out;
}

bool ArgParser::get_flag(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> ArgParser::flag_names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

}  // namespace taglets::util
