#include "util/atomic_io.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/fault.hpp"

namespace taglets::util {

namespace fs = std::filesystem;

std::string atomic_temp_path(const std::string& path) { return path + ".tmp"; }

void atomic_write_stream(const std::string& path, const std::string& site,
                         const std::function<void(std::ostream&)>& writer) {
  const std::string temp = atomic_temp_path(path);
  try {
    fault::maybe_fail(site);  // call 1: open/write failure
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("atomic_write: cannot open " + temp);
    }
    writer(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("atomic_write: write failed for " + temp);
    }
    out.close();
    if (out.fail()) {
      throw std::runtime_error("atomic_write: close failed for " + temp);
    }
    fault::maybe_fail(site);  // call 2: temp complete, rename lost
    fs::rename(temp, path);
  } catch (...) {
    std::error_code ec;
    fs::remove(temp, ec);  // best effort; never mask the original error
    throw;
  }
}

void atomic_write_file(const std::string& path, std::string_view contents,
                       const std::string& site) {
  atomic_write_stream(path, site, [&](std::ostream& out) {
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  });
}

}  // namespace taglets::util
