#include "util/thread_pool.hpp"

#include <algorithm>

namespace taglets::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Workers run arbitrary submitted tasks, so the destructor must not
  // hold any tracked lock while joining.
  check_join_safe(0, "ThreadPool::~ThreadPool");
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.wait(lock, [this] { return wake_ready(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([i, &fn] { fn(i); }));
  }
  // Wait for every task before rethrowing: queued tasks hold references
  // to `fn` and the caller's stack locals, so bailing out on the first
  // failed future would let later tasks run against a dead frame.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace taglets::util
