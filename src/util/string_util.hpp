// Small string helpers shared by the graph (concept naming), SCADS
// (prefix-based OOV embedding approximation, Appendix A.2), and table
// formatting code.
#pragma once

#include <string>
#include <vector>

namespace taglets::util {

std::vector<std::string> split(const std::string& s, char sep);
std::string join(const std::vector<std::string>& parts, const std::string& sep);
std::string to_lower(std::string s);
std::string trim(const std::string& s);
bool starts_with(const std::string& s, const std::string& prefix);

/// Length of the longest common prefix of two strings. Used by the
/// Appendix A.2 OOV embedding approximation ("terms that share a prefix
/// as long as possible with the given term").
std::size_t common_prefix_length(const std::string& a, const std::string& b);

/// Fixed-precision float formatting ("71.29").
std::string format_fixed(double value, int precision);

}  // namespace taglets::util
