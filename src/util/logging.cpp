#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "util/env.hpp"

namespace taglets::util {

namespace {

LogLevel initial_threshold() {
  const std::string v = env_string("TAGLETS_LOG", "warn");
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> threshold{initial_threshold()};
  return threshold;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace detail

}  // namespace taglets::util
