#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/sync.hpp"

namespace taglets::util {

namespace {

LogLevel initial_threshold() {
  const std::string v = env_string("TAGLETS_LOG", "warn");
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> threshold{initial_threshold()};
  return threshold;
}

std::atomic<bool>& json_flag() {
  static std::atomic<bool> enabled{env_flag("TAGLETS_LOG_JSON")};
  return enabled;
}

// Sink storage: a shared_ptr swap keeps a sink alive while a
// concurrent log statement is mid-call through it.
Mutex& sink_mu() {
  static Mutex mu{"util.log.sink", lockrank::kUtilLogSink};
  return mu;
}

std::shared_ptr<LogSink>& sink_storage() {
  static std::shared_ptr<LogSink> sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  MutexLock lock(sink_mu());
  sink_storage() =
      sink ? std::make_shared<LogSink>(std::move(sink)) : nullptr;
}

bool log_json_enabled() {
  return json_flag().load(std::memory_order_relaxed);
}

void set_log_json(bool enabled) {
  json_flag().store(enabled, std::memory_order_relaxed);
}

std::string format_json_log(const LogRecord& record) {
  std::ostringstream os;
  os << "{\"ts_ms\":" << record.ts_ms << ",\"level\":\"";
  switch (record.level) {
    case LogLevel::kDebug: os << "debug"; break;
    case LogLevel::kInfo: os << "info"; break;
    case LogLevel::kWarn: os << "warn"; break;
    case LogLevel::kError: os << "error"; break;
    case LogLevel::kOff: os << "off"; break;
  }
  os << "\",\"tid\":" << record.tid << ",\"msg\":\""
     << obs::json_escape(record.message) << "\"}";
  return os.str();
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::shared_ptr<LogSink> sink;
  {
    MutexLock lock(sink_mu());
    sink = sink_storage();
  }
  const bool json = log_json_enabled();
  LogRecord record;
  if (sink || json) {
    record.level = level;
    record.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
    record.tid = obs::current_thread_id();
    record.message = message;
  }
  if (sink) {
    (*sink)(record);
    return;
  }
  static Mutex mu{"util.log.emit", lockrank::kUtilLogEmit};
  MutexLock lock(mu);
  if (json) {
    std::cerr << format_json_log(record) << "\n";
  } else {
    // Default human format: byte-identical to the pre-structured logger.
    std::cerr << "[" << level_name(level) << "] " << message << "\n";
  }
}

}  // namespace detail

}  // namespace taglets::util
