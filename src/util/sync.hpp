// Annotated synchronization primitives: the one place in the tree that
// may touch std::mutex / std::shared_mutex / std::condition_variable
// (enforced by the `naked-mutex` lint rule).
//
// Three things live here, all std-only so every layer (including obs,
// which sits below util) can use them — the layering lint allowlists
// this header exactly like util/check.hpp:
//
//  1. Clang thread-safety macros (TAGLETS_GUARDED_BY & friends).
//     Under `clang -Wthread-safety` they make lock misuse a compile
//     error; under GCC they expand to nothing.
//  2. util::Mutex / util::SharedMutex / util::CondVar wrappers. Every
//     mutex carries a name and a lock rank (see util::lockrank below —
//     the table is documented in docs/CORRECTNESS.md).
//  3. A runtime lock-order checker (debug builds, i.e. when
//     TAGLETS_LOCK_ORDER_CHECKS is 1): a per-thread held-lock stack
//     detects rank inversions, recursive self-acquisition, and
//     cross-thread acquisition cycles among same-rank locks, printing
//     the held stacks of both threads involved. Mode comes from
//     TAGLETS_LOCK_ORDER=enforce|warn|off (default enforce).
//     util::check_join_safe() guards thread joins against the PR 7
//     frontend failover deadlock shape (joining a reader while holding
//     a lock the reader's exit path may need).
//
// CondVar deliberately has no predicate-less wait: lost-wakeup-prone
// `cv.wait(lk)` does not compile (and is also linted in case a raw
// std::condition_variable ever sneaks back in).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

// --------------------------------------------------- clang TSA macros

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TAGLETS_TSA(x) __attribute__((x))
#endif
#endif
#ifndef TAGLETS_TSA
#define TAGLETS_TSA(x)  // no-op outside clang
#endif

#define TAGLETS_CAPABILITY(x) TAGLETS_TSA(capability(x))
#define TAGLETS_SCOPED_CAPABILITY TAGLETS_TSA(scoped_lockable)
#define TAGLETS_GUARDED_BY(x) TAGLETS_TSA(guarded_by(x))
#define TAGLETS_PT_GUARDED_BY(x) TAGLETS_TSA(pt_guarded_by(x))
#define TAGLETS_REQUIRES(...) TAGLETS_TSA(requires_capability(__VA_ARGS__))
#define TAGLETS_REQUIRES_SHARED(...) \
  TAGLETS_TSA(requires_shared_capability(__VA_ARGS__))
#define TAGLETS_ACQUIRE(...) TAGLETS_TSA(acquire_capability(__VA_ARGS__))
#define TAGLETS_ACQUIRE_SHARED(...) \
  TAGLETS_TSA(acquire_shared_capability(__VA_ARGS__))
#define TAGLETS_RELEASE(...) TAGLETS_TSA(release_capability(__VA_ARGS__))
#define TAGLETS_RELEASE_SHARED(...) \
  TAGLETS_TSA(release_shared_capability(__VA_ARGS__))
#define TAGLETS_TRY_ACQUIRE(...) \
  TAGLETS_TSA(try_acquire_capability(__VA_ARGS__))
#define TAGLETS_EXCLUDES(...) TAGLETS_TSA(locks_excluded(__VA_ARGS__))
#define TAGLETS_ASSERT_CAPABILITY(x) TAGLETS_TSA(assert_capability(x))
#define TAGLETS_RETURN_CAPABILITY(x) TAGLETS_TSA(lock_returned(x))
#define TAGLETS_NO_THREAD_SAFETY_ANALYSIS \
  TAGLETS_TSA(no_thread_safety_analysis)

// Runtime lock-order checking is a debug-build feature; release builds
// compile util::Mutex down to a bare std::mutex (BM_SyncMutex* in
// bench/micro_core measures the difference away). Override with
// -DTAGLETS_LOCK_ORDER_CHECKS=0/1 — but uniformly for a whole build
// tree: the flag changes the layout of Mutex, so mixing TUs is an ODR
// violation.
#ifndef TAGLETS_LOCK_ORDER_CHECKS
#ifdef NDEBUG
#define TAGLETS_LOCK_ORDER_CHECKS 0
#else
#define TAGLETS_LOCK_ORDER_CHECKS 1
#endif
#endif

namespace taglets::util {

// Lock ranks: a thread may only acquire a lock whose rank is >= the
// rank of every lock it already holds (strictly greater for a
// different rank; equal ranks are allowed so per-instance locks of one
// class can nest, and the cycle detector below catches opposite-order
// pairs among them). Lower rank = acquired earlier / closer to the
// outside of the system. The full table with the acquisition paths
// that pin each value lives in docs/CORRECTNESS.md — keep the two in
// sync.
namespace lockrank {
// Outermost: lifecycle and control-plane serialization.
inline constexpr int kFleetFrontendLifecycle = 100;
inline constexpr int kFleetShardLifecycle = 102;
inline constexpr int kFleetClientControl = 104;
inline constexpr int kFleetFrontendHeartbeat = 106;
inline constexpr int kFleetShardReload = 108;
// Fleet data plane.
inline constexpr int kFleetFrontendConn = 120;
inline constexpr int kFleetFrontendPending = 130;
inline constexpr int kFleetClientPending = 132;
inline constexpr int kFleetFrontendRetired = 140;
inline constexpr int kFleetFrontendRing = 150;
inline constexpr int kFleetHealth = 160;
inline constexpr int kFleetFrontendClients = 170;
inline constexpr int kFleetFrontendEvents = 175;
inline constexpr int kFleetWrite = 180;
inline constexpr int kFleetShardHandlers = 190;
inline constexpr int kFleetShardConnQueue = 195;
inline constexpr int kFleetShardSwap = 200;
// Serving tier (acquired under fleet locks via shard dispatch).
inline constexpr int kServeLifecycle = 210;
inline constexpr int kServeQueue = 220;
inline constexpr int kServeStats = 230;
// Pipeline tier: the task-graph scheduler state and the backbone zoo.
// Both are leaf-like (their critical sections acquire nothing — node
// bodies and pretraining run with the lock dropped), but they are
// acquired from inside pool chunks, so they sit below the util leaves.
inline constexpr int kPipelineGraph = 232;
inline constexpr int kBackboneZoo = 236;
// Util leaves.
inline constexpr int kUtilLatency = 240;
inline constexpr int kUtilPool = 250;
inline constexpr int kUtilParallelErr = 255;
inline constexpr int kUtilFault = 260;
inline constexpr int kUtilLogSink = 270;
inline constexpr int kUtilLogEmit = 275;
// Obs innermost: metrics/trace are mirrored into from everywhere.
inline constexpr int kObsProcessName = 280;
inline constexpr int kObsTraceRegistry = 290;
inline constexpr int kObsTraceBuffer = 300;
inline constexpr int kObsMetrics = 310;
// Tests and benches that need ad-hoc locks.
inline constexpr int kTest = 900;
}  // namespace lockrank

enum class LockOrderMode { kOff, kWarn, kEnforce };

#if TAGLETS_LOCK_ORDER_CHECKS

namespace sync_detail {

struct OrderInfo {
  const char* name;
  int rank;
  std::uint64_t serial;  // unique per instance, never reused
};

struct Held {
  const OrderInfo* info;
  bool shared;
};

/// Per-thread stack of held locks. Deliberately a fixed-capacity POD
/// aggregate with a trivial destructor: thread_local objects destruct
/// in reverse construction order, and other TLS destructors (e.g. an
/// obs trace buffer deregistering itself) still lock mutexes on their
/// way out — were this a std::vector it could already be destroyed by
/// then, and the unlock bookkeeping would scribble on freed memory.
/// Trivially-destructible TLS storage stays valid for the whole
/// thread lifetime. Acquisitions past kCapacity are counted, not
/// recorded, so pops stay balanced even if something nests absurdly.
struct HeldStack {
  static constexpr std::size_t kCapacity = 64;
  Held entries[kCapacity];
  std::size_t size;
  std::size_t overflowed;  // acquisitions dropped at capacity
};
static_assert(std::is_trivially_destructible<HeldStack>::value,
              "held stack must not have a TLS destructor");

inline HeldStack& held_stack() {
  thread_local HeldStack stack{{}, 0, 0};
  return stack;
}

inline std::uint64_t next_serial() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

inline LockOrderMode mode_from_env() {
  const char* raw = std::getenv("TAGLETS_LOCK_ORDER");
  if (raw == nullptr || std::strcmp(raw, "enforce") == 0) {
    return LockOrderMode::kEnforce;
  }
  if (std::strcmp(raw, "warn") == 0) return LockOrderMode::kWarn;
  if (std::strcmp(raw, "off") == 0) return LockOrderMode::kOff;
  std::fprintf(stderr,
               "[taglets] unknown TAGLETS_LOCK_ORDER='%s' "
               "(want enforce|warn|off), using enforce\n",
               raw);
  return LockOrderMode::kEnforce;
}

inline std::atomic<LockOrderMode>& mode_slot() {
  static std::atomic<LockOrderMode> mode{mode_from_env()};
  return mode;
}

inline std::atomic<std::uint64_t>& violation_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Cross-thread acquisition-order graph over mutex instances. Nodes
/// are instance serials; an edge a->b is recorded the first time some
/// thread acquires b while holding a, together with that thread's held
/// stack so a later cycle report can print both sides.
struct OrderGraph {
  std::mutex mu;  // raw by design: the checker cannot check itself
  struct Edge {
    std::string holder_stack;  // formatted held stack at record time
    unsigned long long thread_id;
  };
  std::map<std::uint64_t, std::set<std::uint64_t>> adjacency;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Edge> edges;
  std::map<std::uint64_t, const char*> names;
};

inline OrderGraph& graph() {
  static OrderGraph* g = new OrderGraph();  // leaked: outlives all threads
  return *g;
}

inline std::string& last_report_slot() {
  static std::string* text = new std::string();
  return *text;
}

inline unsigned long long this_thread_value() {
  return static_cast<unsigned long long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

inline std::string format_stack(const HeldStack& stack) {
  std::string out;
  for (std::size_t i = 0; i < stack.size; ++i) {
    out += "    #" + std::to_string(i) + " \"" + stack.entries[i].info->name +
           "\" (rank " + std::to_string(stack.entries[i].info->rank) +
           (stack.entries[i].shared ? ", shared" : "") + ")\n";
  }
  if (stack.overflowed != 0) {
    out += "    (+" + std::to_string(stack.overflowed) +
           " more, past stack capacity)\n";
  }
  if (stack.size == 0 && stack.overflowed == 0) out = "    (none)\n";
  return out;
}

inline void report(const std::string& text) {
  violation_counter().fetch_add(1, std::memory_order_relaxed);
  const LockOrderMode mode = mode_slot().load(std::memory_order_relaxed);
  {
    OrderGraph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    last_report_slot() = text;
  }
  std::fprintf(stderr, "%s", text.c_str());
  std::fflush(stderr);
  if (mode == LockOrderMode::kEnforce) std::abort();
}

/// Depth-first search for a path new_serial -> ... -> target in the
/// recorded order graph. Fills `path` with the serials along the way.
inline bool find_path_locked(const OrderGraph& g, std::uint64_t from,
                             std::uint64_t target, std::set<std::uint64_t>& seen,
                             std::vector<std::uint64_t>& path) {
  if (from == target) {
    path.push_back(from);
    return true;
  }
  if (!seen.insert(from).second) return false;
  auto it = g.adjacency.find(from);
  if (it == g.adjacency.end()) return false;
  for (const std::uint64_t next : it->second) {
    if (find_path_locked(g, next, target, seen, path)) {
      path.push_back(from);
      return true;
    }
  }
  return false;
}

inline void before_acquire(const OrderInfo& info) {
  if (mode_slot().load(std::memory_order_relaxed) == LockOrderMode::kOff) {
    return;
  }
  HeldStack& stack = held_stack();
  if (stack.size == 0) return;
  for (std::size_t i = 0; i < stack.size; ++i) {
    if (stack.entries[i].info->serial == info.serial) {
      report("[taglets] lock-order violation (recursive acquisition): "
             "this thread already holds \"" +
             std::string(info.name) + "\" (rank " + std::to_string(info.rank) +
             ")\n  held locks (outermost first):\n" + format_stack(stack));
      return;
    }
  }
  const Held& top = stack.entries[stack.size - 1];
  if (info.rank < top.info->rank) {
    report("[taglets] lock-order violation (rank inversion): acquiring \"" +
           std::string(info.name) + "\" (rank " + std::to_string(info.rank) +
           ") while holding \"" + std::string(top.info->name) + "\" (rank " +
           std::to_string(top.info->rank) +
           ")\n  held locks (outermost first):\n" + format_stack(stack));
    return;
  }
  // Record held -> new edges and look for a reverse path, which means
  // some thread (maybe this one, earlier) acquired these instances in
  // the opposite order — the classic two-replica conn_mu deadlock.
  // The violation text is composed under g.mu but reported after
  // releasing it: report() takes g.mu itself to stash the last-report
  // slot, so calling it here would self-deadlock the checker.
  OrderGraph& g = graph();
  std::string violation;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    g.names[info.serial] = info.name;
    for (std::size_t i = 0; i < stack.size; ++i) {
      const Held& held = stack.entries[i];
      g.names[held.info->serial] = held.info->name;
      std::set<std::uint64_t> seen;
      std::vector<std::uint64_t> path;
      if (find_path_locked(g, info.serial, held.info->serial, seen, path)) {
        std::string cycle;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          cycle += "\"" + std::string(g.names[*it]) + "\" -> ";
        }
        cycle += "\"" + std::string(info.name) + "\"";
        std::string prior;
        auto edge = g.edges.find({info.serial, path.size() >= 2
                                                   ? *(path.rbegin() + 1)
                                                   : held.info->serial});
        if (edge != g.edges.end()) {
          prior = "  prior edge recorded on thread " +
                  std::to_string(edge->second.thread_id) +
                  " which held:\n" + edge->second.holder_stack;
        }
        violation = "[taglets] lock-order violation (acquisition cycle): " +
                    cycle + "\n  this thread holds (outermost first):\n" +
                    format_stack(stack) + prior;
        break;
      }
      const auto key = std::make_pair(held.info->serial, info.serial);
      if (g.edges.find(key) == g.edges.end()) {
        g.adjacency[held.info->serial].insert(info.serial);
        g.edges[key] = {format_stack(stack), this_thread_value()};
      }
    }
  }
  if (!violation.empty()) report(violation);
}

inline void after_acquire(const OrderInfo& info, bool shared) {
  if (mode_slot().load(std::memory_order_relaxed) == LockOrderMode::kOff) {
    return;
  }
  HeldStack& stack = held_stack();
  if (stack.size < HeldStack::kCapacity) {
    stack.entries[stack.size++] = {&info, shared};
  } else {
    ++stack.overflowed;
  }
}

inline void on_release(const OrderInfo& info) {
  HeldStack& stack = held_stack();
  // Search from the top: releases are almost always LIFO, but unlock
  // order is not required to match.
  for (std::size_t i = stack.size; i > 0; --i) {
    if (stack.entries[i - 1].info->serial == info.serial) {
      for (std::size_t j = i - 1; j + 1 < stack.size; ++j) {
        stack.entries[j] = stack.entries[j + 1];
      }
      --stack.size;
      return;
    }
  }
  if (stack.overflowed != 0) {
    --stack.overflowed;
    return;
  }
  // Not on the stack: acquired while checks were off, or mode was
  // toggled mid-flight (tests do this). Ignore.
}

}  // namespace sync_detail

inline bool lock_order_checks_enabled() { return true; }

inline LockOrderMode lock_order_mode() {
  return sync_detail::mode_slot().load(std::memory_order_relaxed);
}

inline void set_lock_order_mode_for_testing(LockOrderMode mode) {
  sync_detail::mode_slot().store(mode, std::memory_order_relaxed);
}

inline std::uint64_t lock_order_violation_count() {
  return sync_detail::violation_counter().load(std::memory_order_relaxed);
}

inline std::string last_lock_order_report() {
  sync_detail::OrderGraph& g = sync_detail::graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return sync_detail::last_report_slot();
}

/// Guards a std::thread::join() against the PR 7 frontend failover
/// deadlock shape: joining a thread while holding a lock the joined
/// thread's exit path may acquire. `joinee_min_rank` is the lowest
/// rank the joined thread can take; holding anything at or above it
/// here is reported as a violation.
inline void check_join_safe(int joinee_min_rank, const char* site) {
  if (lock_order_mode() == LockOrderMode::kOff) return;
  const sync_detail::HeldStack& stack = sync_detail::held_stack();
  for (std::size_t i = 0; i < stack.size; ++i) {
    const sync_detail::Held& held = stack.entries[i];
    if (held.info->rank >= joinee_min_rank) {
      sync_detail::report(
          "[taglets] lock-order violation (join while holding a lock the "
          "joined thread may need) at " +
          std::string(site) + ": joining with \"" +
          std::string(held.info->name) + "\" (rank " +
          std::to_string(held.info->rank) + ") held, joinee floor rank " +
          std::to_string(joinee_min_rank) +
          "\n  held locks (outermost first):\n" +
          sync_detail::format_stack(stack));
      return;
    }
  }
}

#else  // !TAGLETS_LOCK_ORDER_CHECKS

inline bool lock_order_checks_enabled() { return false; }
inline LockOrderMode lock_order_mode() { return LockOrderMode::kOff; }
inline void set_lock_order_mode_for_testing(LockOrderMode) {}
inline std::uint64_t lock_order_violation_count() { return 0; }
inline std::string last_lock_order_report() { return {}; }
inline void check_join_safe(int, const char*) {}

#endif  // TAGLETS_LOCK_ORDER_CHECKS

/// std::mutex with a name, a lock rank, and (in debug builds) runtime
/// order checking. Prefer MutexLock over calling lock()/unlock().
class TAGLETS_CAPABILITY("mutex") Mutex {
 public:
  Mutex(const char* name, int rank)
#if TAGLETS_LOCK_ORDER_CHECKS
      : ord_{name, rank, sync_detail::next_serial()}
#endif
  {
    (void)name;
    (void)rank;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TAGLETS_ACQUIRE() {
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::before_acquire(ord_);
#endif
    mu_.lock();
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::after_acquire(ord_, /*shared=*/false);
#endif
  }

  void unlock() TAGLETS_RELEASE() {
    mu_.unlock();
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::on_release(ord_);
#endif
  }

  bool try_lock() TAGLETS_TRY_ACQUIRE(true) {
    // A try-lock cannot block, so it is exempt from the rank check,
    // but a success still lands on the held stack so later ordinary
    // acquisitions are checked against it.
    if (!mu_.try_lock()) return false;
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::after_acquire(ord_, /*shared=*/false);
#endif
    return true;
  }

  /// The wrapped handle, for CondVar only.
  std::mutex& native() { return mu_; }

  const char* name() const {
#if TAGLETS_LOCK_ORDER_CHECKS
    return ord_.name;
#else
    return "";
#endif
  }

  int rank() const {
#if TAGLETS_LOCK_ORDER_CHECKS
    return ord_.rank;
#else
    return 0;
#endif
  }

 private:
  std::mutex mu_;
#if TAGLETS_LOCK_ORDER_CHECKS
  sync_detail::OrderInfo ord_;
#endif
};

/// std::shared_mutex with the same bookkeeping; shared acquisitions
/// participate in rank and cycle checks too (a reader can deadlock
/// against a writer exactly like a writer against a writer).
class TAGLETS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(const char* name, int rank)
#if TAGLETS_LOCK_ORDER_CHECKS
      : ord_{name, rank, sync_detail::next_serial()}
#endif
  {
    (void)name;
    (void)rank;
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TAGLETS_ACQUIRE() {
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::before_acquire(ord_);
#endif
    mu_.lock();
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::after_acquire(ord_, /*shared=*/false);
#endif
  }

  void unlock() TAGLETS_RELEASE() {
    mu_.unlock();
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::on_release(ord_);
#endif
  }

  void lock_shared() TAGLETS_ACQUIRE_SHARED() {
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::before_acquire(ord_);
#endif
    mu_.lock_shared();
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::after_acquire(ord_, /*shared=*/true);
#endif
  }

  void unlock_shared() TAGLETS_RELEASE_SHARED() {
    mu_.unlock_shared();
#if TAGLETS_LOCK_ORDER_CHECKS
    sync_detail::on_release(ord_);
#endif
  }

 private:
  std::shared_mutex mu_;
#if TAGLETS_LOCK_ORDER_CHECKS
  sync_detail::OrderInfo ord_;
#endif
};

/// RAII exclusive lock over Mutex; relockable (unlock()/lock()) so
/// hand-over-hand patterns keep their annotations.
class TAGLETS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TAGLETS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    owns_ = true;
  }

  ~MutexLock() TAGLETS_RELEASE() {
    if (owns_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() TAGLETS_RELEASE() {
    mu_->unlock();
    owns_ = false;
  }

  void lock() TAGLETS_ACQUIRE() {
    mu_->lock();
    owns_ = true;
  }

  bool owns_lock() const { return owns_; }
  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  bool owns_ = false;
};

/// RAII exclusive lock over SharedMutex (the writer side).
class TAGLETS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TAGLETS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterMutexLock() TAGLETS_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock over SharedMutex (the reader side).
class TAGLETS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TAGLETS_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() TAGLETS_RELEASE_SHARED() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to util::Mutex. Every wait takes a
/// predicate — there is deliberately no way to write the
/// lost-wakeup-prone `cv.wait(lk)`.
///
/// Rule for notifiers: mutate the state the predicate reads while
/// holding the mutex (or at minimum take-and-drop it after mutating),
/// otherwise a waiter can check the predicate, miss the change, and
/// sleep through the notify.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native = adopt(lock);
    cv_.wait(native, std::move(pred));
    native.release();  // ownership stays with `lock`
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native = adopt(lock);
    const bool satisfied = cv_.wait_for(native, timeout, std::move(pred));
    native.release();
    return satisfied;
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(MutexLock& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native = adopt(lock);
    const bool satisfied = cv_.wait_until(native, deadline, std::move(pred));
    native.release();
    return satisfied;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  /// Temporarily adopts the already-held native mutex so the std wait
  /// machinery can unlock/relock it; the held-lock stack keeps the
  /// mutex marked held across the wait, which is conservative and
  /// cannot produce false positives (a blocked thread acquires
  /// nothing).
  static std::unique_lock<std::mutex> adopt(MutexLock& lock) {
    return std::unique_lock<std::mutex>(lock.mutex()->native(),
                                        std::adopt_lock);
  }

  std::condition_variable cv_;
};

}  // namespace taglets::util
