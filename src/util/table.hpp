// Plain-text table rendering for the experiment harness. Benches print
// rows formatted like the paper's tables (method / backbone / per-shot
// accuracy cells with 95% CIs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace taglets::util {

/// Accumulates rows of string cells, then renders them with aligned
/// columns and a header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  std::size_t row_count() const { return rows_.size(); }
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace taglets::util
