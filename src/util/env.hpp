// Environment-variable configuration helpers. The experiment harness
// reads its knobs (seed count, fast mode) from the environment so bench
// binaries stay argument-free, as required by the ctest/bench loop.
#pragma once

#include <string>

namespace taglets::util {

/// Value of `name`, or `fallback` when unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Integer value of `name`; `fallback` when unset or unparsable.
long env_long(const std::string& name, long fallback);

/// True when `name` is set to a truthy value (1/true/yes/on).
bool env_flag(const std::string& name, bool fallback = false);

}  // namespace taglets::util
