// Contracts library: the single way TAGLETS states and enforces
// invariants. Three tiers (see docs/CORRECTNESS.md):
//
//   TAGLETS_CHECK*   — always on, for preconditions whose violation means
//                      a programmer error at a module boundary. Throws
//                      ContractViolation carrying the expression text,
//                      operand values, and file:line.
//   TAGLETS_DCHECK*  — hot-path invariants. Enabled in debug builds or
//                      with -DTAGLETS_DEBUG_CHECKS; compiled to nothing
//                      in release (BM_CheckDisabled guards the cost).
//   Domain helpers   — TAGLETS_CHECK_SHAPE / _FINITE / _PROB_ROW encode
//                      the shapes/finiteness/probability invariants the
//                      pipeline relies on end to end.
//
// Environmental failures (unreadable file, truncated stream, exhausted
// queue) are NOT contract violations — keep throwing std::runtime_error
// for those. ContractViolation derives from std::invalid_argument so
// existing handlers and tests that catch the standard logic-error
// hierarchy keep working.
//
// This header is deliberately std-only with no project includes: it
// sits below every layer (even obs) so any module may use it. The
// layering lint rule allowlists it for exactly this reason.
#pragma once

#include <cmath>
#include <cstddef>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace taglets::util {

/// Thrown by every TAGLETS_CHECK* macro. what() has the form
///   file:line: TAGLETS_CHECK_EQ failed: a == b (3 vs. 5): detail
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

namespace check_detail {

template <class T>
concept Streamable = requires(std::ostream& os, const T& v) { os << v; };

template <class T>
void print_value(std::ostream& os, const T& v) {
  if constexpr (std::is_same_v<std::remove_cvref_t<T>, bool>) {
    os << (v ? "true" : "false");
  } else if constexpr (Streamable<T>) {
    os << v;
  } else {
    os << "<unprintable>";
  }
}

inline void append_message(std::ostream&) {}
template <class T, class... Rest>
void append_message(std::ostream& os, const T& v, const Rest&... rest) {
  print_value(os, v);
  append_message(os, rest...);
}

/// Concatenates the optional trailing macro arguments into a detail
/// string ("" when no extra arguments were given).
template <class... Args>
std::string message(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    append_message(os, args...);
    return os.str();
  }
}

// std::cmp_* make mixed signed/unsigned comparisons exact, but they
// reject bool and character types, so route only "plain" integers
// through them and use the built-in operators for everything else.
template <class T>
inline constexpr bool is_cmp_int_v =
    std::is_integral_v<T> && !std::is_same_v<std::remove_cv_t<T>, bool> &&
    !std::is_same_v<std::remove_cv_t<T>, char> &&
    !std::is_same_v<std::remove_cv_t<T>, wchar_t> &&
    !std::is_same_v<std::remove_cv_t<T>, char8_t> &&
    !std::is_same_v<std::remove_cv_t<T>, char16_t> &&
    !std::is_same_v<std::remove_cv_t<T>, char32_t>;

template <class A, class B>
constexpr bool cmp_eq(const A& a, const B& b) {
  if constexpr (is_cmp_int_v<A> && is_cmp_int_v<B>) {
    return std::cmp_equal(a, b);
  } else {
    return a == b;
  }
}
template <class A, class B>
constexpr bool cmp_ne(const A& a, const B& b) {
  if constexpr (is_cmp_int_v<A> && is_cmp_int_v<B>) {
    return std::cmp_not_equal(a, b);
  } else {
    return a != b;
  }
}
template <class A, class B>
constexpr bool cmp_lt(const A& a, const B& b) {
  if constexpr (is_cmp_int_v<A> && is_cmp_int_v<B>) {
    return std::cmp_less(a, b);
  } else {
    return a < b;
  }
}
template <class A, class B>
constexpr bool cmp_le(const A& a, const B& b) {
  if constexpr (is_cmp_int_v<A> && is_cmp_int_v<B>) {
    return std::cmp_less_equal(a, b);
  } else {
    return a <= b;
  }
}
template <class A, class B>
constexpr bool cmp_gt(const A& a, const B& b) {
  return cmp_lt(b, a);
}
template <class A, class B>
constexpr bool cmp_ge(const A& a, const B& b) {
  return cmp_le(b, a);
}

[[noreturn]] inline void fail(const char* macro, const char* expr,
                              const char* file, int line,
                              const std::string& detail) {
  std::ostringstream os;
  os << file << ":" << line << ": " << macro << " failed: " << expr;
  if (!detail.empty()) os << ": " << detail;
  throw ContractViolation(os.str());
}

template <class A, class B>
[[noreturn]] void fail_op(const char* macro, const char* expr, const A& a,
                          const B& b, const char* file, int line,
                          const std::string& detail) {
  std::ostringstream os;
  os << file << ":" << line << ": " << macro << " failed: " << expr << " (";
  print_value(os, a);
  os << " vs. ";
  print_value(os, b);
  os << ")";
  if (!detail.empty()) os << ": " << detail;
  throw ContractViolation(os.str());
}

/// Index of the first non-finite element, or npos when all are finite.
inline constexpr std::size_t npos = static_cast<std::size_t>(-1);
template <class Range>
std::size_t first_non_finite(const Range& r) {
  std::size_t i = 0;
  for (float x : r) {
    if (!std::isfinite(x)) return i;
    ++i;
  }
  return npos;
}

inline constexpr float kProbElementEps = 1e-5f;
inline constexpr float kProbSumEps = 1e-3f;

/// True when every element is in [0,1] (within eps) and the row sums to
/// 1 within kProbSumEps. Empty rows are rejected.
template <class Range>
bool is_prob_row(const Range& r, double* sum_out = nullptr) {
  double sum = 0.0;
  std::size_t n = 0;
  bool in_range = true;
  for (float x : r) {
    if (!std::isfinite(x) || x < -kProbElementEps || x > 1.0f + kProbElementEps)
      in_range = false;
    sum += static_cast<double>(x);
    ++n;
  }
  if (sum_out != nullptr) *sum_out = sum;
  return n > 0 && in_range && std::abs(sum - 1.0) <= kProbSumEps;
}

template <class Range>
[[noreturn]] void fail_prob_row(const char* expr, const Range& r,
                                const char* file, int line,
                                const std::string& detail) {
  double sum = 0.0;
  is_prob_row(r, &sum);
  std::ostringstream os;
  os << expr << " is not a probability row (sum=" << sum << ")";
  fail("TAGLETS_CHECK_PROB_ROW", os.str().c_str(), file, line, detail);
}

}  // namespace check_detail
}  // namespace taglets::util

// ---- always-on checks ------------------------------------------------

#define TAGLETS_CHECK(cond, ...)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::taglets::util::check_detail::fail(                                   \
          "TAGLETS_CHECK", #cond, __FILE__, __LINE__,                        \
          ::taglets::util::check_detail::message(__VA_ARGS__));              \
    }                                                                        \
  } while (false)

#define TAGLETS_CHECK_OP_(macro, cmpfn, optext, a, b, ...)                   \
  do {                                                                       \
    const auto& taglets_check_a_ = (a);                                      \
    const auto& taglets_check_b_ = (b);                                      \
    if (!::taglets::util::check_detail::cmpfn(taglets_check_a_,              \
                                              taglets_check_b_)) {           \
      ::taglets::util::check_detail::fail_op(                                \
          macro, #a " " optext " " #b, taglets_check_a_, taglets_check_b_,   \
          __FILE__, __LINE__,                                                \
          ::taglets::util::check_detail::message(__VA_ARGS__));              \
    }                                                                        \
  } while (false)

#define TAGLETS_CHECK_EQ(a, b, ...)                                          \
  TAGLETS_CHECK_OP_("TAGLETS_CHECK_EQ", cmp_eq, "==", a,                     \
                    b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_CHECK_NE(a, b, ...)                                          \
  TAGLETS_CHECK_OP_("TAGLETS_CHECK_NE", cmp_ne, "!=", a,                     \
                    b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_CHECK_LT(a, b, ...)                                          \
  TAGLETS_CHECK_OP_("TAGLETS_CHECK_LT", cmp_lt, "<", a,                      \
                    b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_CHECK_LE(a, b, ...)                                          \
  TAGLETS_CHECK_OP_("TAGLETS_CHECK_LE", cmp_le, "<=", a,                     \
                    b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_CHECK_GT(a, b, ...)                                          \
  TAGLETS_CHECK_OP_("TAGLETS_CHECK_GT", cmp_gt, ">", a,                      \
                    b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_CHECK_GE(a, b, ...)                                          \
  TAGLETS_CHECK_OP_("TAGLETS_CHECK_GE", cmp_ge, ">=", a,                     \
                    b __VA_OPT__(, ) __VA_ARGS__)

// ---- domain helpers --------------------------------------------------

/// `t` must be a rank-2 tensor (anything with is_matrix/rows/cols/
/// shape_string) of exactly `r` x `c`.
#define TAGLETS_CHECK_SHAPE(t, r, c, ...)                                    \
  do {                                                                       \
    const auto& taglets_check_t_ = (t);                                      \
    const std::size_t taglets_check_r_ = (r);                                \
    const std::size_t taglets_check_c_ = (c);                                \
    if (!(taglets_check_t_.is_matrix() &&                                    \
          taglets_check_t_.rows() == taglets_check_r_ &&                     \
          taglets_check_t_.cols() == taglets_check_c_)) {                    \
      ::taglets::util::check_detail::fail(                                   \
          "TAGLETS_CHECK_SHAPE",                                            \
          (std::string(#t) + " expected " +                                  \
           std::to_string(taglets_check_r_) + "x" +                          \
           std::to_string(taglets_check_c_) + ", got " +                     \
           taglets_check_t_.shape_string())                                  \
              .c_str(),                                                      \
          __FILE__, __LINE__,                                                \
          ::taglets::util::check_detail::message(__VA_ARGS__));              \
    }                                                                        \
  } while (false)

/// Every element of `t.data()` must be finite (no NaN/Inf).
#define TAGLETS_CHECK_FINITE(t, ...)                                         \
  do {                                                                       \
    const auto& taglets_check_t_ = (t);                                      \
    const std::size_t taglets_check_i_ =                                     \
        ::taglets::util::check_detail::first_non_finite(                     \
            taglets_check_t_.data());                                        \
    if (taglets_check_i_ != ::taglets::util::check_detail::npos) {           \
      ::taglets::util::check_detail::fail(                                   \
          "TAGLETS_CHECK_FINITE",                                           \
          (std::string(#t) + " has non-finite element at index " +           \
           std::to_string(taglets_check_i_))                                 \
              .c_str(),                                                      \
          __FILE__, __LINE__,                                                \
          ::taglets::util::check_detail::message(__VA_ARGS__));              \
    }                                                                        \
  } while (false)

/// `row` (any range of float) must be a probability distribution:
/// elements in [0,1] and summing to 1 within a small tolerance.
#define TAGLETS_CHECK_PROB_ROW(row, ...)                                     \
  do {                                                                       \
    const auto& taglets_check_row_ = (row);                                  \
    if (!::taglets::util::check_detail::is_prob_row(taglets_check_row_)) {   \
      ::taglets::util::check_detail::fail_prob_row(                          \
          #row, taglets_check_row_, __FILE__, __LINE__,                      \
          ::taglets::util::check_detail::message(__VA_ARGS__));              \
    }                                                                        \
  } while (false)

// ---- debug checks ----------------------------------------------------

#if !defined(NDEBUG) || defined(TAGLETS_DEBUG_CHECKS)
#define TAGLETS_DCHECK_ENABLED 1
#else
#define TAGLETS_DCHECK_ENABLED 0
#endif

#if TAGLETS_DCHECK_ENABLED

#define TAGLETS_DCHECK(cond, ...) TAGLETS_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_EQ(a, b, ...)                                         \
  TAGLETS_CHECK_EQ(a, b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_NE(a, b, ...)                                         \
  TAGLETS_CHECK_NE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_LT(a, b, ...)                                         \
  TAGLETS_CHECK_LT(a, b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_LE(a, b, ...)                                         \
  TAGLETS_CHECK_LE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_GT(a, b, ...)                                         \
  TAGLETS_CHECK_GT(a, b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_GE(a, b, ...)                                         \
  TAGLETS_CHECK_GE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_SHAPE(t, r, c, ...)                                   \
  TAGLETS_CHECK_SHAPE(t, r, c __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_FINITE(t, ...)                                        \
  TAGLETS_CHECK_FINITE(t __VA_OPT__(, ) __VA_ARGS__)
#define TAGLETS_DCHECK_PROB_ROW(row, ...)                                    \
  TAGLETS_CHECK_PROB_ROW(row __VA_OPT__(, ) __VA_ARGS__)

#else  // release: type-check the operands, evaluate and emit nothing.

#define TAGLETS_CHECK_DISCARD_(expr)                                         \
  do {                                                                       \
    if (false) {                                                             \
      (void)(expr);                                                          \
    }                                                                        \
  } while (false)

#define TAGLETS_DCHECK(cond, ...) TAGLETS_CHECK_DISCARD_(cond)
#define TAGLETS_DCHECK_EQ(a, b, ...)                                         \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::cmp_eq((a), (b)))
#define TAGLETS_DCHECK_NE(a, b, ...)                                         \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::cmp_ne((a), (b)))
#define TAGLETS_DCHECK_LT(a, b, ...)                                         \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::cmp_lt((a), (b)))
#define TAGLETS_DCHECK_LE(a, b, ...)                                         \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::cmp_le((a), (b)))
#define TAGLETS_DCHECK_GT(a, b, ...)                                         \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::cmp_gt((a), (b)))
#define TAGLETS_DCHECK_GE(a, b, ...)                                         \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::cmp_ge((a), (b)))
#define TAGLETS_DCHECK_SHAPE(t, r, c, ...)                                   \
  TAGLETS_CHECK_DISCARD_((t).is_matrix() && (t).rows() == (r) &&             \
                         (t).cols() == (c))
#define TAGLETS_DCHECK_FINITE(t, ...)                                        \
  TAGLETS_CHECK_DISCARD_(                                                    \
      ::taglets::util::check_detail::first_non_finite((t).data()))
#define TAGLETS_DCHECK_PROB_ROW(row, ...)                                    \
  TAGLETS_CHECK_DISCARD_(::taglets::util::check_detail::is_prob_row(row))

#endif  // TAGLETS_DCHECK_ENABLED
