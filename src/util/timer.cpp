#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace taglets::util {

LatencyRecorder::LatencyRecorder(const LatencyRecorder& other)
    : samples_(other.samples()) {}

LatencyRecorder& LatencyRecorder::operator=(const LatencyRecorder& other) {
  if (this == &other) return *this;
  std::vector<double> copied = other.samples();
  std::lock_guard<std::mutex> lock(mu_);
  samples_ = std::move(copied);
  return *this;
}

LatencyRecorder::LatencyRecorder(LatencyRecorder&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  samples_ = std::move(other.samples_);
  other.samples_.clear();
}

LatencyRecorder& LatencyRecorder::operator=(LatencyRecorder&& other) noexcept {
  if (this == &other) return *this;
  std::vector<double> taken;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    taken = std::move(other.samples_);
    other.samples_.clear();
  }
  std::lock_guard<std::mutex> lock(mu_);
  samples_ = std::move(taken);
  return *this;
}

void LatencyRecorder::record_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(ms);
}

std::size_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::vector<double> LatencyRecorder::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

double LatencyRecorder::mean_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mean(samples_);
}

double LatencyRecorder::percentile_ms(double p) const {
  std::vector<double> sorted = samples();
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string LatencyRecorder::summary() const {
  // Take one snapshot so n/mean/percentiles describe the same instant
  // even while other threads keep recording.
  const std::vector<double> snapshot = samples();
  LatencyRecorder frozen;
  frozen.samples_ = snapshot;
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "n=" << snapshot.size() << " mean=" << frozen.mean_ms() << "ms p50="
     << frozen.percentile_ms(50) << "ms p99=" << frozen.percentile_ms(99)
     << "ms";
  return os.str();
}

}  // namespace taglets::util
