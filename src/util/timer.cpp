#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace taglets::util {

LatencyRecorder::LatencyRecorder(const LatencyRecorder& other)
    : samples_(other.samples()) {}

LatencyRecorder& LatencyRecorder::operator=(const LatencyRecorder& other) {
  if (this == &other) return *this;
  std::vector<double> copied = other.samples();
  MutexLock lock(mu_);
  samples_ = std::move(copied);
  sorted_valid_ = false;
  return *this;
}

LatencyRecorder::LatencyRecorder(LatencyRecorder&& other) noexcept {
  MutexLock lock(other.mu_);
  samples_ = std::move(other.samples_);
  other.samples_.clear();
  other.sorted_valid_ = false;
}

LatencyRecorder& LatencyRecorder::operator=(LatencyRecorder&& other) noexcept {
  if (this == &other) return *this;
  std::vector<double> taken;
  {
    MutexLock lock(other.mu_);
    taken = std::move(other.samples_);
    other.samples_.clear();
    other.sorted_valid_ = false;
  }
  MutexLock lock(mu_);
  samples_ = std::move(taken);
  sorted_valid_ = false;
  return *this;
}

void LatencyRecorder::record_ms(double ms) {
  MutexLock lock(mu_);
  samples_.push_back(ms);
  sorted_valid_ = false;
}

std::size_t LatencyRecorder::count() const {
  MutexLock lock(mu_);
  return samples_.size();
}

std::vector<double> LatencyRecorder::samples() const {
  MutexLock lock(mu_);
  return samples_;
}

double LatencyRecorder::mean_ms() const {
  MutexLock lock(mu_);
  return mean(samples_);
}

void LatencyRecorder::ensure_sorted_locked() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double LatencyRecorder::percentile_sorted(const std::vector<double>& sorted,
                                          double p) {
  if (sorted.empty()) return 0.0;
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double LatencyRecorder::percentile_ms(double p) const {
  MutexLock lock(mu_);
  ensure_sorted_locked();
  return percentile_sorted(sorted_, p);
}

std::vector<double> LatencyRecorder::percentiles_ms(
    std::span<const double> ps) const {
  MutexLock lock(mu_);
  ensure_sorted_locked();
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) out.push_back(percentile_sorted(sorted_, p));
  return out;
}

std::string LatencyRecorder::summary() const {
  // One lock scope so n/mean/percentiles describe the same instant
  // even while other threads keep recording, with a single sort.
  std::size_t n = 0;
  double mean_value = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  {
    MutexLock lock(mu_);
    ensure_sorted_locked();
    n = samples_.size();
    mean_value = mean(samples_);
    p50 = percentile_sorted(sorted_, 50);
    p99 = percentile_sorted(sorted_, 99);
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "n=" << n << " mean=" << mean_value << "ms p50=" << p50
     << "ms p99=" << p99 << "ms";
  return os.str();
}

}  // namespace taglets::util
