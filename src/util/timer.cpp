#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace taglets::util {

double LatencyRecorder::mean_ms() const { return mean(samples_); }

double LatencyRecorder::percentile_ms(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string LatencyRecorder::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "n=" << count() << " mean=" << mean_ms() << "ms p50="
     << percentile_ms(50) << "ms p99=" << percentile_ms(99) << "ms";
  return os.str();
}

}  // namespace taglets::util
