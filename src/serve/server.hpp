// In-process inference server for the distilled end model (design
// principle 3: production traffic hits one compact servable classifier,
// not the taglet ensemble). Single-example requests are coalesced in a
// bounded submission queue and executed as dynamic micro-batches on
// ServableModel::predict_proba; the GEMMs inside each forward pass fan
// out over the shared util::Parallel pool.
//
// Concurrency model: layer forward passes cache activations on the
// model instance (see nn/layers.hpp), so one ServableModel cannot run
// two forwards at once. The server therefore keeps one private model
// replica per worker thread — workers never share mutable model state,
// and clients only ever touch the queue.
//
// Lifecycle:
//  * construct  — queue is open; submissions are accepted and parked.
//  * start()    — worker threads begin pulling micro-batches.
//  * stop()     — in-flight batches complete; requests still queued are
//                 failed deterministically (kDeadlineExceeded when
//                 already expired, kShutdown otherwise); later
//                 submissions resolve immediately with kShutdown. Every
//                 future ever handed out resolves exactly once.
// A stopped server stays stopped; the destructor calls stop().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "ensemble/servable.hpp"
#include "util/sync.hpp"
#include "obs/metrics.hpp"
#include "serve/batching_policy.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_stats.hpp"

namespace taglets::serve {

struct ServerConfig {
  /// Worker threads, each with a private model replica.
  std::size_t workers = 1;
  /// Submission-queue bound; admission control rejects beyond this.
  std::size_t queue_capacity = 256;
  BatchingPolicy batching;
  /// Applied to submit() calls without an explicit deadline; <= 0
  /// means no deadline.
  double default_deadline_ms = 0.0;

  void validate() const;  // throws std::invalid_argument
};

class Server {
 public:
  /// Copies `model` once per worker. Throws on invalid config.
  Server(const ensemble::ServableModel& model, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the worker threads. No-op when already running; throws
  /// std::runtime_error after stop().
  void start();
  /// Drain and shut down (see lifecycle above). Idempotent, blocks
  /// until every admitted request has resolved.
  void stop();
  /// Stop pulling new work without deciding the pending requests'
  /// fate: closes the queue, waits for in-flight batches to finish,
  /// and returns every request still queued with its promise
  /// *unresolved* — the caller owns them now. This is the hot-swap
  /// hook: fleet shards hand the pending set to the replacement
  /// server via adopt(), so a model reload fails zero requests.
  /// stop() is exactly close_and_drain() + fail-the-pending-set.
  /// Idempotent: later calls return empty.
  std::vector<Request> close_and_drain();
  /// Enqueue an already-built request, preserving its id and promise
  /// (the reload handoff path). Unlike submit(), adoption bypasses the
  /// capacity bound — the request was admitted once and must not be
  /// re-rejected just because new traffic saturated this queue during
  /// the drain. Never blocks; only a closed queue (shutdown racing the
  /// handoff) resolves the request, with kShutdown, so the caller
  /// never holds an unresolved promise afterwards. Throws on a
  /// wrong-shape input.
  void adopt(Request request);
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Enqueue one example (rank-1, length input_dim()) under the
  /// config's default deadline. Never blocks: a full queue or a stopped
  /// server resolves the returned future immediately with
  /// kRejected/kShutdown. Throws std::invalid_argument on a
  /// wrong-shape input (programming error, not an operational outcome).
  std::future<Response> submit(tensor::Tensor input);
  /// Same with an explicit deadline; `deadline_ms <= 0` means none.
  std::future<Response> submit(tensor::Tensor input, double deadline_ms);
  /// Same, carrying the caller's distributed-trace id (0 = none); the
  /// fleet shard path, so a request's frontend and shard spans share a
  /// trace_id in merged traces.
  std::future<Response> submit(tensor::Tensor input, double deadline_ms,
                               std::uint64_t trace_id);

  /// Synchronous convenience wrappers: submit + wait, with the default
  /// or an explicit deadline.
  Response predict(tensor::Tensor input);
  Response predict(tensor::Tensor input, double deadline_ms);

  const ServerStats& stats() const { return stats_; }
  const ServerConfig& config() const { return config_; }
  std::size_t input_dim() const { return input_dim_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  void worker_loop(std::size_t worker_index);
  void run_batch(ensemble::ServableModel& model, std::vector<Request> batch);
  void resolve(Request& request, Response response);

  ServerConfig config_;
  std::size_t input_dim_ = 0;
  std::vector<ensemble::ServableModel> replicas_;  // one per worker
  RequestQueue queue_;
  ServerStats stats_;
  /// Per-server id sequence; ids start at 1 and are echoed in
  /// Response::request_id and the "serve.request" trace spans.
  std::atomic<std::uint64_t> next_request_id_{1};
  obs::Gauge* queue_depth_gauge_ = nullptr;  // serve.queue_depth
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  util::Mutex lifecycle_mu_{"serve.lifecycle",
                            util::lockrank::kServeLifecycle};
};

}  // namespace taglets::serve
