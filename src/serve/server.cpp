#include "serve/server.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::serve {

using tensor::Tensor;

namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

Clock::time_point deadline_from(Clock::time_point now, double deadline_ms) {
  if (deadline_ms <= 0.0) return Clock::time_point::max();
  return now + std::chrono::nanoseconds(
                   static_cast<std::chrono::nanoseconds::rep>(deadline_ms * 1e6));
}

}  // namespace

void ServerConfig::validate() const {
  TAGLETS_CHECK_NE(workers, 0, "ServerConfig: workers must be >= 1");
  TAGLETS_CHECK_NE(queue_capacity, 0,
                   "ServerConfig: queue_capacity must be >= 1");
  batching.validate();
}

Server::Server(const ensemble::ServableModel& model, ServerConfig config)
    : config_((config.validate(), std::move(config))),
      queue_(config_.queue_capacity) {
  replicas_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) replicas_.push_back(model);
  input_dim_ = replicas_.front().model().input_dim();
  stats_.set_workers(config_.workers);
  queue_depth_gauge_ = &obs::MetricsRegistry::global().gauge("serve.queue_depth");
}

Server::~Server() { stop(); }

void Server::start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::runtime_error("Server::start: server already stopped");
  }
  if (running_.load(std::memory_order_acquire)) return;
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  running_.store(true, std::memory_order_release);
}

std::vector<Request> Server::close_and_drain() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return {};
  running_.store(false, std::memory_order_release);
  // Closing the queue lets each worker finish the batch it already
  // claimed (in-flight work completes) and then exit. Because close()
  // and try_push() serialize on the queue mutex, a racing submit()
  // either lands its request before the close — and is part of the
  // drained set below — or observes kClosed and resolves its own
  // future with kShutdown. Either way no future is left dangling.
  queue_.close();
  // Workers touch the queue and stats locks (ranks above lifecycle),
  // never the lifecycle lock itself, so joining under lifecycle_mu_ is
  // safe — and the guard proves no lower-ranked lock leaks in here.
  util::check_join_safe(util::lockrank::kServeQueue,
                        "Server::close_and_drain");
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  return queue_.drain();
}

void Server::stop() {
  std::vector<Request> pending = close_and_drain();
  const Clock::time_point now = Clock::now();
  for (Request& request : pending) {
    Response response;
    response.status = request.expired(now) ? Status::kDeadlineExceeded
                                           : Status::kShutdown;
    response.queue_ms = ms_between(request.enqueued_at, now);
    response.total_ms = response.queue_ms;
    resolve(request, std::move(response));
  }
}

void Server::adopt(Request request) {
  TAGLETS_CHECK(request.input.is_vector() && request.input.size() == input_dim_,
                "Server::adopt: input must be a rank-1 tensor of length " +
                    std::to_string(input_dim_));
  // Adopted work was already admitted by the predecessor server, so it
  // bypasses the capacity bound: a queue that saturated while the old
  // server drained must not re-reject requests it contractually owns
  // (a reload fails zero admitted requests). Only a closed queue — a
  // shutdown racing the handoff — can still fail the request.
  const RequestQueue::Push outcome = queue_.force_push(request);
  if (outcome == RequestQueue::Push::kOk) {
    const std::size_t depth = queue_.size();
    stats_.record_submitted(depth);
    queue_depth_gauge_->set(static_cast<double>(depth));
    return;
  }
  Response response;
  response.status = Status::kShutdown;
  response.request_id = request.id;
  stats_.record_rejected(response.status);
  request.promise.set_value(std::move(response));
}

std::future<Response> Server::submit(Tensor input) {
  return submit(std::move(input), config_.default_deadline_ms);
}

std::future<Response> Server::submit(Tensor input, double deadline_ms) {
  return submit(std::move(input), deadline_ms, 0);
}

std::future<Response> Server::submit(Tensor input, double deadline_ms,
                                     std::uint64_t trace_id) {
  TAGLETS_CHECK(!(!input.is_vector() || input.size() != input_dim_),
                "Server::submit: input must be a rank-1 tensor of length " +
                    std::to_string(input_dim_));
  Request request;
  request.input = std::move(input);
  request.trace_id = trace_id;
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.enqueued_at = Clock::now();
  request.deadline = deadline_from(request.enqueued_at, deadline_ms);
  std::future<Response> future = request.promise.get_future();

  const RequestQueue::Push outcome = queue_.try_push(request);
  if (outcome == RequestQueue::Push::kOk) {
    const std::size_t depth = queue_.size();
    stats_.record_submitted(depth);
    queue_depth_gauge_->set(static_cast<double>(depth));
    return future;
  }
  // Admission control: resolve immediately, never block the producer.
  Response response;
  response.status = outcome == RequestQueue::Push::kFull ? Status::kRejected
                                                         : Status::kShutdown;
  response.request_id = request.id;
  stats_.record_rejected(response.status);
  request.promise.set_value(std::move(response));
  return future;
}

Response Server::predict(Tensor input) {
  return submit(std::move(input)).get();
}

Response Server::predict(Tensor input, double deadline_ms) {
  return submit(std::move(input), deadline_ms).get();
}

void Server::worker_loop(std::size_t worker_index) {
  ensemble::ServableModel& model = replicas_[worker_index];
  const std::chrono::nanoseconds delay = config_.batching.effective_delay();
  for (;;) {
    std::vector<Request> batch =
        queue_.pop_batch(config_.batching.max_batch_size, delay);
    if (batch.empty()) return;  // queue closed
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    run_batch(model, std::move(batch));
  }
}

void Server::run_batch(ensemble::ServableModel& model,
                       std::vector<Request> batch) {
  TAGLETS_TRACE_SCOPE("serve.batch",
                      {{"claimed", std::to_string(batch.size())}});
  const Clock::time_point dispatch = Clock::now();
  // Requests that sat in the queue past their deadline never touch the
  // model; once a live request is dispatched it always completes, even
  // if its deadline passes mid-forward (the result already exists).
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    if (request.expired(dispatch)) {
      Response response;
      response.status = Status::kDeadlineExceeded;
      response.queue_ms = ms_between(request.enqueued_at, dispatch);
      response.total_ms = response.queue_ms;
      resolve(request, std::move(response));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  // Exactly-once bookkeeping: a throw anywhere below (the forward
  // pass, but also response assembly for request i after 0..i-1 were
  // already resolved) must fail only the *unresolved* remainder.
  // Without this flag a mid-loop throw would re-resolve the early
  // requests in the catch block — std::future_error out of a catch
  // block, taking the worker thread (and the process) with it.
  std::vector<bool> resolved(live.size(), false);
  auto resolve_at = [&](std::size_t i, Response response) {
    resolve(live[i], std::move(response));
    resolved[i] = true;
  };
  try {
    stats_.record_batch(live.size());
    Tensor inputs = Tensor::zeros(live.size(), input_dim_);
    for (std::size_t i = 0; i < live.size(); ++i) {
      auto row = inputs.row(i);
      const auto data = live[i].input.data();
      std::copy(data.begin(), data.end(), row.begin());
    }
    Tensor proba;
    {
      TAGLETS_TRACE_SCOPE("serve.forward",
                          {{"rows", std::to_string(live.size())}});
      proba = model.predict_proba(inputs);
    }
    const Clock::time_point done = Clock::now();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::size_t label = tensor::argmax(proba.row(i));
      Response response;
      response.status = Status::kOk;
      response.label = label;
      response.class_name = model.class_names().at(label);
      response.confidence = proba.at(i, label);
      response.queue_ms = ms_between(live[i].enqueued_at, dispatch);
      response.total_ms = ms_between(live[i].enqueued_at, done);
      response.batch_size = live.size();
      resolve_at(i, std::move(response));
    }
  } catch (const std::exception& e) {
    const Clock::time_point done = Clock::now();
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (resolved[i]) continue;
      Response response;
      response.status = Status::kError;
      response.error = e.what();
      response.queue_ms = ms_between(live[i].enqueued_at, dispatch);
      response.total_ms = ms_between(live[i].enqueued_at, done);
      response.batch_size = live.size();
      resolve_at(i, std::move(response));
    }
  }
}

void Server::resolve(Request& request, Response response) {
  response.request_id = request.id;
  // The request's whole enqueue -> batch -> forward -> resolve life as
  // one retroactive span (it crosses threads, so it cannot be RAII).
  if (obs::trace_enabled()) {
    obs::TraceAttrs attrs = {{"id", std::to_string(request.id)},
                             {"status", status_name(response.status)}};
    if (request.trace_id != 0) {
      attrs.emplace_back("trace_id", std::to_string(request.trace_id));
    }
    obs::Tracer::global().record_complete("serve.request", request.enqueued_at,
                                          Clock::now(), std::move(attrs));
  }
  // Counters first, promise last, so a future.get() observer always
  // sees the stats for its own request already recorded.
  stats_.record_response(response);
  request.promise.set_value(std::move(response));
}

}  // namespace taglets::serve
