// Request admission path of the serving subsystem (design principle 3:
// the distilled end model is what production traffic hits, under
// latency SLAs). A bounded MPMC queue connects client threads to the
// server's batching workers. Admission control is reject-on-full:
// producers are never blocked indefinitely — a full queue is reported
// back as load shedding, which keeps tail latency bounded instead of
// letting the backlog grow without limit.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/sync.hpp"

namespace taglets::serve {

using Clock = std::chrono::steady_clock;

/// Terminal outcome of one request.
enum class Status {
  kOk,                // prediction produced before shutdown
  kRejected,          // load shed at admission: submission queue full
  kDeadlineExceeded,  // still queued past its deadline
  kShutdown,          // queued but unexpired when the server stopped
  kError,             // model execution threw; see Response::error
};

/// Stable lowercase name for reports/JSON ("ok", "rejected", ...).
const char* status_name(Status status);

/// What the submitter's future resolves to. Every submitted request
/// resolves exactly once, whatever happens to the server.
struct Response {
  Status status = Status::kError;
  /// Id assigned to the request at submission (see Request::id); lets
  /// load-test output be joined with trace spans and logs.
  std::uint64_t request_id = 0;
  std::size_t label = 0;      // argmax class (valid when status == kOk)
  std::string class_name;     // class name for `label`
  float confidence = 0.0f;    // softmax probability of `label`
  double queue_ms = 0.0;      // admission -> batch dispatch
  double total_ms = 0.0;      // admission -> response
  std::size_t batch_size = 0; // size of the micro-batch this rode in
  std::string error;          // diagnostic for kError

  bool ok() const { return status == Status::kOk; }
};

/// One queued inference request: a rank-1 feature vector plus timing
/// metadata. The deadline is a wall-clock point after which the server
/// no longer runs the model for this request; `Clock::time_point::max()`
/// means no deadline.
struct Request {
  tensor::Tensor input;
  /// Per-server id, assigned at submission starting from 1 (0 = never
  /// submitted). Echoed in Response::request_id and attached to the
  /// request's "serve.request" trace span.
  std::uint64_t id = 0;
  /// Distributed-trace id propagated from the caller (fleet frontend);
  /// 0 = no trace context. Attached to the "serve.request" span so a
  /// merged cross-process trace joins this request's spans end to end.
  std::uint64_t trace_id = 0;
  Clock::time_point enqueued_at{};
  Clock::time_point deadline = Clock::time_point::max();
  std::promise<Response> promise;

  bool expired(Clock::time_point now) const { return now >= deadline; }
};

/// Bounded multi-producer/multi-consumer submission queue.
///
/// Producers call try_push, which returns immediately: kOk, kFull
/// (admission control), or kClosed (after close()). Consumers call
/// pop_batch, which blocks until work arrives or the queue closes.
/// After close(), pop_batch returns empty even if requests remain
/// queued — leftover requests are the *pending* set that shutdown must
/// fail deterministically, and drain() hands them to the owner for
/// exactly that.
class RequestQueue {
 public:
  enum class Push { kOk, kFull, kClosed };

  /// `capacity` must be >= 1.
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission. On kFull/kClosed the request is returned
  /// untouched in `request` so the caller still owns the promise.
  Push try_push(Request& request);

  /// Admission for a request that was already admitted once (the
  /// reload-handoff path, Server::adopt): ignores the capacity bound,
  /// so a replacement queue that filled up during the drain cannot
  /// re-reject work the old server accepted. Never returns kFull;
  /// kClosed (a shutdown race) is still reported, request untouched.
  Push force_push(Request& request);

  /// Pop up to `max_batch` requests as one micro-batch. Blocks until at
  /// least one request is queued or the queue is closed. Once the first
  /// request of a batch is claimed, waits at most `max_delay` for more
  /// before flushing (max_delay == 0 flushes whatever is immediately
  /// available). Returns empty only when the queue is closed.
  std::vector<Request> pop_batch(std::size_t max_batch,
                                 std::chrono::nanoseconds max_delay);

  /// Stop handing out work: wakes all blocked consumers, makes further
  /// try_push return kClosed. Queued requests stay for drain().
  void close();
  bool closed() const;

  /// Remove and return everything still queued (shutdown fail path).
  std::vector<Request> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  /// Wait predicate; runs with mu_ held by the CondVar machinery,
  /// which the static analysis cannot see.
  bool pop_ready() const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return closed_ || !items_.empty();
  }

  const std::size_t capacity_;
  mutable util::Mutex mu_{"serve.queue", util::lockrank::kServeQueue};
  util::CondVar cv_;
  std::deque<Request> items_ TAGLETS_GUARDED_BY(mu_);
  bool closed_ TAGLETS_GUARDED_BY(mu_) = false;
};

}  // namespace taglets::serve
