#include "serve/server_stats.hpp"

#include <sstream>

namespace taglets::serve {

namespace {

/// Batch-size buckets up to the largest plausible micro-batch.
std::vector<double> batch_size_buckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

}  // namespace

ServerStats::ServerStats() {
  // One metrics surface: every ServerStats (there is normally one per
  // server, all servers in a process share the registry) mirrors its
  // counters into the process-wide registry at record time, so
  // pipeline and serve metrics export together.
  auto& registry = obs::MetricsRegistry::global();
  reg_submitted_ = &registry.counter("serve.requests_submitted_total");
  reg_completed_ = &registry.counter("serve.requests_ok_total");
  reg_rejected_full_ = &registry.counter("serve.requests_rejected_full_total");
  reg_rejected_shutdown_ =
      &registry.counter("serve.requests_rejected_shutdown_total");
  reg_deadline_missed_ =
      &registry.counter("serve.requests_deadline_missed_total");
  reg_failed_shutdown_ =
      &registry.counter("serve.requests_failed_shutdown_total");
  reg_failed_error_ = &registry.counter("serve.requests_failed_error_total");
  reg_batches_ = &registry.counter("serve.batches_total");
  reg_batch_size_ = &registry.histogram("serve.batch_size",
                                        batch_size_buckets());
  reg_latency_ms_ = &registry.histogram("serve.latency_ms",
                                        obs::default_latency_buckets_ms());
  reg_queue_wait_ms_ = &registry.histogram("serve.queue_wait_ms",
                                           obs::default_latency_buckets_ms());
}

void ServerStats::set_workers(std::size_t workers) {
  workers_.store(workers, std::memory_order_relaxed);
}

void ServerStats::record_submitted(std::size_t queue_depth) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  reg_submitted_->add();
  util::MutexLock lock(mu_);
  if (queue_depth > peak_queue_depth_) peak_queue_depth_ = queue_depth;
}

void ServerStats::record_rejected(Status reason) {
  if (reason == Status::kShutdown) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    reg_rejected_shutdown_->add();
  } else {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    reg_rejected_full_->add();
  }
}

void ServerStats::record_batch(std::size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  reg_batches_->add();
  reg_batch_size_->observe(static_cast<double>(batch_size));
  util::MutexLock lock(mu_);
  if (batch_size >= batch_size_counts_.size()) {
    batch_size_counts_.resize(batch_size + 1, 0);
  }
  ++batch_size_counts_[batch_size];
}

void ServerStats::record_response(const Response& response) {
  switch (response.status) {
    case Status::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      reg_completed_->add();
      total_latency_.record_ms(response.total_ms);
      reg_latency_ms_->observe(response.total_ms);
      break;
    case Status::kDeadlineExceeded:
      deadline_missed_.fetch_add(1, std::memory_order_relaxed);
      reg_deadline_missed_->add();
      break;
    case Status::kShutdown:
      failed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      reg_failed_shutdown_->add();
      break;
    default:
      failed_error_.fetch_add(1, std::memory_order_relaxed);
      reg_failed_error_->add();
      break;
  }
  queue_wait_.record_ms(response.queue_ms);
  reg_queue_wait_ms_->observe(response.queue_ms);
}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot s;
  s.workers = workers_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
  s.failed_shutdown = failed_shutdown_.load(std::memory_order_relaxed);
  s.failed_error = failed_error_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(mu_);
    s.peak_queue_depth = peak_queue_depth_;
    s.batch_size_counts = batch_size_counts_;
  }
  std::uint64_t rows = 0;
  for (std::size_t size = 0; size < s.batch_size_counts.size(); ++size) {
    rows += s.batch_size_counts[size] * size;
  }
  s.mean_batch_size =
      s.batches == 0 ? 0.0
                     : static_cast<double>(rows) / static_cast<double>(s.batches);
  // Batch percentile reads: one sort per recorder per snapshot instead
  // of one per percentile.
  const double ps[] = {50, 95, 99};
  const std::vector<double> queue_ps = queue_wait_.percentiles_ms(ps);
  s.queue_p50_ms = queue_ps[0];
  s.queue_p95_ms = queue_ps[1];
  s.queue_p99_ms = queue_ps[2];
  const std::vector<double> latency_ps = total_latency_.percentiles_ms(ps);
  s.latency_mean_ms = total_latency_.mean_ms();
  s.latency_p50_ms = latency_ps[0];
  s.latency_p95_ms = latency_ps[1];
  s.latency_p99_ms = latency_ps[2];
  return s;
}

std::string ServerStats::report() const {
  const Snapshot s = snapshot();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "serve stats:\n"
     << "  workers: " << s.workers << "\n"
     << "  requests: submitted=" << s.submitted << " ok=" << s.completed
     << " rejected_full=" << s.rejected_full
     << " rejected_shutdown=" << s.rejected_shutdown
     << " deadline_missed=" << s.deadline_missed
     << " failed_shutdown=" << s.failed_shutdown
     << " failed_error=" << s.failed_error << "\n"
     << "  batches: n=" << s.batches << " mean_size=" << s.mean_batch_size
     << " sizes=[";
  bool first = true;
  for (std::size_t size = 1; size < s.batch_size_counts.size(); ++size) {
    if (s.batch_size_counts[size] == 0) continue;
    if (!first) os << " ";
    os << size << "x" << s.batch_size_counts[size];
    first = false;
  }
  os << "]\n"
     << "  queue: peak_depth=" << s.peak_queue_depth
     << " wait p50=" << s.queue_p50_ms << "ms p95=" << s.queue_p95_ms
     << "ms p99=" << s.queue_p99_ms << "ms\n"
     << "  latency (ok): mean=" << s.latency_mean_ms
     << "ms p50=" << s.latency_p50_ms << "ms p95=" << s.latency_p95_ms
     << "ms p99=" << s.latency_p99_ms << "ms\n";
  return os.str();
}

std::string ServerStats::json() const {
  const Snapshot s = snapshot();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "{\"workers\":" << s.workers << ",\"submitted\":" << s.submitted
     << ",\"ok\":" << s.completed
     << ",\"rejected_full\":" << s.rejected_full
     << ",\"rejected_shutdown\":" << s.rejected_shutdown
     << ",\"rejected_total\":" << s.rejected_total()
     << ",\"deadline_missed\":" << s.deadline_missed
     << ",\"failed_shutdown\":" << s.failed_shutdown
     << ",\"failed_error\":" << s.failed_error
     << ",\"failed_total\":" << s.failed_total()
     << ",\"batches\":" << s.batches
     << ",\"mean_batch_size\":" << s.mean_batch_size
     << ",\"peak_queue_depth\":" << s.peak_queue_depth
     << ",\"queue_p50_ms\":" << s.queue_p50_ms
     << ",\"queue_p95_ms\":" << s.queue_p95_ms
     << ",\"queue_p99_ms\":" << s.queue_p99_ms
     << ",\"latency_mean_ms\":" << s.latency_mean_ms
     << ",\"latency_p50_ms\":" << s.latency_p50_ms
     << ",\"latency_p95_ms\":" << s.latency_p95_ms
     << ",\"latency_p99_ms\":" << s.latency_p99_ms << "}";
  return os.str();
}

}  // namespace taglets::serve
