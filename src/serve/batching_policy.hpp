// Dynamic micro-batching policy: a batch flushes when it reaches
// max_batch_size or when max_delay_ms has elapsed since its first
// request was claimed — whichever comes first. Larger batches amortize
// per-forward overhead across the GEMM rows; the delay cap bounds the
// latency cost of waiting for stragglers.
#pragma once

#include <chrono>
#include <cstddef>

namespace taglets::serve {

struct BatchingPolicy {
  /// Upper bound on micro-batch rows handed to one forward pass.
  std::size_t max_batch_size = 16;
  /// Longest a claimed batch may wait for more requests before flushing.
  double max_delay_ms = 1.0;

  /// Throws std::invalid_argument on max_batch_size == 0 or a negative
  /// delay.
  void validate() const;

  /// The flush delay the server actually uses. When the shared
  /// util::Parallel pool is serial (TAGLETS_THREADS=1) this is clamped
  /// to zero: with no intra-batch parallelism to amortize, waiting for
  /// a fuller batch only adds latency, so the policy falls back to
  /// flushing whatever is already queued.
  std::chrono::nanoseconds effective_delay() const;
};

}  // namespace taglets::serve
