// Thread-safe serving telemetry: outcome counters, queue-depth and
// batch-size distributions, and end-to-end latency percentiles. All
// recording methods may be called concurrently from client threads,
// batching workers, and the shutdown path; readers get a consistent
// snapshot. Exported both as a human-readable text report and as a
// single-line JSON blob so benches and CI can track the serving
// trajectory across PRs.
//
// Every recording method also updates the process-wide
// obs::MetricsRegistry (serve.* counters and histograms), so the serve
// path shares one metrics surface with the pipeline — a --metrics-out
// snapshot covers both without a second export path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/request_queue.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace taglets::serve {

class ServerStats {
 public:
  ServerStats();
  /// Number of worker replicas serving this stats surface; set once by
  /// the owning Server so exports carry the capacity context (fleet
  /// aggregation joins on it instead of re-deriving from config).
  void set_workers(std::size_t workers);
  /// One request admitted; `queue_depth` is the submission-queue depth
  /// observed right after the push.
  void record_submitted(std::size_t queue_depth);
  /// One request turned away at admission (kRejected / kShutdown).
  void record_rejected(Status reason);
  /// One micro-batch of `batch_size` live rows dispatched to the model.
  void record_batch(std::size_t batch_size);
  /// Terminal outcome of one admitted request (kOk / kDeadlineExceeded /
  /// kShutdown / kError) with its latency breakdown.
  void record_response(const Response& response);

  /// Point-in-time copy of every counter and distribution.
  struct Snapshot {
    std::size_t workers = 0;             // replica/worker count
    std::uint64_t submitted = 0;         // admitted into the queue
    std::uint64_t completed = 0;         // resolved kOk
    std::uint64_t rejected_full = 0;     // load shed: queue full
    std::uint64_t rejected_shutdown = 0; // turned away after stop
    std::uint64_t deadline_missed = 0;   // resolved kDeadlineExceeded
    std::uint64_t failed_shutdown = 0;   // pending, failed by stop
    std::uint64_t failed_error = 0;      // resolved kError
    std::uint64_t batches = 0;           // micro-batches dispatched
    std::size_t peak_queue_depth = 0;
    /// batch_size_counts[s] = number of batches with exactly s rows
    /// (index 0 unused).
    std::vector<std::uint64_t> batch_size_counts;
    double mean_batch_size = 0.0;
    double queue_p50_ms = 0.0, queue_p95_ms = 0.0, queue_p99_ms = 0.0;
    double latency_mean_ms = 0.0;
    double latency_p50_ms = 0.0, latency_p95_ms = 0.0, latency_p99_ms = 0.0;

    /// Every admitted request that has been resolved, by any status.
    std::uint64_t resolved() const {
      return completed + deadline_missed + failed_shutdown + failed_error;
    }
    /// Turned away at admission (load shed + post-stop), the "reject"
    /// side of the reject-vs-deadline breakdown fleet aggregation uses.
    std::uint64_t rejected_total() const {
      return rejected_full + rejected_shutdown;
    }
    /// Admitted but not served (deadline misses + shutdown fails +
    /// model errors).
    std::uint64_t failed_total() const {
      return deadline_missed + failed_shutdown + failed_error;
    }
  };
  Snapshot snapshot() const;

  /// Multi-line human-readable report.
  std::string report() const;
  /// Single-line JSON object with the same fields.
  std::string json() const;

 private:
  std::atomic<std::size_t> workers_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> deadline_missed_{0};
  std::atomic<std::uint64_t> failed_shutdown_{0};
  std::atomic<std::uint64_t> failed_error_{0};
  std::atomic<std::uint64_t> batches_{0};

  mutable util::Mutex mu_{"serve.stats", util::lockrank::kServeStats};
  std::size_t peak_queue_depth_ TAGLETS_GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> batch_size_counts_ TAGLETS_GUARDED_BY(mu_);

  util::LatencyRecorder queue_wait_;    // admission -> dispatch (resolved only)
  util::LatencyRecorder total_latency_; // admission -> response, kOk only

  // Cached registry handles (registry references are stable for the
  // process lifetime, so recording is a single atomic op per metric).
  obs::Counter* reg_submitted_ = nullptr;
  obs::Counter* reg_completed_ = nullptr;
  obs::Counter* reg_rejected_full_ = nullptr;
  obs::Counter* reg_rejected_shutdown_ = nullptr;
  obs::Counter* reg_deadline_missed_ = nullptr;
  obs::Counter* reg_failed_shutdown_ = nullptr;
  obs::Counter* reg_failed_error_ = nullptr;
  obs::Counter* reg_batches_ = nullptr;
  obs::Histogram* reg_batch_size_ = nullptr;
  obs::Histogram* reg_latency_ms_ = nullptr;
  obs::Histogram* reg_queue_wait_ms_ = nullptr;
};

}  // namespace taglets::serve
