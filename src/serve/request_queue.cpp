#include "serve/request_queue.hpp"
#include "util/check.hpp"

#include <stdexcept>

namespace taglets::serve {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  TAGLETS_CHECK_NE(capacity_, 0, "RequestQueue: capacity must be >= 1");
}

RequestQueue::Push RequestQueue::try_push(Request& request) {
  {
    util::MutexLock lock(mu_);
    if (closed_) return Push::kClosed;
    if (items_.size() >= capacity_) return Push::kFull;
    items_.push_back(std::move(request));
  }
  cv_.notify_one();
  return Push::kOk;
}

RequestQueue::Push RequestQueue::force_push(Request& request) {
  {
    util::MutexLock lock(mu_);
    if (closed_) return Push::kClosed;
    items_.push_back(std::move(request));
  }
  cv_.notify_one();
  return Push::kOk;
}

std::vector<Request> RequestQueue::pop_batch(
    std::size_t max_batch, std::chrono::nanoseconds max_delay) {
  std::vector<Request> batch;
  if (max_batch == 0) return batch;

  util::MutexLock lock(mu_);
  cv_.wait(lock, [this] { return pop_ready(); });
  if (closed_) return batch;  // leftovers belong to drain()

  // First request claimed; the flush clock starts now, not at enqueue
  // time, so an idle server answers a lone request after max_delay at
  // the latest even if nothing else ever arrives.
  const Clock::time_point flush_at = Clock::now() + max_delay;
  for (;;) {
    while (!items_.empty() && batch.size() < max_batch) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (batch.size() >= max_batch || closed_) break;
    if (max_delay <= std::chrono::nanoseconds::zero()) break;
    const bool woke =
        cv_.wait_until(lock, flush_at, [this] { return pop_ready(); });
    if (!woke) break;  // max_delay elapsed: flush what we have
  }
  return batch;
}

void RequestQueue::close() {
  {
    util::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

std::vector<Request> RequestQueue::drain() {
  util::MutexLock lock(mu_);
  std::vector<Request> pending;
  pending.reserve(items_.size());
  while (!items_.empty()) {
    pending.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return pending;
}

std::size_t RequestQueue::size() const {
  util::MutexLock lock(mu_);
  return items_.size();
}

}  // namespace taglets::serve
