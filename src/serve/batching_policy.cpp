#include "serve/batching_policy.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace taglets::serve {

void BatchingPolicy::validate() const {
  TAGLETS_CHECK_NE(max_batch_size, 0,
                   "BatchingPolicy: max_batch_size must be >= 1");
  TAGLETS_CHECK_GE(max_delay_ms, 0.0,
                   "BatchingPolicy: max_delay_ms must be >= 0");
}

std::chrono::nanoseconds BatchingPolicy::effective_delay() const {
  if (util::Parallel::global().threads() <= 1) {
    return std::chrono::nanoseconds::zero();
  }
  return std::chrono::nanoseconds(
      static_cast<std::chrono::nanoseconds::rep>(max_delay_ms * 1e6));
}

}  // namespace taglets::serve
