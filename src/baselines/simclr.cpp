#include "baselines/simclr.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::baselines {

using tensor::Tensor;

ContrastiveResult nt_xent(const Tensor& features, double temperature) {
  TAGLETS_CHECK(!(!features.is_matrix() ||
                features.rows() % 2 != 0 ||
                features.rows() < 4),
                "nt_xent: need an even batch of >= 4 rows");
  const std::size_t n = features.rows();  // 2B
  const std::size_t b = n / 2;
  const std::size_t d = features.cols();
  const float inv_tau = static_cast<float>(1.0 / temperature);

  // L2-normalized views z_i and their norms.
  Tensor z = features;
  std::vector<float> norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = z.row(i);
    float nv = tensor::l2_norm(row);
    if (nv < 1e-8f) nv = 1e-8f;
    norms[i] = nv;
    for (float& x : row) x /= nv;
  }

  // Similarity matrix s_ij = z_i . z_j / tau and row softmax excluding
  // the diagonal.
  Tensor sim = tensor::matmul_nt(z, z);
  for (float& x : sim.data()) x *= inv_tau;

  auto positive_of = [&](std::size_t i) { return i < b ? i + b : i - b; };

  Tensor p = Tensor::zeros(n, n);  // P_ik, zero on diagonal
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    float mx = -1e30f;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) mx = std::max(mx, sim.at(i, k));
    }
    double denom = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      const double e = std::exp(sim.at(i, k) - mx);
      p.at(i, k) = static_cast<float>(e);
      denom += e;
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) p.at(i, k) /= static_cast<float>(denom);
    }
    loss -= std::log(static_cast<double>(p.at(i, positive_of(i))) + 1e-30);
  }
  loss /= static_cast<double>(n);

  // dL/dz_i = (1/(n*tau)) sum_{k != i} [ (P_ik - d_{k,pos(i)})
  //                                    + (P_ki - d_{i,pos(k)}) ] z_k
  Tensor coeff = Tensor::zeros(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      float c = p.at(i, k) + p.at(k, i);
      if (k == positive_of(i)) c -= 1.0f;
      if (i == positive_of(k)) c -= 1.0f;
      coeff.at(i, k) = c;
    }
  }
  Tensor dz = tensor::matmul(coeff, z);
  const float scale = inv_tau / static_cast<float>(n);
  for (float& x : dz.data()) x *= scale;

  // Through the normalization: df_i = (dz_i - (dz_i . z_i) z_i) / ||f_i||.
  Tensor df = Tensor::zeros(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    auto zi = z.row(i);
    auto gi = dz.row(i);
    const float proj = tensor::dot(gi, zi);
    auto out = df.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      out[j] = (gi[j] - proj * zi[j]) / norms[i];
    }
  }
  return ContrastiveResult{loss, std::move(df)};
}

nn::Classifier SimClr::train(const synth::FewShotTask& task,
                             const backbone::Pretrained& backbone,
                             std::uint64_t seed, double epoch_scale) const {
  util::Rng rng = baseline_rng(seed, name());
  const std::size_t pixel_dim = task.labeled_inputs.cols();

  // From-scratch encoder with the same architecture family as the
  // pretrained backbones (SimCLRv2 does not use supervised pretraining).
  nn::Sequential encoder =
      nn::make_mlp({pixel_dim, config_.hidden_dim, config_.feature_dim}, rng);
  encoder.add(std::make_unique<nn::ReLU>());
  (void)backbone;

  // Contrastive corpus: unlabeled plus labeled inputs.
  Tensor corpus = task.unlabeled_inputs;
  if (corpus.rows() == 0) {
    corpus = task.labeled_inputs;
  }

  nn::Sgd::Config sgd;
  sgd.lr = config_.pretrain_lr;
  sgd.momentum = config_.momentum;
  nn::Sgd optimizer(encoder.parameters(), sgd);

  const std::size_t epochs = scale_epochs(config_.pretrain_epochs, epoch_scale);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& batch :
         nn::make_batches(corpus.rows(), config_.batch_size, rng)) {
      if (batch.size() < 2) continue;
      Tensor x = corpus.gather_rows(batch);
      Tensor view_a = synth::weak_augment(x, rng, config_.augment);
      Tensor view_b = synth::strong_augment(x, rng, config_.augment);
      // Stack the two views: rows (i, i+B) are positives.
      Tensor both = Tensor::zeros(2 * batch.size(), pixel_dim);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        auto a = view_a.row(i);
        std::copy(a.begin(), a.end(), both.row(i).begin());
        auto bview = view_b.row(i);
        std::copy(bview.begin(), bview.end(),
                  both.row(batch.size() + i).begin());
      }
      Tensor feats = encoder.forward(both, /*training=*/true);
      auto contrastive = nt_xent(feats, config_.temperature);
      encoder.backward(contrastive.grad_features);
      optimizer.step();
    }
  }

  // Supervised fine-tuning on the labeled shots.
  nn::Classifier model(encoder, config_.feature_dim, task.num_classes(), rng);
  nn::FitConfig fit;
  fit.epochs = scale_epochs(config_.finetune_epochs, epoch_scale);
  fit.batch_size = config_.batch_size;
  fit.sgd.lr = config_.finetune_lr;
  fit.sgd.momentum = config_.momentum;
  fit.min_steps = static_cast<std::size_t>(
      static_cast<double>(config_.finetune_min_steps) * epoch_scale);
  nn::fit_hard(model, task.labeled_inputs, task.labeled_labels, fit, rng);
  return model;
}

}  // namespace taglets::baselines
