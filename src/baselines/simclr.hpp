// SimCLRv2-lite baseline (Chen et al. 2020; Section 4.2). Contrastive
// (NT-Xent) pretraining of an encoder from scratch on the task's
// unlabeled pool, followed by supervised fine-tuning on the labeled
// shots. The paper reports that this approach "deteriorates
// significantly when trained on smaller datasets" and excludes it from
// the result tables; we implement it anyway so that claim is testable
// (see tests/baselines_test and the ablation bench).
#pragma once

#include "baselines/baseline.hpp"
#include "synth/augment.hpp"

namespace taglets::baselines {

struct SimClrConfig {
  std::size_t pretrain_epochs = 10;
  std::size_t batch_size = 64;
  double temperature = 0.5;
  double pretrain_lr = 0.01;
  double momentum = 0.9;
  std::size_t finetune_epochs = 30;
  double finetune_lr = 0.003;
  std::size_t finetune_min_steps = 800;
  std::size_t hidden_dim = 96;   // encoder width (matches the backbones)
  std::size_t feature_dim = 32;
  synth::AugmentConfig augment{};
};

/// NT-Xent loss and feature gradient for a batch of 2B feature rows in
/// which rows (i, i+B) are positive pairs. Exposed for unit testing.
struct ContrastiveResult {
  double loss = 0.0;
  tensor::Tensor grad_features;  // dL/d(raw features), same shape
};
ContrastiveResult nt_xent(const tensor::Tensor& features, double temperature);

class SimClr : public Baseline {
 public:
  explicit SimClr(SimClrConfig config = {}) : config_(config) {}
  std::string name() const override { return "simclrv2"; }
  /// Note: `backbone` is used only for its dimensions — SimCLRv2
  /// pretrains its encoder from scratch on the unlabeled data.
  nn::Classifier train(const synth::FewShotTask& task,
                       const backbone::Pretrained& backbone,
                       std::uint64_t seed, double epoch_scale) const override;

 private:
  SimClrConfig config_;
};

}  // namespace taglets::baselines
