#include "baselines/finetune.hpp"

#include "ensemble/distill.hpp"
#include "nn/trainer.hpp"

namespace taglets::baselines {

using tensor::Tensor;

namespace {

nn::Classifier run_fine_tune(const synth::FewShotTask& task,
                             const backbone::Pretrained& backbone,
                             const FineTuneConfig& config, util::Rng& rng,
                             double epoch_scale) {
  nn::Classifier model(backbone.encoder, backbone.feature_dim,
                       task.num_classes(), rng);
  nn::FitConfig fit;
  fit.epochs = scale_epochs(config.epochs, epoch_scale);
  fit.batch_size = config.batch_size;
  fit.sgd.lr = config.lr;
  fit.sgd.momentum = config.momentum;
  fit.min_steps = static_cast<std::size_t>(
      static_cast<double>(config.min_steps) * epoch_scale);
  fit.schedule = std::make_shared<nn::StepDecayLr>(config.lr, config.milestones);
  nn::fit_hard(model, task.labeled_inputs, task.labeled_labels, fit, rng);
  return model;
}

}  // namespace

nn::Classifier FineTune::train(const synth::FewShotTask& task,
                               const backbone::Pretrained& backbone,
                               std::uint64_t seed, double epoch_scale) const {
  util::Rng rng = baseline_rng(seed, name());
  return run_fine_tune(task, backbone, config_, rng, epoch_scale);
}

nn::Classifier DistilledFineTune::train(const synth::FewShotTask& task,
                                        const backbone::Pretrained& backbone,
                                        std::uint64_t seed,
                                        double epoch_scale) const {
  util::Rng rng = baseline_rng(seed, name());
  // Stage 1: plain fine-tuning on the labeled data.
  nn::Classifier teacher =
      run_fine_tune(task, backbone, config_.fine_tune, rng, epoch_scale);

  // Stage 2: pseudo-label U with the fine-tuned model, then re-train a
  // fresh head on pseudo-labeled + labeled data (soft distillation).
  if (task.unlabeled_inputs.rows() == 0) return teacher;
  Tensor pseudo = teacher.predict_proba(task.unlabeled_inputs);

  ensemble::EndModelConfig distill;
  distill.epochs = config_.distill_epochs;
  distill.lr = config_.distill_lr;
  distill.weight_decay = config_.weight_decay;
  return ensemble::train_end_model(task, pseudo, backbone.encoder,
                                   backbone.feature_dim, distill, rng,
                                   epoch_scale);
}

}  // namespace taglets::baselines
