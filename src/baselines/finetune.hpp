// Fine-tuning baselines (Section 4.2): plain fine-tuning of a pretrained
// backbone on the labeled examples, and its distilled variant which
// additionally pseudo-labels the unlabeled pool with the fine-tuned
// model and re-trains on pseudo-labeled + labeled data.
#pragma once

#include "baselines/baseline.hpp"

namespace taglets::baselines {

struct FineTuneConfig {
  std::size_t epochs = 30;  // paper: 40 epochs, decay at 20/30
  std::size_t batch_size = 64;
  double lr = 0.003;  // paper's fine-tuning learning rate
  double momentum = 0.9;
  /// Step floor so 1-shot tasks get enough optimizer updates.
  std::size_t min_steps = 800;
  std::vector<double> milestones{0.5, 0.75};
};

class FineTune : public Baseline {
 public:
  explicit FineTune(FineTuneConfig config = {}) : config_(config) {}
  std::string name() const override { return "fine-tuning"; }
  nn::Classifier train(const synth::FewShotTask& task,
                       const backbone::Pretrained& backbone,
                       std::uint64_t seed, double epoch_scale) const override;

 private:
  FineTuneConfig config_;
};

struct DistilledFineTuneConfig {
  FineTuneConfig fine_tune{};
  std::size_t distill_epochs = 30;
  double distill_lr = 5e-4;
  double weight_decay = 1e-4;
};

class DistilledFineTune : public Baseline {
 public:
  explicit DistilledFineTune(DistilledFineTuneConfig config = {})
      : config_(config) {}
  std::string name() const override { return "fine-tuning (distilled)"; }
  nn::Classifier train(const synth::FewShotTask& task,
                       const backbone::Pretrained& backbone,
                       std::uint64_t seed, double epoch_scale) const override;

 private:
  DistilledFineTuneConfig config_;
};

}  // namespace taglets::baselines
