// Meta Pseudo Labels baseline (Pham et al. 2021; Section 4.2 and
// Appendix A.5). A teacher pseudo-labels unlabeled batches for a
// student; the student's improvement on labeled data feeds back into the
// teacher (here via the standard first-order / REINFORCE-style
// approximation of the meta gradient: the teacher's pseudo-label
// cross-entropy is scaled by the student's held-out improvement).
// Afterwards the student is fine-tuned on the labeled data to reduce
// confirmation bias. Per Appendix A.5, the student always uses the
// ResNet-50 backbone even when the teacher uses BiT; callers pass the
// student backbone separately.
#pragma once

#include "baselines/baseline.hpp"

namespace taglets::baselines {

struct MplConfig {
  std::size_t steps_epochs = 12;   // teacher-student epochs over U
  std::size_t batch_size = 64;
  double teacher_lr = 2e-3;
  double student_lr = 3e-3;
  double momentum = 0.9;
  std::size_t finetune_epochs = 15;  // paper: 30 epochs at lr 0.003
  double finetune_lr = 0.003;
  std::size_t finetune_min_steps = 800;
};

class MetaPseudoLabels : public Baseline {
 public:
  /// `student_backbone` may differ from the teacher backbone passed to
  /// train(); when null the teacher backbone is reused for the student.
  explicit MetaPseudoLabels(const backbone::Pretrained* student_backbone =
                                nullptr,
                            MplConfig config = {})
      : student_backbone_(student_backbone), config_(config) {}
  std::string name() const override { return "meta pseudo labels"; }
  nn::Classifier train(const synth::FewShotTask& task,
                       const backbone::Pretrained& backbone,
                       std::uint64_t seed, double epoch_scale) const override;

 private:
  const backbone::Pretrained* student_backbone_;
  MplConfig config_;
};

}  // namespace taglets::baselines
