// Baseline interface (Section 4.2): the transfer- and semi-supervised-
// learning methods TAGLETS is compared against. Every baseline consumes
// the same FewShotTask and a pretrained backbone, and returns a single
// classifier — no SCADS access, which is exactly the axis the comparison
// isolates.
#pragma once

#include <memory>
#include <string>

#include "backbone/backbone.hpp"
#include "nn/classifier.hpp"
#include "synth/split.hpp"

namespace taglets::baselines {

class Baseline {
 public:
  virtual ~Baseline() = default;
  virtual std::string name() const = 0;
  /// Train on the task starting from `backbone`. `epoch_scale` shrinks
  /// schedules for tests (1.0 = full recipe).
  virtual nn::Classifier train(const synth::FewShotTask& task,
                               const backbone::Pretrained& backbone,
                               std::uint64_t seed,
                               double epoch_scale) const = 0;
};

/// RNG helper shared by baseline implementations.
util::Rng baseline_rng(std::uint64_t seed, const std::string& name);

/// Epoch scaling helper (min 1).
std::size_t scale_epochs(std::size_t epochs, double scale);

}  // namespace taglets::baselines
