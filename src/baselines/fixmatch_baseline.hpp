// FixMatch baseline (Section 4.2): the same consistency + pseudo-label
// SSL loop as the TAGLETS FixMatch module, but initialized directly from
// the pretrained backbone — no SCADS auxiliary fine-tuning phase.
#pragma once

#include "baselines/baseline.hpp"
#include "modules/fixmatch.hpp"

namespace taglets::baselines {

class FixMatchBaseline : public Baseline {
 public:
  explicit FixMatchBaseline(modules::FixMatchConfig config = {})
      : config_(config) {}
  std::string name() const override { return "fixmatch"; }
  nn::Classifier train(const synth::FewShotTask& task,
                       const backbone::Pretrained& backbone,
                       std::uint64_t seed, double epoch_scale) const override;

 private:
  modules::FixMatchConfig config_;
};

}  // namespace taglets::baselines
