#include "baselines/fixmatch_baseline.hpp"

namespace taglets::baselines {

nn::Classifier FixMatchBaseline::train(const synth::FewShotTask& task,
                                       const backbone::Pretrained& backbone,
                                       std::uint64_t seed,
                                       double epoch_scale) const {
  util::Rng rng = baseline_rng(seed, name());
  return modules::fixmatch_train(task, backbone.encoder, backbone.feature_dim,
                                 config_, rng, epoch_scale);
}

}  // namespace taglets::baselines
