#include "baselines/meta_pseudo_labels.hpp"

#include <algorithm>

#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace taglets::baselines {

using tensor::Tensor;

nn::Classifier MetaPseudoLabels::train(const synth::FewShotTask& task,
                                       const backbone::Pretrained& backbone,
                                       std::uint64_t seed,
                                       double epoch_scale) const {
  util::Rng rng = baseline_rng(seed, name());
  const backbone::Pretrained& student_bb =
      student_backbone_ != nullptr ? *student_backbone_ : backbone;

  nn::Classifier teacher(backbone.encoder, backbone.feature_dim,
                         task.num_classes(), rng);
  nn::Classifier student(student_bb.encoder, student_bb.feature_dim,
                         task.num_classes(), rng);

  nn::Sgd::Config tcfg;
  tcfg.lr = config_.teacher_lr;
  tcfg.momentum = config_.momentum;
  nn::Sgd teacher_opt(teacher.parameters(), tcfg);
  nn::Sgd::Config scfg;
  scfg.lr = config_.student_lr;
  scfg.momentum = config_.momentum;
  nn::Sgd student_opt(student.parameters(), scfg);

  // Warm the teacher on the labeled data so its first pseudo labels are
  // better than chance (the official recipe trains teacher on labeled
  // batches throughout; we fold that in below too).
  {
    nn::FitConfig warm;
    warm.epochs = scale_epochs(4, epoch_scale);
    warm.batch_size = config_.batch_size;
    warm.sgd = tcfg;
    nn::fit_hard(teacher, task.labeled_inputs, task.labeled_labels, warm, rng);
  }

  const std::size_t n_unlabeled = task.unlabeled_inputs.rows();
  const std::size_t n_labeled = task.labeled_labels.size();
  nn::HalfCosineLr schedule(config_.teacher_lr);  // eta/2 (1 + cos(pi k/K))

  if (n_unlabeled > 0) {
    const std::size_t epochs = scale_epochs(config_.steps_epochs, epoch_scale);
    const std::size_t steps_per_epoch =
        (n_unlabeled + config_.batch_size - 1) / config_.batch_size;
    const std::size_t total_steps = steps_per_epoch * epochs;
    std::size_t step = 0;

    auto labeled_loss = [&]() {
      Tensor logits = student.logits(task.labeled_inputs, /*training=*/false);
      return nn::cross_entropy(logits, task.labeled_labels).loss;
    };

    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      for (const auto& u_batch :
           nn::make_batches(n_unlabeled, config_.batch_size, rng)) {
        teacher_opt.set_learning_rate(schedule.rate(step, total_steps));
        student_opt.set_learning_rate(
            schedule.rate(step, total_steps) * config_.student_lr /
            config_.teacher_lr);

        Tensor u = task.unlabeled_inputs.gather_rows(u_batch);

        // Teacher pseudo-labels the batch.
        Tensor t_proba = teacher.predict_proba(u);
        std::vector<std::size_t> pseudo = tensor::argmax_rows(t_proba);

        // Student update on the pseudo-labeled batch; measure held-out
        // improvement h = L_before - L_after on the labeled data.
        const double before = labeled_loss();
        {
          Tensor logits = student.logits(u, /*training=*/true);
          auto loss = nn::cross_entropy(logits, pseudo);
          student.backward(loss.grad_logits);
          student_opt.step();
        }
        const double after = labeled_loss();
        const double h = before - after;

        // Teacher feedback (first-order MPL): reinforce / penalize the
        // pseudo labels proportionally to the student's improvement, and
        // mix in the teacher's own supervised loss.
        {
          Tensor logits = teacher.logits(u, /*training=*/true);
          auto loss = nn::cross_entropy(logits, pseudo);
          Tensor grad = tensor::scale(
              loss.grad_logits,
              static_cast<float>(std::clamp(h, -1.0, 1.0)));
          teacher.backward(grad);
        }
        {
          const std::size_t nb = std::min(config_.batch_size, n_labeled);
          std::vector<std::size_t> idx =
              rng.sample_without_replacement(n_labeled, nb);
          Tensor x = task.labeled_inputs.gather_rows(idx);
          std::vector<std::size_t> y(nb);
          for (std::size_t i = 0; i < nb; ++i) {
            y[i] = task.labeled_labels[idx[i]];
          }
          Tensor logits = teacher.logits(x, /*training=*/true);
          auto loss = nn::cross_entropy(logits, y);
          teacher.backward(loss.grad_logits);
        }
        teacher_opt.step();
        ++step;
      }
    }
  }

  // Final student fine-tuning on labeled data (confirmation-bias fix).
  nn::FitConfig fit;
  fit.epochs = scale_epochs(config_.finetune_epochs, epoch_scale);
  fit.batch_size = config_.batch_size;
  fit.sgd.lr = config_.finetune_lr;
  fit.sgd.momentum = config_.momentum;
  fit.min_steps = static_cast<std::size_t>(
      static_cast<double>(config_.finetune_min_steps) * epoch_scale);
  nn::fit_hard(student, task.labeled_inputs, task.labeled_labels, fit, rng);
  return student;
}

}  // namespace taglets::baselines
