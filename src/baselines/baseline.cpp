#include "baselines/baseline.hpp"

#include <algorithm>
#include <cmath>

namespace taglets::baselines {

util::Rng baseline_rng(std::uint64_t seed, const std::string& name) {
  return util::Rng(
      util::combine_seeds({seed, std::hash<std::string>{}(name)}));
}

std::size_t scale_epochs(std::size_t epochs, double scale) {
  return static_cast<std::size_t>(
      std::max(1.0, std::floor(static_cast<double>(epochs) * scale)));
}

}  // namespace taglets::baselines
