#include "taglets/controller.hpp"

#include <sstream>
#include <stdexcept>

#include "ensemble/ensemble.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "taglets/checkpoint.hpp"
#include "taglets/task_graph.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace taglets {

using tensor::Tensor;

namespace {

PipelineMode resolve_pipeline_mode(const SystemConfig& config) {
  if (config.pipeline != PipelineMode::kAuto) return config.pipeline;
  const std::string env = util::env_string("TAGLETS_PIPELINE", "graph");
  if (env == "graph") return PipelineMode::kGraph;
  if (env == "serial") return PipelineMode::kSerial;
  throw std::invalid_argument("TAGLETS_PIPELINE must be 'serial' or 'graph', got '" +
                              env + "'");
}

}  // namespace

Controller::Controller(scads::Scads* scads, backbone::Zoo* zoo,
                       modules::ZslKgEngine* zsl_engine,
                       modules::ModuleRegistry* registry)
    : scads_(scads),
      zoo_(zoo),
      zsl_engine_(zsl_engine),
      registry_(registry != nullptr ? registry
                                    : &modules::ModuleRegistry::global()) {
  TAGLETS_CHECK(!(scads_ == nullptr || zoo_ == nullptr),
                "Controller: scads and zoo are required");
}

scads::Selection Controller::select(const synth::FewShotTask& task,
                                    const SystemConfig& config) const {
  scads::SelectionConfig selection = config.selection;
  if (selection.seed == 0) selection.seed = config.train_seed;
  return scads::select_auxiliary(*scads_, task, selection);
}

std::string config_fingerprint(const SystemConfig& config) {
  // select() substitutes train_seed when the selection seed is 0, so
  // the fingerprint must record the *effective* seed — otherwise two
  // behaviorally identical configs refuse to resume each other.
  const std::uint64_t effective_selection_seed =
      config.selection.seed == 0 ? config.train_seed : config.selection.seed;
  std::ostringstream os;
  os << "modules=" << util::join(config.module_names, ",")
     << " backbone=" << static_cast<int>(config.backbone)
     << " seed=" << config.train_seed
     << " epoch_scale=" << config.epoch_scale
     << " selection=" << config.selection.related_per_class << "/"
     << config.selection.images_per_concept << "/"
     << config.selection.prune_level << "/" << effective_selection_seed
     << " end_model=" << config.end_model.epochs << "/"
     << config.end_model.batch_size << "/" << config.end_model.min_steps
     << "/" << config.end_model.lr << "/" << config.end_model.weight_decay
     << "/" << (config.end_model.soft_targets ? "soft" : "hard");
  return os.str();
}

modules::Taglet Controller::train_module(std::size_t index,
                                         const modules::ModuleContext& context,
                                         const SystemConfig& config,
                                         const Checkpoint& checkpoint) {
  std::unique_ptr<modules::Module> mod =
      registry_->create(config.module_names[index]);
  const std::string name = mod->name();
  if (checkpoint.has_taglet(index, name)) {
    TAGLETS_LOG(kInfo) << "resuming taglet " << name << " from "
                       << checkpoint.taglet_path(index, name);
    modules::Taglet taglet = checkpoint.load_taglet(index, name);
    obs::MetricsRegistry::global()
        .counter("pipeline.modules_resumed_total")
        .add();
    return taglet;
  }
  TAGLETS_TRACE_SCOPE("module.train",
                      {{"module", name},
                       {"epoch_scale", std::to_string(config.epoch_scale)}});
  TAGLETS_LOG(kInfo) << "training module " << name;
  modules::Taglet taglet = mod->train(context);
  checkpoint.save_taglet(index, name, taglet);
  obs::MetricsRegistry::global().counter("pipeline.modules_trained_total").add();
  return taglet;
}

std::vector<modules::Taglet> Controller::train_taglets(
    const synth::FewShotTask& task, const scads::Selection& selection,
    const SystemConfig& config) {
  return train_taglets(task, selection, config, Checkpoint());
}

std::vector<modules::Taglet> Controller::train_taglets(
    const synth::FewShotTask& task, const scads::Selection& selection,
    const SystemConfig& config, const Checkpoint& checkpoint) {
  TAGLETS_CHECK(!(config.module_names.empty()),
                "Controller: empty module line-up");
  const backbone::Pretrained& phi = zoo_->get(config.backbone);

  modules::ModuleContext context;
  context.task = &task;
  context.scads = scads_;
  context.selection = &selection;
  context.backbone = &phi;
  context.zsl_engine = zsl_engine_;
  context.train_seed = config.train_seed;
  context.epoch_scale = config.epoch_scale;

  const std::size_t count = config.module_names.size();
  std::vector<std::optional<modules::Taglet>> slots(count);
  auto train_one = [&](std::size_t i) {
    slots[i] = train_module(i, context, config, checkpoint);
  };
  if (config.parallel_modules && count > 1) {
    // Module fan-out goes through the shared process-wide pool; its
    // nesting-safe parallel_for lets each module's own tensor kernels
    // parallelize underneath without deadlocking.
    util::parallel_for(count, train_one);
  } else {
    for (std::size_t i = 0; i < count; ++i) train_one(i);
  }

  std::vector<modules::Taglet> taglets;
  taglets.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].has_value()) {
      throw std::runtime_error("Controller: module '" +
                               config.module_names[i] +
                               "' finished without producing a taglet");
    }
    taglets.push_back(std::move(*slots[i]));
  }
  return taglets;
}

SystemResult Controller::run(const synth::FewShotTask& task,
                             const SystemConfig& config) {
  const PipelineMode mode = resolve_pipeline_mode(config);
  util::Timer timer;
  TAGLETS_TRACE_SCOPE(
      "pipeline.run",
      {{"dataset", task.dataset_name},
       {"classes", std::to_string(task.num_classes())},
       {"modules", std::to_string(config.module_names.size())},
       {"pipeline", mode == PipelineMode::kGraph ? "graph" : "serial"}});
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pipeline.runs_total").add();

  // Node checkpointing (docs/ROBUSTNESS.md). Each node re-derives its
  // RNG from config.train_seed, so loading a completed node's artifact
  // and continuing reproduces the uninterrupted run bit for bit. The
  // pipeline.after_* fault sites mark the edge crossings a crash can
  // be injected at (TAGLETS_FAULT).
  const Checkpoint checkpoint =
      config.checkpoint_dir.empty()
          ? Checkpoint()
          : Checkpoint(config.checkpoint_dir, config.resume,
                       config_fingerprint(config));

  SystemResult result = mode == PipelineMode::kGraph
                            ? run_graph(task, config, checkpoint)
                            : run_serial(task, config, checkpoint);
  result.train_seconds = timer.elapsed_seconds();
  registry.gauge("pipeline.last_train_seconds").set(result.train_seconds);
  return result;
}

SystemResult Controller::run_serial(const synth::FewShotTask& task,
                                    const SystemConfig& config,
                                    const Checkpoint& checkpoint) {
  // (1) SCADS selection of task-related auxiliary data.
  scads::Selection selection;
  {
    TAGLETS_TRACE_SCOPE("pipeline.scads_selection");
    if (checkpoint.has_selection()) {
      TAGLETS_LOG(kInfo) << "resuming selection from "
                         << checkpoint.selection_path();
      selection = checkpoint.load_selection();
    } else {
      selection = select(task, config);
      checkpoint.save_selection(selection);
    }
  }
  util::fault::maybe_fail("pipeline.after_selection");
  TAGLETS_LOG(kInfo) << "selected " << selection.intermediate_classes()
                     << " auxiliary concepts, |R| = " << selection.data.size();

  // (2) Module training.
  std::vector<modules::Taglet> taglets;
  {
    TAGLETS_TRACE_SCOPE("pipeline.module_training");
    taglets = train_taglets(task, selection, config, checkpoint);
  }
  util::fault::maybe_fail("pipeline.after_training");

  // (3) Ensemble pseudo labels for the unlabeled pool (Eq. 6).
  Tensor pseudo;
  {
    TAGLETS_TRACE_SCOPE(
        "pipeline.ensemble_vote",
        {{"unlabeled", std::to_string(task.unlabeled_inputs.rows())}});
    if (checkpoint.has_pseudo()) {
      TAGLETS_LOG(kInfo) << "resuming pseudo labels from "
                         << checkpoint.pseudo_path();
      pseudo = checkpoint.load_pseudo();
    } else {
      pseudo = task.unlabeled_inputs.rows() > 0
                   ? ensemble::ensemble_proba(taglets, task.unlabeled_inputs)
                   : Tensor::zeros(0, task.num_classes());
      checkpoint.save_pseudo(pseudo);
    }
  }
  util::fault::maybe_fail("pipeline.after_ensemble");

  // (4) Distill into the end model (Eq. 7).
  util::Rng rng(util::combine_seeds({config.train_seed, 0xE4DULL}));
  const backbone::Pretrained& phi = zoo_->get(config.backbone);
  std::optional<nn::Classifier> end_model;
  {
    TAGLETS_TRACE_SCOPE("pipeline.distillation");
    end_model = ensemble::train_end_model(task, pseudo, phi.encoder,
                                          phi.feature_dim, config.end_model,
                                          rng, config.epoch_scale);
  }

  return SystemResult{
      ensemble::ServableModel(std::move(*end_model), task.class_names),
      std::move(taglets), std::move(selection), std::move(pseudo), 0.0};
}

SystemResult Controller::run_graph(const synth::FewShotTask& task,
                                   const SystemConfig& config,
                                   const Checkpoint& checkpoint) {
  TAGLETS_CHECK(!(config.module_names.empty()),
                "Controller: empty module line-up");

  // Node results live on this frame; the graph's edges are what make
  // each write happen-before every read (TaskGraph resolves a child
  // only after its parents, across one mutex).
  const backbone::Pretrained* phi = nullptr;
  scads::Selection selection;
  std::vector<std::optional<modules::Taglet>> slots(config.module_names.size());
  std::vector<modules::Taglet> taglets;
  Tensor pseudo;
  std::optional<nn::Classifier> end_model;

  TaskGraph graph;

  const TaskGraph::NodeId backbone_node = graph.add_node(
      "backbone", [&] { phi = &zoo_->get(config.backbone); });

  const TaskGraph::NodeId selection_node = graph.add_node("selection", [&] {
    TAGLETS_TRACE_SCOPE("pipeline.scads_selection");
    if (checkpoint.has_selection()) {
      TAGLETS_LOG(kInfo) << "resuming selection from "
                         << checkpoint.selection_path();
      selection = checkpoint.load_selection();
    } else {
      selection = select(task, config);
      checkpoint.save_selection(selection);
    }
    util::fault::maybe_fail("pipeline.after_selection");
    TAGLETS_LOG(kInfo) << "selected " << selection.intermediate_classes()
                       << " auxiliary concepts, |R| = "
                       << selection.data.size();
  });

  std::vector<TaskGraph::NodeId> module_nodes;
  module_nodes.reserve(config.module_names.size());
  for (std::size_t i = 0; i < config.module_names.size(); ++i) {
    const std::string& name = config.module_names[i];
    std::vector<TaskGraph::NodeId> deps{backbone_node};
    // The zero-shot module reads only the pretrained engine and the
    // graph embeddings — not the SCADS training data — so it starts
    // without waiting for selection (the DAG's headline overlap).
    if (name != "zsl-kg") deps.push_back(selection_node);
    module_nodes.push_back(graph.add_node(
        "module:" + name,
        [&, i] {
          modules::ModuleContext context;
          context.task = &task;
          context.scads = scads_;
          context.selection = &selection;
          context.backbone = phi;
          context.zsl_engine = zsl_engine_;
          context.train_seed = config.train_seed;
          context.epoch_scale = config.epoch_scale;
          slots[i] = train_module(i, context, config, checkpoint);
        },
        deps));
  }

  const TaskGraph::NodeId ensemble_node = graph.add_node(
      "ensemble",
      [&] {
        util::fault::maybe_fail("pipeline.after_training");
        taglets.reserve(slots.size());
        for (std::size_t i = 0; i < slots.size(); ++i) {
          if (!slots[i].has_value()) {
            throw std::runtime_error("Controller: module '" +
                                     config.module_names[i] +
                                     "' finished without producing a taglet");
          }
          taglets.push_back(std::move(*slots[i]));
        }
        TAGLETS_TRACE_SCOPE(
            "pipeline.ensemble_vote",
            {{"unlabeled", std::to_string(task.unlabeled_inputs.rows())}});
        if (checkpoint.has_pseudo()) {
          TAGLETS_LOG(kInfo) << "resuming pseudo labels from "
                             << checkpoint.pseudo_path();
          pseudo = checkpoint.load_pseudo();
        } else {
          pseudo =
              task.unlabeled_inputs.rows() > 0
                  ? ensemble::ensemble_proba(taglets, task.unlabeled_inputs)
                  : Tensor::zeros(0, task.num_classes());
          checkpoint.save_pseudo(pseudo);
        }
        util::fault::maybe_fail("pipeline.after_ensemble");
      },
      module_nodes);

  graph.add_node(
      "distill",
      [&] {
        util::Rng rng(util::combine_seeds({config.train_seed, 0xE4DULL}));
        TAGLETS_TRACE_SCOPE("pipeline.distillation");
        end_model = ensemble::train_end_model(task, pseudo, phi->encoder,
                                              phi->feature_dim,
                                              config.end_model, rng,
                                              config.epoch_scale);
      },
      {backbone_node, ensemble_node});

  graph.run(util::Parallel::global());

  return SystemResult{
      ensemble::ServableModel(std::move(*end_model), task.class_names),
      std::move(taglets), std::move(selection), std::move(pseudo), 0.0};
}

}  // namespace taglets
