#include "taglets/controller.hpp"

#include <sstream>
#include <stdexcept>

#include "ensemble/ensemble.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "taglets/checkpoint.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace taglets {

using tensor::Tensor;

Controller::Controller(scads::Scads* scads, backbone::Zoo* zoo,
                       modules::ZslKgEngine* zsl_engine,
                       modules::ModuleRegistry* registry)
    : scads_(scads),
      zoo_(zoo),
      zsl_engine_(zsl_engine),
      registry_(registry != nullptr ? registry
                                    : &modules::ModuleRegistry::global()) {
  TAGLETS_CHECK(!(scads_ == nullptr || zoo_ == nullptr),
                "Controller: scads and zoo are required");
}

scads::Selection Controller::select(const synth::FewShotTask& task,
                                    const SystemConfig& config) const {
  scads::SelectionConfig selection = config.selection;
  if (selection.seed == 0) selection.seed = config.train_seed;
  return scads::select_auxiliary(*scads_, task, selection);
}

std::string config_fingerprint(const SystemConfig& config) {
  std::ostringstream os;
  os << "modules=" << util::join(config.module_names, ",")
     << " backbone=" << static_cast<int>(config.backbone)
     << " seed=" << config.train_seed
     << " epoch_scale=" << config.epoch_scale
     << " selection=" << config.selection.related_per_class << "/"
     << config.selection.images_per_concept << "/"
     << config.selection.prune_level << "/" << config.selection.seed
     << " end_model=" << config.end_model.epochs << "/"
     << config.end_model.batch_size << "/" << config.end_model.min_steps
     << "/" << config.end_model.lr << "/" << config.end_model.weight_decay
     << "/" << (config.end_model.soft_targets ? "soft" : "hard");
  return os.str();
}

std::vector<modules::Taglet> Controller::train_taglets(
    const synth::FewShotTask& task, const scads::Selection& selection,
    const SystemConfig& config) {
  return train_taglets(task, selection, config, Checkpoint());
}

std::vector<modules::Taglet> Controller::train_taglets(
    const synth::FewShotTask& task, const scads::Selection& selection,
    const SystemConfig& config, const Checkpoint& checkpoint) {
  TAGLETS_CHECK(!(config.module_names.empty()),
                "Controller: empty module line-up");
  const backbone::Pretrained& phi = zoo_->get(config.backbone);

  modules::ModuleContext context;
  context.task = &task;
  context.scads = scads_;
  context.selection = &selection;
  context.backbone = &phi;
  context.zsl_engine = zsl_engine_;
  context.train_seed = config.train_seed;
  context.epoch_scale = config.epoch_scale;

  std::vector<std::unique_ptr<modules::Module>> mods;
  for (const std::string& name : config.module_names) {
    mods.push_back(registry_->create(name));
  }

  std::vector<std::optional<modules::Taglet>> slots(mods.size());
  auto train_one = [&](std::size_t i) {
    const std::string name = mods[i]->name();
    if (checkpoint.has_taglet(i, name)) {
      TAGLETS_LOG(kInfo) << "resuming taglet " << name << " from "
                         << checkpoint.taglet_path(i, name);
      slots[i] = checkpoint.load_taglet(i, name);
      obs::MetricsRegistry::global()
          .counter("pipeline.modules_resumed_total")
          .add();
      return;
    }
    TAGLETS_TRACE_SCOPE("module.train",
                        {{"module", name},
                         {"epoch_scale", std::to_string(config.epoch_scale)}});
    TAGLETS_LOG(kInfo) << "training module " << name;
    slots[i] = mods[i]->train(context);
    checkpoint.save_taglet(i, name, *slots[i]);
    obs::MetricsRegistry::global().counter("pipeline.modules_trained_total").add();
  };
  if (config.parallel_modules && mods.size() > 1) {
    // Module fan-out goes through the shared process-wide pool; its
    // nesting-safe parallel_for lets each module's own tensor kernels
    // parallelize underneath without deadlocking.
    util::parallel_for(mods.size(), train_one);
  } else {
    for (std::size_t i = 0; i < mods.size(); ++i) train_one(i);
  }

  std::vector<modules::Taglet> taglets;
  taglets.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].has_value()) {
      throw std::runtime_error("Controller: module '" +
                               config.module_names[i] +
                               "' finished without producing a taglet");
    }
    taglets.push_back(std::move(*slots[i]));
  }
  return taglets;
}

SystemResult Controller::run(const synth::FewShotTask& task,
                             const SystemConfig& config) {
  util::Timer timer;
  TAGLETS_TRACE_SCOPE(
      "pipeline.run",
      {{"dataset", task.dataset_name},
       {"classes", std::to_string(task.num_classes())},
       {"modules", std::to_string(config.module_names.size())}});
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pipeline.runs_total").add();

  // Stage checkpointing (docs/ROBUSTNESS.md). Each stage re-derives
  // its RNG from config.train_seed, so loading a completed stage's
  // artifact and continuing reproduces the uninterrupted run bit for
  // bit. The pipeline.after_* fault sites mark the stage boundaries a
  // crash can be injected at (TAGLETS_FAULT).
  const Checkpoint checkpoint =
      config.checkpoint_dir.empty()
          ? Checkpoint()
          : Checkpoint(config.checkpoint_dir, config.resume,
                       config_fingerprint(config));

  // (1) SCADS selection of task-related auxiliary data.
  scads::Selection selection;
  {
    TAGLETS_TRACE_SCOPE("pipeline.scads_selection");
    if (checkpoint.has_selection()) {
      TAGLETS_LOG(kInfo) << "resuming selection from "
                         << checkpoint.selection_path();
      selection = checkpoint.load_selection();
    } else {
      selection = select(task, config);
      checkpoint.save_selection(selection);
    }
  }
  util::fault::maybe_fail("pipeline.after_selection");
  TAGLETS_LOG(kInfo) << "selected " << selection.intermediate_classes()
                     << " auxiliary concepts, |R| = " << selection.data.size();

  // (2) Module training.
  std::vector<modules::Taglet> taglets;
  {
    TAGLETS_TRACE_SCOPE("pipeline.module_training");
    taglets = train_taglets(task, selection, config, checkpoint);
  }
  util::fault::maybe_fail("pipeline.after_training");

  // (3) Ensemble pseudo labels for the unlabeled pool (Eq. 6).
  Tensor pseudo;
  {
    TAGLETS_TRACE_SCOPE(
        "pipeline.ensemble_vote",
        {{"unlabeled", std::to_string(task.unlabeled_inputs.rows())}});
    pseudo = task.unlabeled_inputs.rows() > 0
                 ? ensemble::ensemble_proba(taglets, task.unlabeled_inputs)
                 : Tensor::zeros(0, task.num_classes());
  }
  util::fault::maybe_fail("pipeline.after_ensemble");

  // (4) Distill into the end model (Eq. 7).
  util::Rng rng(util::combine_seeds({config.train_seed, 0xE4DULL}));
  const backbone::Pretrained& phi = zoo_->get(config.backbone);
  std::optional<nn::Classifier> end_model;
  {
    TAGLETS_TRACE_SCOPE("pipeline.distillation");
    end_model = ensemble::train_end_model(task, pseudo, phi.encoder,
                                          phi.feature_dim, config.end_model,
                                          rng, config.epoch_scale);
  }

  SystemResult result{
      ensemble::ServableModel(std::move(*end_model), task.class_names),
      std::move(taglets), std::move(selection), std::move(pseudo), 0.0};
  result.train_seconds = timer.elapsed_seconds();
  registry.gauge("pipeline.last_train_seconds").set(result.train_seconds);
  return result;
}

}  // namespace taglets
