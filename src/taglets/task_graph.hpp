// Dependency-graph executor over util::Parallel — the substrate the
// pipeline stages (and, later, the streaming/continual-learning arc)
// are scheduled onto. Nodes are callables with declared edges; a node
// becomes runnable the moment all of its parents have resolved, so
// independent branches overlap (e.g. the zero-shot module trains while
// SCADS selection is still running) instead of meeting at stage-wide
// barriers.
//
// Semantics:
//  * Topological dispatch: every node runs exactly once, after all of
//    its parents; roots start immediately. Cycles are rejected before
//    any node runs (validate(), also called by run()).
//  * First exception wins: a throwing node marks every descendant
//    cancelled (they never execute), independent branches still run to
//    completion, and the first exception is rethrown after quiescence —
//    exactly the util::Parallel contract, lifted to DAGs.
//  * Deterministic: the executor imposes no ordering beyond the edges,
//    so nodes that derive their randomness from their own seeds (as
//    every pipeline stage does) produce bitwise-identical results at
//    any thread count and any schedule.
//  * Pool-safe: lanes waiting for a node to become ready drain the
//    shared pool queue (Parallel::help_one) instead of blocking, so a
//    node body may itself call parallel_for without deadlocking the
//    executor even when every worker is occupied by a lane.
//
// Observability: each executed node gets a "pipeline.node" trace span
// (attr `node`) and the pipeline.node.{completed,failed,cancelled}_total
// counters move per outcome.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace taglets {

class TaskGraph {
 public:
  using NodeId = std::size_t;

  enum class NodeState { kPending, kDone, kFailed, kCancelled };

  struct RunStats {
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
  };

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node whose body is `fn`. `deps` are parents that must
  /// resolve first; each must be an id previously returned by
  /// add_node. Returns the new node's id.
  NodeId add_node(std::string name, std::function<void()> fn,
                  const std::vector<NodeId>& deps = {});

  /// Adds an edge parent -> child between existing nodes. Duplicate
  /// edges are ignored; self-edges throw std::invalid_argument.
  void add_edge(NodeId parent, NodeId child);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name(NodeId id) const;
  /// Post-run outcome of a node (kPending before run()).
  NodeState state(NodeId id) const;

  /// Build-time structural check: throws std::invalid_argument naming
  /// a node on a cycle when the edges do not form a DAG.
  void validate() const;

  /// Executes the graph on `pool` (every lane may run node bodies,
  /// including the calling thread). Single-shot: a second run() throws
  /// std::logic_error. Rethrows the first node exception after all
  /// non-descendant nodes have finished.
  RunStats run(util::Parallel& pool);

 private:
  struct Node {
    std::string name;
    std::function<void()> fn;
    std::vector<NodeId> children;
    std::size_t parents = 0;
    // Scheduler state below; guarded by mu_ during run().
    std::size_t pending = 0;
    bool cancelled = false;
    NodeState state = NodeState::kPending;
  };

  /// Blocks (helping the pool) until a ready node is available and
  /// claims it. Each of the n lanes consumes exactly one node, so a
  /// ready entry is guaranteed to appear for every call.
  NodeId acquire_ready(util::Parallel& pool);
  /// Runs one lane: claim, execute (unless cancelled), resolve.
  void run_lane(util::Parallel& pool);
  /// Marks `id` resolved: decrements children, propagates cancellation
  /// from failed/cancelled parents, and enqueues newly-ready children.
  void resolve(NodeId id);

  bool ready_available() const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return !ready_.empty();
  }

  std::vector<Node> nodes_;
  bool ran_ = false;

  util::Mutex mu_{"taglets.task_graph", util::lockrank::kPipelineGraph};
  util::CondVar cv_;
  std::deque<NodeId> ready_ TAGLETS_GUARDED_BY(mu_);
  std::exception_ptr first_error_ TAGLETS_GUARDED_BY(mu_);
};

}  // namespace taglets
