#include "taglets/task_graph.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace taglets {

TaskGraph::NodeId TaskGraph::add_node(std::string name,
                                      std::function<void()> fn,
                                      const std::vector<NodeId>& deps) {
  TAGLETS_CHECK(!ran_, "TaskGraph: add_node after run");
  TAGLETS_CHECK(static_cast<bool>(fn), "TaskGraph: null node body");
  const NodeId id = nodes_.size();
  nodes_.push_back(Node{std::move(name), std::move(fn), {}, 0, 0, false,
                        NodeState::kPending});
  for (const NodeId dep : deps) add_edge(dep, id);
  return id;
}

void TaskGraph::add_edge(NodeId parent, NodeId child) {
  TAGLETS_CHECK(!ran_, "TaskGraph: add_edge after run");
  if (parent >= nodes_.size() || child >= nodes_.size()) {
    throw std::invalid_argument("TaskGraph: edge references unknown node");
  }
  if (parent == child) {
    throw std::invalid_argument("TaskGraph: self-edge on node '" +
                                nodes_[parent].name + "'");
  }
  for (const NodeId existing : nodes_[parent].children) {
    if (existing == child) return;  // duplicate edges collapse
  }
  nodes_[parent].children.push_back(child);
  nodes_[child].parents++;
}

const std::string& TaskGraph::name(NodeId id) const {
  TAGLETS_CHECK_LT(id, nodes_.size(), "TaskGraph: unknown node id");
  return nodes_[id].name;
}

TaskGraph::NodeState TaskGraph::state(NodeId id) const {
  TAGLETS_CHECK_LT(id, nodes_.size(), "TaskGraph: unknown node id");
  return nodes_[id].state;
}

void TaskGraph::validate() const {
  // Kahn's algorithm over a scratch copy of the in-degrees: if the
  // peel-off stalls before consuming every node, the leftovers are
  // exactly the nodes on (or downstream of) a cycle.
  std::vector<std::size_t> pending(nodes_.size());
  std::deque<NodeId> frontier;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    pending[id] = nodes_[id].parents;
    if (pending[id] == 0) frontier.push_back(id);
  }
  std::size_t seen = 0;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    ++seen;
    for (const NodeId child : nodes_[id].children) {
      if (--pending[child] == 0) frontier.push_back(child);
    }
  }
  if (seen == nodes_.size()) return;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pending[id] != 0) {
      throw std::invalid_argument("TaskGraph: cycle through node '" +
                                  nodes_[id].name + "'");
    }
  }
}

TaskGraph::NodeId TaskGraph::acquire_ready(util::Parallel& pool) {
  util::MutexLock lock(mu_);
  for (;;) {
    if (!ready_.empty()) {
      const NodeId id = ready_.front();
      ready_.pop_front();
      return id;
    }
    // No node is ready, but this lane's node is still owed (each lane
    // consumes exactly one of n, and every node enters ready_ exactly
    // once) — some node is in flight. Help the pool instead of
    // sleeping: the in-flight node's own nested chunks may be queued
    // behind this lane, and blocking here would starve them.
    lock.unlock();
    const bool helped = pool.help_one();
    lock.lock();
    if (helped || !ready_.empty()) continue;
    cv_.wait_for(lock, std::chrono::microseconds(200),
                 [this] { return ready_available(); });
  }
}

void TaskGraph::resolve(NodeId id) {
  bool notify = false;
  {
    util::MutexLock lock(mu_);
    Node& node = nodes_[id];
    const bool poison = node.state != NodeState::kDone;
    for (const NodeId child_id : node.children) {
      Node& child = nodes_[child_id];
      if (poison) child.cancelled = true;
      if (--child.pending == 0) {
        ready_.push_back(child_id);
        notify = true;
      }
    }
  }
  if (notify) cv_.notify_all();
}

void TaskGraph::run_lane(util::Parallel& pool) {
  const NodeId id = acquire_ready(pool);
  Node& node = nodes_[id];
  bool execute;
  {
    util::MutexLock lock(mu_);
    execute = !node.cancelled;
    if (!execute) node.state = NodeState::kCancelled;
  }
  auto& metrics = obs::MetricsRegistry::global();
  if (execute) {
    TAGLETS_TRACE_SCOPE("pipeline.node", {{"node", node.name}});
    try {
      node.fn();
      util::MutexLock lock(mu_);
      node.state = NodeState::kDone;
    } catch (...) {
      util::MutexLock lock(mu_);
      node.state = NodeState::kFailed;
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  switch (node.state) {
    case NodeState::kDone:
      metrics.counter("pipeline.node.completed_total").add();
      break;
    case NodeState::kFailed:
      metrics.counter("pipeline.node.failed_total").add();
      break;
    default:
      metrics.counter("pipeline.node.cancelled_total").add();
      break;
  }
  resolve(id);
}

TaskGraph::RunStats TaskGraph::run(util::Parallel& pool) {
  if (ran_) throw std::logic_error("TaskGraph: run() is single-shot");
  validate();
  ran_ = true;
  {
    util::MutexLock lock(mu_);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      nodes_[id].pending = nodes_[id].parents;
      if (nodes_[id].pending == 0) ready_.push_back(id);
    }
  }
  // One lane per node: the pool chunks the lanes across its workers
  // (and the calling thread), and each lane claims whichever node is
  // ready when it starts — topological order falls out of resolve().
  pool.for_each(nodes_.size(), [this, &pool](std::size_t) { run_lane(pool); });

  std::exception_ptr error;
  RunStats stats;
  {
    util::MutexLock lock(mu_);
    error = first_error_;
  }
  for (const Node& node : nodes_) {
    switch (node.state) {
      case NodeState::kDone: stats.completed++; break;
      case NodeState::kFailed: stats.failed++; break;
      case NodeState::kCancelled: stats.cancelled++; break;
      case NodeState::kPending: break;
    }
  }
  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace taglets
