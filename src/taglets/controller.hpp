// TAGLETS controller — the end-to-end system of Figure 2 and the main
// public API. Given a few-shot task it (1) selects task-related
// auxiliary data from SCADS, (2) trains the configured modules into
// taglets, (3) ensembles the taglets into soft pseudo labels for the
// unlabeled data (Eq. 6), and (4) distills everything into one servable
// end model (Eq. 7).
#pragma once

#include <memory>
#include <optional>

#include "backbone/zoo.hpp"
#include "ensemble/distill.hpp"
#include "ensemble/servable.hpp"
#include "modules/registry.hpp"
#include "modules/zsl_kg.hpp"
#include "scads/selection.hpp"
#include "synth/split.hpp"

namespace taglets {

struct SystemConfig {
  /// Modules to train, resolved through the registry. Defaults to the
  /// paper's four-module line-up.
  std::vector<std::string> module_names =
      modules::ModuleRegistry::default_lineup();
  /// Backbone phi for the trainable modules and the end model.
  backbone::Kind backbone = backbone::Kind::kRn50S;
  /// SCADS selection parameters (N, K, prune level).
  scads::SelectionConfig selection{};
  ensemble::EndModelConfig end_model{};
  std::uint64_t train_seed = 0;
  /// Scales every module's epoch counts (tests use < 1).
  double epoch_scale = 1.0;
  /// Train modules on a thread pool (results identical to serial).
  bool parallel_modules = false;
  /// When non-empty, Controller::run checkpoints each completed stage
  /// into this directory (crash-safe writes; see docs/ROBUSTNESS.md).
  std::string checkpoint_dir;
  /// Skip stages whose checkpoint artifacts already exist. Because
  /// every stage re-derives its RNG from train_seed, a resumed run is
  /// bitwise identical to an uninterrupted one.
  bool resume = false;
};

/// One-line fingerprint of everything that determines a run's output;
/// stored in the checkpoint MANIFEST so --resume refuses a directory
/// produced under a different configuration.
std::string config_fingerprint(const SystemConfig& config);

class Checkpoint;

struct SystemResult {
  ensemble::ServableModel end_model;
  /// The trained taglets, retained for diagnostics and ablations.
  std::vector<modules::Taglet> taglets;
  /// Which auxiliary concepts were selected (provenance of R).
  scads::Selection selection;
  /// Soft pseudo labels assigned to the unlabeled pool (Eq. 6).
  tensor::Tensor pseudo_labels;
  double train_seconds = 0.0;
};

class Controller {
 public:
  /// All pointers non-owning; `zsl_engine` may be null if the line-up
  /// excludes "zsl-kg". `registry` null means the global registry.
  Controller(scads::Scads* scads, backbone::Zoo* zoo,
             modules::ZslKgEngine* zsl_engine = nullptr,
             modules::ModuleRegistry* registry = nullptr);

  /// Run the full pipeline on a task.
  SystemResult run(const synth::FewShotTask& task, const SystemConfig& config);

  /// Steps exposed individually for ablation studies:
  scads::Selection select(const synth::FewShotTask& task,
                          const SystemConfig& config) const;
  std::vector<modules::Taglet> train_taglets(const synth::FewShotTask& task,
                                             const scads::Selection& selection,
                                             const SystemConfig& config);

 private:
  std::vector<modules::Taglet> train_taglets(const synth::FewShotTask& task,
                                             const scads::Selection& selection,
                                             const SystemConfig& config,
                                             const Checkpoint& checkpoint);

  scads::Scads* scads_;
  backbone::Zoo* zoo_;
  modules::ZslKgEngine* zsl_engine_;
  modules::ModuleRegistry* registry_;
};

}  // namespace taglets
