// TAGLETS controller — the end-to-end system of Figure 2 and the main
// public API. Given a few-shot task it (1) selects task-related
// auxiliary data from SCADS, (2) trains the configured modules into
// taglets, (3) ensembles the taglets into soft pseudo labels for the
// unlabeled data (Eq. 6), and (4) distills everything into one servable
// end model (Eq. 7).
//
// Two execution plans produce bitwise-identical results: the legacy
// serial stage sequence, and a task-graph schedule (task_graph.hpp)
// that overlaps independent work — backbone fetch runs alongside SCADS
// selection, the zero-shot module needs only the engine and graph
// embeddings so it trains while selection is still running, and the
// SCADS-consuming modules fan out as soon as selection resolves. Every
// node re-derives its RNG from config.train_seed, which is what makes
// the two plans (and any thread count) bit-for-bit interchangeable.
#pragma once

#include <memory>
#include <optional>

#include "backbone/zoo.hpp"
#include "ensemble/distill.hpp"
#include "ensemble/servable.hpp"
#include "modules/registry.hpp"
#include "modules/zsl_kg.hpp"
#include "scads/selection.hpp"
#include "synth/split.hpp"

namespace taglets {

/// How Controller::run schedules the pipeline. kAuto reads the
/// TAGLETS_PIPELINE environment variable ("serial" | "graph"; default
/// graph) — the serial plan is the escape hatch that makes serial/graph
/// A/B verification a test instead of a leap of faith.
enum class PipelineMode { kAuto, kSerial, kGraph };

struct SystemConfig {
  /// Modules to train, resolved through the registry. Defaults to the
  /// paper's four-module line-up.
  std::vector<std::string> module_names =
      modules::ModuleRegistry::default_lineup();
  /// Backbone phi for the trainable modules and the end model.
  backbone::Kind backbone = backbone::Kind::kRn50S;
  /// SCADS selection parameters (N, K, prune level).
  scads::SelectionConfig selection{};
  ensemble::EndModelConfig end_model{};
  std::uint64_t train_seed = 0;
  /// Scales every module's epoch counts (tests use < 1).
  double epoch_scale = 1.0;
  /// Serial plan only: train modules on a thread pool (results
  /// identical). The graph plan overlaps modules by construction.
  bool parallel_modules = false;
  /// When non-empty, Controller::run checkpoints each completed
  /// pipeline node into this directory (crash-safe writes; see
  /// docs/ROBUSTNESS.md).
  std::string checkpoint_dir;
  /// Skip nodes whose checkpoint artifacts already exist. Because
  /// every node re-derives its RNG from train_seed, a resumed run is
  /// bitwise identical to an uninterrupted one.
  bool resume = false;
  /// Execution plan; deliberately not part of config_fingerprint()
  /// because both plans produce identical artifacts, so a checkpoint
  /// directory may be resumed under either.
  PipelineMode pipeline = PipelineMode::kAuto;
};

/// One-line fingerprint of everything that determines a run's output;
/// stored in the checkpoint MANIFEST so --resume refuses a directory
/// produced under a different configuration. Records *effective*
/// values: a selection seed of 0 means "use train_seed", so the two
/// spellings of the same behavior fingerprint identically.
std::string config_fingerprint(const SystemConfig& config);

class Checkpoint;

struct SystemResult {
  ensemble::ServableModel end_model;
  /// The trained taglets, retained for diagnostics and ablations.
  std::vector<modules::Taglet> taglets;
  /// Which auxiliary concepts were selected (provenance of R).
  scads::Selection selection;
  /// Soft pseudo labels assigned to the unlabeled pool (Eq. 6).
  tensor::Tensor pseudo_labels;
  double train_seconds = 0.0;
};

class Controller {
 public:
  /// All pointers non-owning; `zsl_engine` may be null if the line-up
  /// excludes "zsl-kg". `registry` null means the global registry.
  Controller(scads::Scads* scads, backbone::Zoo* zoo,
             modules::ZslKgEngine* zsl_engine = nullptr,
             modules::ModuleRegistry* registry = nullptr);

  /// Run the full pipeline on a task.
  SystemResult run(const synth::FewShotTask& task, const SystemConfig& config);

  /// Steps exposed individually for ablation studies:
  scads::Selection select(const synth::FewShotTask& task,
                          const SystemConfig& config) const;
  std::vector<modules::Taglet> train_taglets(const synth::FewShotTask& task,
                                             const scads::Selection& selection,
                                             const SystemConfig& config);

 private:
  SystemResult run_serial(const synth::FewShotTask& task,
                          const SystemConfig& config,
                          const Checkpoint& checkpoint);
  SystemResult run_graph(const synth::FewShotTask& task,
                         const SystemConfig& config,
                         const Checkpoint& checkpoint);

  std::vector<modules::Taglet> train_taglets(const synth::FewShotTask& task,
                                             const scads::Selection& selection,
                                             const SystemConfig& config,
                                             const Checkpoint& checkpoint);

  /// Checkpoint-aware training of one module slot: loads the slot's
  /// artifact when resuming, otherwise trains and checkpoints it.
  /// Shared by the serial stage and the graph's module nodes.
  modules::Taglet train_module(std::size_t index,
                               const modules::ModuleContext& context,
                               const SystemConfig& config,
                               const Checkpoint& checkpoint);

  scads::Scads* scads_;
  backbone::Zoo* zoo_;
  modules::ZslKgEngine* zsl_engine_;
  modules::ModuleRegistry* registry_;
};

}  // namespace taglets
