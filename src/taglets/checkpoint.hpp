// Node-level checkpointing for the pipeline task graph
// (docs/ROBUSTNESS.md). A checkpoint directory holds one crash-safe
// artifact per completed pipeline node, keyed by the node's stable
// checkpoint key:
//
//   <dir>/MANIFEST                     run-config fingerprint (text)
//   <dir>/selection.bin                the SCADS Selection
//   <dir>/taglet_<ii>_<module>.bin     one per trained taglet
//   <dir>/pseudo.bin                   ensemble pseudo labels (Eq. 6)
//
// Every file is written through util::atomic_io, so an interrupted run
// leaves only whole artifacts. Because each node re-derives its RNG
// from the config seed, a resumed run that loads these artifacts
// produces a bitwise-identical end model to an uninterrupted one.
// The MANIFEST guards against resuming with a different configuration:
// load paths are only consulted when `resume` is set AND the stored
// fingerprint matches the current config.
//
// The generic has_node/load_node/save_node trio is the uniform
// substrate; the typed selection/taglet/pseudo accessors are thin
// wrappers that fix the key and the fault-injection site.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "modules/module.hpp"
#include "scads/selection.hpp"
#include "tensor/tensor.hpp"

namespace taglets {

class Checkpoint {
 public:
  /// Disabled checkpoint: has_* return false and save_* are no-ops.
  Checkpoint() = default;

  /// Opens (creating if needed) `dir` and writes/validates MANIFEST.
  /// Throws std::runtime_error when resuming against a directory whose
  /// MANIFEST records a different fingerprint.
  Checkpoint(std::string dir, bool resume, const std::string& fingerprint);

  bool enabled() const { return !dir_.empty(); }
  bool resuming() const { return resume_; }

  /// Node-keyed artifacts. `key` is the node's stable checkpoint key
  /// ("selection", "taglet_00_transfer", "pseudo", ...); `site` names
  /// the fault-injection site the write is armed under (TAGLETS_FAULT).
  bool has_node(const std::string& key) const;
  std::string node_path(const std::string& key) const;
  void save_node(const std::string& key, const std::string& site,
                 const std::function<void(std::ostream&)>& writer) const;
  void load_node(const std::string& key,
                 const std::function<void(std::istream&)>& reader) const;

  /// SCADS selection node.
  bool has_selection() const;
  scads::Selection load_selection() const;
  void save_selection(const scads::Selection& selection) const;

  /// Module nodes: one artifact per module slot. `index` keeps
  /// duplicate module names in the line-up from sharing a file.
  bool has_taglet(std::size_t index, const std::string& name) const;
  modules::Taglet load_taglet(std::size_t index,
                              const std::string& name) const;
  void save_taglet(std::size_t index, const std::string& name,
                   const modules::Taglet& taglet) const;

  /// Ensemble node: the soft pseudo labels for the unlabeled pool.
  bool has_pseudo() const;
  tensor::Tensor load_pseudo() const;
  void save_pseudo(const tensor::Tensor& pseudo) const;

  std::string manifest_path() const;
  std::string selection_path() const;
  std::string taglet_path(std::size_t index, const std::string& name) const;
  std::string pseudo_path() const;

  /// Checkpoint key of module slot `index` running module `name`.
  static std::string taglet_key(std::size_t index, const std::string& name);

 private:
  std::string dir_;
  bool resume_ = false;
};

}  // namespace taglets
