// Stage-level checkpointing for Controller::run (docs/ROBUSTNESS.md).
// A checkpoint directory holds one crash-safe artifact per completed
// pipeline stage:
//
//   <dir>/MANIFEST                     run-config fingerprint (text)
//   <dir>/selection.bin                the SCADS Selection (stage 1)
//   <dir>/taglet_<ii>_<module>.bin     one per trained taglet (stage 2)
//
// Every file is written through util::atomic_io, so an interrupted run
// leaves only whole artifacts. Because each stage re-derives its RNG
// from the config seed, a resumed run that loads these artifacts
// produces a bitwise-identical end model to an uninterrupted one.
// The MANIFEST guards against resuming with a different configuration:
// load paths are only consulted when `resume` is set AND the stored
// fingerprint matches the current config.
#pragma once

#include <string>

#include "modules/module.hpp"
#include "scads/selection.hpp"

namespace taglets {

class Checkpoint {
 public:
  /// Disabled checkpoint: has_* return false and save_* are no-ops.
  Checkpoint() = default;

  /// Opens (creating if needed) `dir` and writes/validates MANIFEST.
  /// Throws std::runtime_error when resuming against a directory whose
  /// MANIFEST records a different fingerprint.
  Checkpoint(std::string dir, bool resume, const std::string& fingerprint);

  bool enabled() const { return !dir_.empty(); }
  bool resuming() const { return resume_; }

  /// Stage 1: the SCADS selection.
  bool has_selection() const;
  scads::Selection load_selection() const;
  void save_selection(const scads::Selection& selection) const;

  /// Stage 2: one artifact per module slot. `index` keeps duplicate
  /// module names in the line-up from sharing a file.
  bool has_taglet(std::size_t index, const std::string& name) const;
  modules::Taglet load_taglet(std::size_t index,
                              const std::string& name) const;
  void save_taglet(std::size_t index, const std::string& name,
                   const modules::Taglet& taglet) const;

  std::string manifest_path() const;
  std::string selection_path() const;
  std::string taglet_path(std::size_t index, const std::string& name) const;

 private:
  std::string dir_;
  bool resume_ = false;
};

}  // namespace taglets
