#include "taglets/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/atomic_io.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace taglets {

namespace fs = std::filesystem;

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Checkpoint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Checkpoint::Checkpoint(std::string dir, bool resume,
                       const std::string& fingerprint)
    : dir_(std::move(dir)), resume_(resume) {
  if (dir_.empty()) {
    throw std::runtime_error("Checkpoint: empty directory");
  }
  fs::create_directories(dir_);
  if (resume_ && fs::exists(manifest_path())) {
    const std::string stored = read_text_file(manifest_path());
    if (stored != fingerprint) {
      throw std::runtime_error(
          "Checkpoint: cannot resume from " + dir_ +
          ": its MANIFEST records a different run configuration\n  stored:  " +
          stored + "\n  current: " + fingerprint);
    }
  } else {
    util::fault::retry_with_backoff(
        "checkpoint manifest", util::fault::RetryPolicy::from_env(), [&] {
          util::atomic_write_file(manifest_path(), fingerprint,
                                  "checkpoint.manifest");
        });
  }
}

std::string Checkpoint::manifest_path() const { return dir_ + "/MANIFEST"; }

std::string Checkpoint::node_path(const std::string& key) const {
  return dir_ + "/" + key + ".bin";
}

bool Checkpoint::has_node(const std::string& key) const {
  return enabled() && resume_ && fs::exists(node_path(key));
}

void Checkpoint::save_node(
    const std::string& key, const std::string& site,
    const std::function<void(std::ostream&)>& writer) const {
  if (!enabled()) return;
  util::fault::retry_with_backoff(
      "checkpoint node " + key, util::fault::RetryPolicy::from_env(), [&] {
        util::atomic_write_stream(node_path(key), site, writer);
      });
  TAGLETS_LOG(kDebug) << "checkpointed node " << key << " to "
                      << node_path(key);
}

void Checkpoint::load_node(
    const std::string& key,
    const std::function<void(std::istream&)>& reader) const {
  const std::string path = node_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Checkpoint: cannot open " + path);
  try {
    reader(in);
  } catch (const std::exception& e) {
    throw std::runtime_error("Checkpoint: " + path + ": " + e.what());
  }
}

std::string Checkpoint::selection_path() const {
  return node_path("selection");
}

std::string Checkpoint::taglet_key(std::size_t index,
                                   const std::string& name) {
  std::ostringstream key;
  key << "taglet_" << (index < 10 ? "0" : "") << index << "_" << name;
  return key.str();
}

std::string Checkpoint::taglet_path(std::size_t index,
                                    const std::string& name) const {
  return node_path(taglet_key(index, name));
}

std::string Checkpoint::pseudo_path() const { return node_path("pseudo"); }

bool Checkpoint::has_selection() const { return has_node("selection"); }

scads::Selection Checkpoint::load_selection() const {
  scads::Selection selection;
  load_node("selection",
            [&](std::istream& in) { selection = scads::read_selection(in); });
  return selection;
}

void Checkpoint::save_selection(const scads::Selection& selection) const {
  save_node("selection", "checkpoint.selection",
            [&](std::ostream& out) { scads::write_selection(out, selection); });
}

bool Checkpoint::has_taglet(std::size_t index, const std::string& name) const {
  return has_node(taglet_key(index, name));
}

modules::Taglet Checkpoint::load_taglet(std::size_t index,
                                        const std::string& name) const {
  std::optional<modules::Taglet> taglet;
  load_node(taglet_key(index, name),
            [&](std::istream& in) { taglet = modules::Taglet::load(in); });
  return std::move(*taglet);
}

void Checkpoint::save_taglet(std::size_t index, const std::string& name,
                             const modules::Taglet& taglet) const {
  save_node(taglet_key(index, name), "checkpoint.taglet",
            [&](std::ostream& out) { taglet.save(out); });
}

bool Checkpoint::has_pseudo() const { return has_node("pseudo"); }

tensor::Tensor Checkpoint::load_pseudo() const {
  tensor::Tensor pseudo;
  load_node("pseudo",
            [&](std::istream& in) { pseudo = tensor::read_tensor(in); });
  return pseudo;
}

void Checkpoint::save_pseudo(const tensor::Tensor& pseudo) const {
  save_node("pseudo", "checkpoint.pseudo",
            [&](std::ostream& out) { tensor::write_tensor(out, pseudo); });
}

}  // namespace taglets
