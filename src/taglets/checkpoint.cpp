#include "taglets/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_io.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace taglets {

namespace fs = std::filesystem;

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Checkpoint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Checkpoint::Checkpoint(std::string dir, bool resume,
                       const std::string& fingerprint)
    : dir_(std::move(dir)), resume_(resume) {
  if (dir_.empty()) {
    throw std::runtime_error("Checkpoint: empty directory");
  }
  fs::create_directories(dir_);
  if (resume_ && fs::exists(manifest_path())) {
    const std::string stored = read_text_file(manifest_path());
    if (stored != fingerprint) {
      throw std::runtime_error(
          "Checkpoint: cannot resume from " + dir_ +
          ": its MANIFEST records a different run configuration\n  stored:  " +
          stored + "\n  current: " + fingerprint);
    }
  } else {
    util::fault::retry_with_backoff(
        "checkpoint manifest", util::fault::RetryPolicy::from_env(), [&] {
          util::atomic_write_file(manifest_path(), fingerprint,
                                  "checkpoint.manifest");
        });
  }
}

std::string Checkpoint::manifest_path() const { return dir_ + "/MANIFEST"; }

std::string Checkpoint::selection_path() const {
  return dir_ + "/selection.bin";
}

std::string Checkpoint::taglet_path(std::size_t index,
                                    const std::string& name) const {
  std::ostringstream path;
  path << dir_ << "/taglet_" << (index < 10 ? "0" : "") << index << "_" << name
       << ".bin";
  return path.str();
}

bool Checkpoint::has_selection() const {
  return enabled() && resume_ && fs::exists(selection_path());
}

scads::Selection Checkpoint::load_selection() const {
  const std::string path = selection_path();
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Checkpoint: cannot open " + path);
  try {
    return scads::read_selection(in);
  } catch (const std::exception& e) {
    throw std::runtime_error("Checkpoint: " + path + ": " + e.what());
  }
}

void Checkpoint::save_selection(const scads::Selection& selection) const {
  if (!enabled()) return;
  util::fault::retry_with_backoff(
      "checkpoint selection", util::fault::RetryPolicy::from_env(), [&] {
        util::atomic_write_stream(
            selection_path(), "checkpoint.selection",
            [&](std::ostream& out) { scads::write_selection(out, selection); });
      });
  TAGLETS_LOG(kDebug) << "checkpointed selection to " << selection_path();
}

bool Checkpoint::has_taglet(std::size_t index, const std::string& name) const {
  return enabled() && resume_ && fs::exists(taglet_path(index, name));
}

modules::Taglet Checkpoint::load_taglet(std::size_t index,
                                        const std::string& name) const {
  const std::string path = taglet_path(index, name);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Checkpoint: cannot open " + path);
  try {
    return modules::Taglet::load(in);
  } catch (const std::exception& e) {
    throw std::runtime_error("Checkpoint: " + path + ": " + e.what());
  }
}

void Checkpoint::save_taglet(std::size_t index, const std::string& name,
                             const modules::Taglet& taglet) const {
  if (!enabled()) return;
  util::fault::retry_with_backoff(
      "checkpoint taglet " + name, util::fault::RetryPolicy::from_env(), [&] {
        util::atomic_write_stream(
            taglet_path(index, name), "checkpoint.taglet",
            [&](std::ostream& out) { taglet.save(out); });
      });
  TAGLETS_LOG(kDebug) << "checkpointed taglet " << name << " to "
                      << taglet_path(index, name);
}

}  // namespace taglets
