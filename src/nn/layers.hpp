// Layer abstraction with hand-written backprop. A layer caches whatever
// it needs during forward() and consumes it in the next backward();
// forward/backward calls therefore come in matched pairs (standard
// single-stream training, which is all the TAGLETS pipeline needs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace taglets::nn {

/// A trainable tensor together with its gradient accumulator.
struct Parameter {
  tensor::Tensor value;
  tensor::Tensor grad;

  explicit Parameter(tensor::Tensor v)
      : value(std::move(v)),
        grad(value.is_matrix() ? tensor::Tensor::zeros(value.rows(), value.cols())
                               : tensor::Tensor::zeros(value.size())) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch (rows = examples). `training` toggles
  /// stochastic behaviour such as dropout.
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Backprop: takes dL/d(output), accumulates parameter gradients, and
  /// returns dL/d(input). Must be called after a matching forward().
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::unique_ptr<Layer> clone() const = 0;
  virtual std::string name() const = 0;
};

/// Fully connected layer: y = x W + b, W is (in, out).
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);
  /// Construct from explicit weights (used by ZSL-KG to install predicted
  /// classification heads, Section 3.2.4 step 2).
  Linear(tensor::Tensor weight, tensor::Tensor bias);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
  tensor::Tensor cached_input_;
};

class ReLU : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

/// Inverted dropout; identity at evaluation time.
class Dropout : public Layer {
 public:
  Dropout(float p, util::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Dropout"; }
  float rate() const { return p_; }

 private:
  float p_;
  util::Rng rng_;
  tensor::Tensor cached_mask_;
};

}  // namespace taglets::nn
