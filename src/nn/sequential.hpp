// Sequential container (our MLP building block). Also serializable so
// pretrained backbones can be cached to disk between bench invocations.
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "nn/layers.hpp"

namespace taglets::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer);
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Sequential"; }

  void zero_grad();

  /// Serialization of parameter tensors only (architecture is rebuilt by
  /// the caller; Linear layers round-trip exactly, stateless layers are
  /// recorded by name).
  void save(std::ostream& out) const;
  static Sequential load(std::istream& in, util::Rng& dropout_rng);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// MLP factory: dims = {in, hidden..., out}; ReLU between layers, no
/// activation after the last Linear (it produces logits/features).
Sequential make_mlp(const std::vector<std::size_t>& dims, util::Rng& rng,
                    float dropout = 0.0f);

}  // namespace taglets::nn
