#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::nn {

using tensor::Tensor;

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng)
    : weight_(kaiming_normal(in_features, out_features, rng)),
      bias_(Tensor::zeros(out_features)) {}

Linear::Linear(Tensor weight, Tensor bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {
  TAGLETS_CHECK(!(!weight_.value.is_matrix() ||
                !bias_.value.is_vector() ||
                bias_.value.size() != weight_.value.cols()),
                "Linear: weight/bias shape mismatch");
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  return tensor::add_row_broadcast(tensor::matmul(input, weight_.value),
                                   bias_.value);
}

Tensor Linear::backward(const Tensor& grad_output) {
  // dW += x^T g ; db += column sums of g ; dx = g W^T.
  Tensor dw = tensor::matmul_tn(cached_input_, grad_output);
  tensor::add_scaled_inplace(weight_.grad, dw, 1.0f);
  Tensor db = tensor::column_sums(grad_output);
  tensor::add_scaled_inplace(bias_.grad, db, 1.0f);
  return tensor::matmul_nt(grad_output, weight_.value);
}

std::unique_ptr<Layer> Linear::clone() const {
  return std::make_unique<Linear>(weight_.value, bias_.value);
}

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (float& x : out.data()) x = x > 0.0f ? x : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto gd = grad.data();
  auto in = cached_input_.data();
  TAGLETS_CHECK_EQ(gd.size(), in.size(),
                   "ReLU::backward without matching forward");
  for (std::size_t i = 0; i < gd.size(); ++i) {
    if (in[i] <= 0.0f) gd[i] = 0.0f;
  }
  return grad;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (float& x : out.data()) x = std::tanh(x);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto gd = grad.data();
  auto od = cached_output_.data();
  TAGLETS_CHECK_EQ(gd.size(), od.size(),
                   "Tanh::backward without matching forward");
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= 1.0f - od[i] * od[i];
  return grad;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

Dropout::Dropout(float p, util::Rng rng) : p_(p), rng_(rng) {
  TAGLETS_CHECK(!(p < 0.0f || p >= 1.0f), "Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || p_ == 0.0f) {
    cached_mask_ = Tensor();
    return input;
  }
  cached_mask_ = input;  // reuse shape
  const float keep = 1.0f - p_;
  for (float& m : cached_mask_.data()) {
    m = rng_.bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return tensor::hadamard(input, cached_mask_);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_mask_.empty()) return grad_output;
  return tensor::hadamard(grad_output, cached_mask_);
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_, rng_);
}

}  // namespace taglets::nn
