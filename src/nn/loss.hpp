// Classification losses. The TAGLETS pipeline needs two flavours of
// cross entropy: hard-label CE for module training (Eqs. 1-5) and
// soft-target CE for end-model distillation on pseudo labels (Eq. 7).
// Each returns the mean loss plus the gradient with respect to the
// logits (softmax folded in analytically).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace taglets::nn {

struct LossResult {
  double loss = 0.0;
  tensor::Tensor grad_logits;  // same shape as the input logits
};

/// Mean cross entropy with integer class labels.
LossResult cross_entropy(const tensor::Tensor& logits,
                         std::span<const std::size_t> labels);

/// Mean soft cross entropy: -sum_c p_c log softmax(logits)_c averaged
/// over rows (Eq. 7). `targets` rows are probability vectors.
LossResult soft_cross_entropy(const tensor::Tensor& logits,
                              const tensor::Tensor& targets);

/// Mean squared error between two equally-shaped tensors (used by the
/// ZSL-KG pretraining objective, Eq. 9).
LossResult mse(const tensor::Tensor& prediction, const tensor::Tensor& target);

/// Fraction of rows whose argmax equals the label.
double accuracy(const tensor::Tensor& logits,
                std::span<const std::size_t> labels);

}  // namespace taglets::nn
