// Classification metrics beyond plain accuracy: confusion matrix,
// per-class accuracy / precision / recall, and macro-averaged F1. Used
// by the examples and the evaluation harness for error analysis (e.g.
// per-class behaviour of the Grocery task's graph-missing classes).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace taglets::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Count one (truth, prediction) observation.
  void add(std::size_t truth, std::size_t predicted);
  /// Count a batch from predictions.
  void add_batch(std::span<const std::size_t> truths,
                 std::span<const std::size_t> predictions);

  std::size_t num_classes() const { return n_; }
  std::size_t total() const { return total_; }
  /// count(truth = r, predicted = c).
  std::size_t at(std::size_t truth, std::size_t predicted) const;

  double accuracy() const;
  /// Recall of class c (diagonal over row sum); 0 for unseen classes.
  double recall(std::size_t c) const;
  /// Precision of class c (diagonal over column sum); 0 if never predicted.
  double precision(std::size_t c) const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f1(std::size_t c) const;
  /// Unweighted mean F1 over classes.
  double macro_f1() const;
  /// Unweighted mean recall over classes (a.k.a. balanced accuracy).
  double balanced_accuracy() const;

  /// Indices of the k classes with the lowest recall (ties by index).
  std::vector<std::size_t> worst_classes(std::size_t k) const;

  /// Multi-line text rendering with optional class names.
  std::string report(const std::vector<std::string>& class_names = {}) const;

 private:
  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // row-major (truth, predicted)
};

/// Build a confusion matrix from logits and labels in one call.
ConfusionMatrix evaluate_confusion(const tensor::Tensor& logits,
                                   std::span<const std::size_t> labels);

}  // namespace taglets::nn
