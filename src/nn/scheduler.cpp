#include "nn/scheduler.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace taglets::nn {

StepDecayLr::StepDecayLr(double base_lr, std::vector<double> milestone_fractions,
                         double factor)
    : base_lr_(base_lr),
      milestones_(std::move(milestone_fractions)),
      factor_(factor) {
  TAGLETS_CHECK(std::is_sorted(milestones_.begin(), milestones_.end()),
                "StepDecayLr: milestones must ascend");
}

double StepDecayLr::rate(std::size_t step, std::size_t total_steps) const {
  if (total_steps == 0) return base_lr_;
  const double progress =
      static_cast<double>(step) / static_cast<double>(total_steps);
  double lr = base_lr_;
  for (double m : milestones_) {
    if (progress >= m) lr *= factor_;
  }
  return lr;
}

double FixMatchCosineLr::rate(std::size_t step, std::size_t total_steps) const {
  if (total_steps == 0) return base_lr_;
  const double k = static_cast<double>(step);
  const double K = static_cast<double>(total_steps);
  return base_lr_ * std::cos(7.0 * M_PI * k / (16.0 * K));
}

double HalfCosineLr::rate(std::size_t step, std::size_t total_steps) const {
  if (total_steps == 0) return base_lr_;
  const double k = static_cast<double>(step);
  const double K = static_cast<double>(total_steps);
  return base_lr_ / 2.0 * (1.0 + std::cos(M_PI * k / K));
}

WarmupLr::WarmupLr(std::size_t warmup_steps, std::unique_ptr<LrSchedule> after)
    : warmup_steps_(warmup_steps), after_(std::move(after)) {
  TAGLETS_CHECK(after_, "WarmupLr: null schedule");
}

double WarmupLr::rate(std::size_t step, std::size_t total_steps) const {
  const std::size_t remaining =
      total_steps > warmup_steps_ ? total_steps - warmup_steps_ : 1;
  if (step < warmup_steps_) {
    // Target the post-warmup schedule's starting rate.
    const double target = after_->rate(0, remaining);
    return target * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  return after_->rate(step - warmup_steps_, remaining);
}

}  // namespace taglets::nn
