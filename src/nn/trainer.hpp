// Generic mini-batch training loops shared by modules, baselines, and
// the end model. A FitConfig captures the Appendix A.5 recipe shape:
// optimizer choice + hyperparameters, epoch/batch counts, an LR
// schedule, and whether the encoder is frozen.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "nn/classifier.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/scheduler.hpp"
#include "util/rng.hpp"

namespace taglets::nn {

struct FitConfig {
  enum class Opt { kSgd, kAdam };

  std::size_t epochs = 10;
  std::size_t batch_size = 64;
  Opt optimizer = Opt::kSgd;
  Sgd::Config sgd{};
  Adam::Config adam{};
  /// Optional schedule; nullptr means constant base LR.
  std::shared_ptr<const LrSchedule> schedule;
  bool freeze_encoder = false;
  /// Gradient-norm clip; <= 0 disables.
  double max_grad_norm = 0.0;
  /// Minimum number of optimizer updates: when the dataset is tiny (the
  /// 1-shot regime), epochs are raised so at least this many steps run.
  std::size_t min_steps = 0;
};

/// Per-epoch training diagnostics.
struct FitReport {
  std::vector<double> epoch_loss;
  std::size_t steps = 0;
  double final_loss() const {
    return epoch_loss.empty() ? 0.0 : epoch_loss.back();
  }
};

/// Fine-tune on hard-labeled data (Eqs. 1, 2, 4).
FitReport fit_hard(Classifier& model, const tensor::Tensor& inputs,
                   std::span<const std::size_t> labels, const FitConfig& config,
                   util::Rng& rng);

/// Fine-tune on soft probability targets (Eq. 7 distillation).
FitReport fit_soft(Classifier& model, const tensor::Tensor& inputs,
                   const tensor::Tensor& targets, const FitConfig& config,
                   util::Rng& rng);

/// Mean accuracy of the model on a labeled set.
double evaluate_accuracy(Classifier& model, const tensor::Tensor& inputs,
                         std::span<const std::size_t> labels);

/// Shuffled mini-batch index plan for one epoch; the final short batch
/// is kept (never dropped) so tiny 1-shot datasets still train.
std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   util::Rng& rng);

/// Build the optimizer a FitConfig describes, bound to `params`.
std::unique_ptr<Optimizer> make_optimizer(const FitConfig& config,
                                          std::vector<Parameter*> params);

/// Scale gradients so their global L2 norm is at most `max_norm`.
/// Returns false — leaving the gradients untouched — when the norm is
/// non-finite (an Inf/NaN gradient); the caller must skip the optimizer
/// step, since scaling by a NaN norm would corrupt every parameter.
/// Always returns true when clipping is disabled (max_norm <= 0).
bool clip_grad_norm(std::span<Parameter* const> params, double max_norm);

}  // namespace taglets::nn
