#include "nn/optimizer.hpp"

#include <cmath>

namespace taglets::nn {

using tensor::Tensor;

namespace {

Tensor zeros_like(const Tensor& t) {
  return t.is_matrix() ? Tensor::zeros(t.rows(), t.cols())
                       : Tensor::zeros(t.size());
}

}  // namespace

Sgd::Sgd(std::vector<Parameter*> params, const Config& config)
    : Optimizer(std::move(params)), config_(config) {
  lr_ = config.lr;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.push_back(zeros_like(p->value));
}

void Sgd::apply() {
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto value = params_[k]->value.data();
    auto grad = params_[k]->grad.data();
    auto vel = velocity_[k].data();
    for (std::size_t i = 0; i < value.size(); ++i) {
      float g = grad[i] + wd * value[i];
      vel[i] = mu * vel[i] + g;
      const float update = config_.nesterov ? g + mu * vel[i] : vel[i];
      value[i] -= lr * update;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, const Config& config)
    : Optimizer(std::move(params)), config_(config) {
  lr_ = config.lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(zeros_like(p->value));
    v_.push_back(zeros_like(p->value));
  }
}

void Adam::apply() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, t_);
  const double bc2 = 1.0 - std::pow(config_.beta2, t_);
  const float b1 = static_cast<float>(config_.beta1);
  const float b2 = static_cast<float>(config_.beta2);
  const float eps = static_cast<float>(config_.epsilon);
  const float wd = static_cast<float>(config_.weight_decay);
  const float step_size = static_cast<float>(lr_ / bc1);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto value = params_[k]->value.data();
    auto grad = params_[k]->grad.data();
    auto m = m_[k].data();
    auto v = v_[k].data();
    for (std::size_t i = 0; i < value.size(); ++i) {
      const float g = grad[i] + wd * value[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const float vhat = v[i] / static_cast<float>(bc2);
      value[i] -= step_size * m[i] / (std::sqrt(vhat) + eps);
    }
  }
}

}  // namespace taglets::nn
