#include "nn/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::nn {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), counts_(num_classes * num_classes, 0) {
  TAGLETS_CHECK_NE(num_classes, 0, "ConfusionMatrix: zero classes");
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  TAGLETS_CHECK(!(truth >= n_ || predicted >= n_),
                "ConfusionMatrix::add: class out of range");
  counts_[truth * n_ + predicted]++;
  ++total_;
}

void ConfusionMatrix::add_batch(std::span<const std::size_t> truths,
                                std::span<const std::size_t> predictions) {
  TAGLETS_CHECK_EQ(truths.size(), predictions.size(),
                   "ConfusionMatrix::add_batch: size mismatch");
  for (std::size_t i = 0; i < truths.size(); ++i) {
    add(truths[i], predictions[i]);
  }
}

std::size_t ConfusionMatrix::at(std::size_t truth, std::size_t predicted) const {
  TAGLETS_CHECK(!(truth >= n_ || predicted >= n_), "ConfusionMatrix::at");
  return counts_[truth * n_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t c = 0; c < n_; ++c) diag += counts_[c * n_ + c];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::size_t c) const {
  std::size_t row = 0;
  for (std::size_t j = 0; j < n_; ++j) row += counts_[c * n_ + j];
  if (row == 0) return 0.0;
  return static_cast<double>(counts_[c * n_ + c]) / static_cast<double>(row);
}

double ConfusionMatrix::precision(std::size_t c) const {
  std::size_t col = 0;
  for (std::size_t i = 0; i < n_; ++i) col += counts_[i * n_ + c];
  if (col == 0) return 0.0;
  return static_cast<double>(counts_[c * n_ + c]) / static_cast<double>(col);
}

double ConfusionMatrix::f1(std::size_t c) const {
  const double p = precision(c);
  const double r = recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < n_; ++c) sum += f1(c);
  return sum / static_cast<double>(n_);
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < n_; ++c) sum += recall(c);
  return sum / static_cast<double>(n_);
}

std::vector<std::size_t> ConfusionMatrix::worst_classes(std::size_t k) const {
  std::vector<std::size_t> idx(n_);
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, n_);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      const double ra = recall(a), rb = recall(b);
                      if (ra != rb) return ra < rb;
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

std::string ConfusionMatrix::report(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "accuracy " << accuracy() << ", balanced " << balanced_accuracy()
     << ", macro-F1 " << macro_f1() << "\n";
  for (std::size_t c = 0; c < n_; ++c) {
    const std::string name = c < class_names.size()
                                 ? class_names[c]
                                 : "class " + std::to_string(c);
    os << "  " << name << ": recall " << recall(c) << ", precision "
       << precision(c) << ", f1 " << f1(c) << "\n";
  }
  return os.str();
}

ConfusionMatrix evaluate_confusion(const tensor::Tensor& logits,
                                   std::span<const std::size_t> labels) {
  TAGLETS_CHECK(!(!logits.is_matrix() || logits.rows() != labels.size()),
                "evaluate_confusion: shape mismatch");
  ConfusionMatrix cm(logits.cols());
  const auto predictions = tensor::argmax_rows(logits);
  cm.add_batch(labels, predictions);
  return cm;
}

}  // namespace taglets::nn
