// Optimizers matching the ones Appendix A.5 prescribes: SGD with
// (optionally Nesterov) momentum for module/backbone fine-tuning, and
// Adam with weight decay for the end model and ZSL-KG pretraining.
// An optimizer is bound to a parameter list at construction; per-
// parameter state is held in parallel vectors so cloned models get
// fresh optimizers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace taglets::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then clear them.
  void step() {
    apply();
    zero_grad();
  }

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  virtual void apply() = 0;

  std::vector<Parameter*> params_;
  double lr_ = 0.0;
};

/// SGD with momentum; optional Nesterov lookahead and decoupled L2
/// weight decay.
class Sgd : public Optimizer {
 public:
  struct Config {
    double lr = 0.003;       // paper default for fine-tuning (App. A.5)
    double momentum = 0.9;   // paper default
    bool nesterov = false;   // FixMatch uses Nesterov momentum
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Parameter*> params, const Config& config);

 protected:
  void apply() override;

 private:
  Config config_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam with (coupled) weight decay, as used for the end model
/// (lr 5e-4, wd 1e-4) and ZSL-KG pretraining (lr 1e-3, wd 5e-4).
class Adam : public Optimizer {
 public:
  struct Config {
    double lr = 5e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Parameter*> params, const Config& config);

 protected:
  void apply() override;

 private:
  Config config_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  long t_ = 0;
};

}  // namespace taglets::nn
