// Weight initialization. Following the paper's Appendix A.3, the training
// seed "affects the initialization of linear layers we append to the
// backbones", so initializers take an explicit Rng.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace taglets::nn {

/// Kaiming/He normal init for layers followed by ReLU:
/// N(0, sqrt(2 / fan_in)).
tensor::Tensor kaiming_normal(std::size_t rows, std::size_t cols,
                              util::Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6 / (fan_in+fan_out)).
tensor::Tensor xavier_uniform(std::size_t rows, std::size_t cols,
                              util::Rng& rng);

/// Plain Gaussian init with given stddev.
tensor::Tensor gaussian(std::size_t rows, std::size_t cols, float stddev,
                        util::Rng& rng);

}  // namespace taglets::nn
