// Classifier = encoder backbone + linear classification head. This is
// the shape every TAGLETS component shares: modules fine-tune a
// pretrained encoder phi with a freshly initialized head (App. A.5: "a
// single fully-connected layer" appended to the backbone), ZSL-KG
// installs a predicted head without target-task training, and the end
// model is one more classifier distilled from the ensemble.
#pragma once

#include <cstddef>
#include <istream>
#include <memory>
#include <ostream>

#include "nn/sequential.hpp"

namespace taglets::nn {

class Classifier {
 public:
  /// New head (Kaiming init) on a copy of the given encoder.
  Classifier(const Sequential& encoder, std::size_t feature_dim,
             std::size_t num_classes, util::Rng& rng);
  /// Install an explicit head (ZSL-KG path).
  Classifier(const Sequential& encoder, Linear head);

  Classifier(const Classifier& other);
  Classifier& operator=(const Classifier& other);
  Classifier(Classifier&&) = default;
  Classifier& operator=(Classifier&&) = default;

  std::size_t num_classes() const { return head_->out_features(); }
  std::size_t feature_dim() const { return head_->in_features(); }
  /// Width of the example vectors the encoder expects (equals
  /// feature_dim() when the encoder has no Linear layer).
  std::size_t input_dim() const;

  /// Encoder output for a batch (no head).
  tensor::Tensor features(const tensor::Tensor& inputs, bool training = false);
  /// Head(encoder(x)) logits.
  tensor::Tensor logits(const tensor::Tensor& inputs, bool training = false);
  /// softmax(logits); rows are probability vectors.
  tensor::Tensor predict_proba(const tensor::Tensor& inputs);
  /// argmax class per row.
  std::vector<std::size_t> predict(const tensor::Tensor& inputs);

  /// Backprop a dL/dlogits gradient through head and (unless frozen)
  /// encoder. Must follow a matching logits(..., training) call.
  void backward(const tensor::Tensor& grad_logits);

  /// Trainable parameters; encoder excluded when frozen.
  std::vector<Parameter*> parameters();
  void zero_grad();

  void set_encoder_frozen(bool frozen) { encoder_frozen_ = frozen; }
  bool encoder_frozen() const { return encoder_frozen_; }

  Sequential& encoder() { return encoder_; }
  const Sequential& encoder() const { return encoder_; }
  Linear& head() { return *head_; }
  const Linear& head() const { return *head_; }
  /// Swap in a new head (must match the encoder's feature width).
  void replace_head(Linear head);

  /// Number of trainable scalars; the "servable size" the distillation
  /// stage is meant to bound.
  std::size_t parameter_count();

  void save(std::ostream& out) const;
  static Classifier load(std::istream& in, util::Rng& rng);

 private:
  Sequential encoder_;
  std::unique_ptr<Linear> head_;
  bool encoder_frozen_ = false;
};

}  // namespace taglets::nn
