#include "nn/init.hpp"

#include <cmath>

namespace taglets::nn {

tensor::Tensor kaiming_normal(std::size_t rows, std::size_t cols,
                              util::Rng& rng) {
  // Weight layout is (in, out); fan_in = rows.
  const double stddev = std::sqrt(2.0 / static_cast<double>(rows));
  tensor::Tensor w = tensor::Tensor::zeros(rows, cols);
  for (float& x : w.data()) x = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

tensor::Tensor xavier_uniform(std::size_t rows, std::size_t cols,
                              util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(rows + cols));
  tensor::Tensor w = tensor::Tensor::zeros(rows, cols);
  for (float& x : w.data()) x = static_cast<float>(rng.uniform(-a, a));
  return w;
}

tensor::Tensor gaussian(std::size_t rows, std::size_t cols, float stddev,
                        util::Rng& rng) {
  tensor::Tensor w = tensor::Tensor::zeros(rows, cols);
  for (float& x : w.data()) x = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

}  // namespace taglets::nn
