// Numerical gradient checking used by the test suite to validate the
// hand-written backprop in every layer and loss.
#pragma once

#include <functional>

#include "nn/layers.hpp"

namespace taglets::nn {

/// Maximum relative error between the analytic gradient stored in each
/// parameter and a central-difference estimate of d(loss)/d(param),
/// where `loss_fn` runs a full forward pass and returns the scalar loss.
/// `loss_fn` must be deterministic (no dropout).
double max_param_grad_error(std::span<Parameter* const> params,
                            const std::function<double()>& loss_fn,
                            double epsilon = 1e-3);

/// Same idea for an input gradient: compares `analytic_grad` to the
/// central-difference gradient of `loss_fn` with respect to `input`.
double max_input_grad_error(tensor::Tensor& input,
                            const tensor::Tensor& analytic_grad,
                            const std::function<double()>& loss_fn,
                            double epsilon = 1e-3);

}  // namespace taglets::nn
