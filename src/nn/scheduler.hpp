// Learning-rate schedules. Appendix A.5 uses three:
//   * step decay ("decayed by 0.1 at epoch 20 and 30"),
//   * FixMatch cosine decay  eta * cos(7*pi*k / (16*K)),
//   * Meta Pseudo Labels cosine decay  eta/2 * (1 + cos(pi*k / K)),
// plus linear warmup for the first W steps when BiT-style training is
// used. A scheduler maps a global step index to a learning rate, which
// the trainer writes into the optimizer before each update.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace taglets::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use for update `step` (0-based) out of
  /// `total_steps` planned updates.
  virtual double rate(std::size_t step, std::size_t total_steps) const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double rate(std::size_t, std::size_t) const override { return lr_; }

 private:
  double lr_;
};

/// Multiply by `factor` at each milestone (fractions of total steps in
/// [0,1], ascending).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(double base_lr, std::vector<double> milestone_fractions,
              double factor = 0.1);
  double rate(std::size_t step, std::size_t total_steps) const override;

 private:
  double base_lr_;
  std::vector<double> milestones_;
  double factor_;
};

/// FixMatch schedule: eta * cos(7*pi*k / (16*K)).
class FixMatchCosineLr : public LrSchedule {
 public:
  explicit FixMatchCosineLr(double base_lr) : base_lr_(base_lr) {}
  double rate(std::size_t step, std::size_t total_steps) const override;

 private:
  double base_lr_;
};

/// Meta Pseudo Labels schedule: eta/2 * (1 + cos(pi*k / K)).
class HalfCosineLr : public LrSchedule {
 public:
  explicit HalfCosineLr(double base_lr) : base_lr_(base_lr) {}
  double rate(std::size_t step, std::size_t total_steps) const override;

 private:
  double base_lr_;
};

/// Linear ramp from 0 over the first `warmup_steps`, then delegates to
/// the wrapped schedule (with the step index offset removed).
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(std::size_t warmup_steps, std::unique_ptr<LrSchedule> after);
  double rate(std::size_t step, std::size_t total_steps) const override;

 private:
  std::size_t warmup_steps_;
  std::unique_ptr<LrSchedule> after_;
};

}  // namespace taglets::nn
