#include "nn/trainer.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace taglets::nn {

using tensor::Tensor;

std::vector<std::vector<std::size_t>> make_batches(std::size_t n,
                                                   std::size_t batch_size,
                                                   util::Rng& rng) {
  TAGLETS_CHECK_NE(batch_size, 0, "make_batches: batch 0");
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(n, start + batch_size);
    batches.emplace_back(order.begin() + static_cast<long>(start),
                         order.begin() + static_cast<long>(end));
  }
  return batches;
}

std::unique_ptr<Optimizer> make_optimizer(const FitConfig& config,
                                          std::vector<Parameter*> params) {
  if (config.optimizer == FitConfig::Opt::kSgd) {
    return std::make_unique<Sgd>(std::move(params), config.sgd);
  }
  return std::make_unique<Adam>(std::move(params), config.adam);
}

bool clip_grad_norm(std::span<Parameter* const> params, double max_norm) {
  if (max_norm <= 0.0) return true;
  double total = 0.0;
  for (Parameter* p : params) total += p->grad.squared_norm();
  total = std::sqrt(total);
  if (!std::isfinite(total)) return false;
  if (total <= max_norm) return true;
  const float scale = static_cast<float>(max_norm / (total + 1e-12));
  for (Parameter* p : params) {
    for (float& g : p->grad.data()) g *= scale;
  }
  return true;
}

namespace {

/// Shared epoch loop; `loss_fn` maps (logits, batch indices) to a
/// LossResult whose grad is backpropagated.
FitReport run_fit(
    Classifier& model, const Tensor& inputs, std::size_t n,
    const FitConfig& config, util::Rng& rng,
    const std::function<LossResult(const Tensor&,
                                   const std::vector<std::size_t>&)>& loss_fn) {
  if (n == 0) return FitReport{};
  model.set_encoder_frozen(config.freeze_encoder);
  auto params = model.parameters();
  auto optimizer = make_optimizer(config, params);
  const double base_lr = optimizer->learning_rate();

  // Total planned updates, for schedules defined over global steps.
  const std::size_t steps_per_epoch = (n + config.batch_size - 1) / config.batch_size;
  std::size_t epochs = config.epochs;
  if (config.min_steps > 0 && steps_per_epoch * epochs < config.min_steps) {
    epochs = (config.min_steps + steps_per_epoch - 1) / steps_per_epoch;
  }
  const std::size_t total_steps = steps_per_epoch * epochs;

  TAGLETS_TRACE_SCOPE("nn.fit", {{"epochs", std::to_string(epochs)},
                                 {"n", std::to_string(n)},
                                 {"steps", std::to_string(total_steps)}});
  auto& registry = obs::MetricsRegistry::global();
  obs::Gauge& loss_gauge = registry.gauge("nn.last_epoch_loss");

  FitReport report;
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    TAGLETS_TRACE_SCOPE("nn.epoch", {{"epoch", std::to_string(epoch)}});
    double epoch_loss = 0.0;
    std::size_t batches_seen = 0;
    for (const auto& batch : make_batches(n, config.batch_size, rng)) {
      Tensor x = inputs.gather_rows(batch);
      Tensor logits = model.logits(x, /*training=*/true);
      LossResult loss = loss_fn(logits, batch);
      model.zero_grad();
      model.backward(loss.grad_logits);
      const double lr = config.schedule
                            ? config.schedule->rate(step, total_steps)
                            : base_lr;
      optimizer->set_learning_rate(lr);
      if (clip_grad_norm(params, config.max_grad_norm)) {
        optimizer->step();
      } else {
        // A non-finite gradient norm means this batch's update would
        // poison the parameters; drop it (the step/schedule still
        // advance so the remaining updates match the planned run).
        registry.counter("nn.skipped_nonfinite_steps").add();
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          TAGLETS_LOG(kWarn)
              << "non-finite gradient norm; skipping optimizer step "
              << "(counted in nn.skipped_nonfinite_steps)";
        }
      }
      epoch_loss += loss.loss;
      ++batches_seen;
      ++step;
    }
    report.epoch_loss.push_back(epoch_loss / static_cast<double>(batches_seen));
    loss_gauge.set(report.epoch_loss.back());
  }
  report.steps = step;
  registry.counter("nn.epochs_total").add(epochs);
  registry.counter("nn.steps_total").add(step);
  model.set_encoder_frozen(false);
  return report;
}

}  // namespace

FitReport fit_hard(Classifier& model, const Tensor& inputs,
                   std::span<const std::size_t> labels, const FitConfig& config,
                   util::Rng& rng) {
  TAGLETS_CHECK(!(!inputs.is_matrix() || inputs.rows() != labels.size()),
                "fit_hard: inputs/labels mismatch");
  return run_fit(model, inputs, labels.size(), config, rng,
                 [&](const Tensor& logits, const std::vector<std::size_t>& batch) {
                   std::vector<std::size_t> y(batch.size());
                   for (std::size_t i = 0; i < batch.size(); ++i) {
                     y[i] = labels[batch[i]];
                   }
                   return cross_entropy(logits, y);
                 });
}

FitReport fit_soft(Classifier& model, const Tensor& inputs,
                   const Tensor& targets, const FitConfig& config,
                   util::Rng& rng) {
  TAGLETS_CHECK(!(!inputs.is_matrix() ||
                !targets.is_matrix() ||
                inputs.rows() != targets.rows()),
                "fit_soft: inputs/targets mismatch");
  return run_fit(model, inputs, inputs.rows(), config, rng,
                 [&](const Tensor& logits, const std::vector<std::size_t>& batch) {
                   Tensor t = targets.gather_rows(batch);
                   return soft_cross_entropy(logits, t);
                 });
}

double evaluate_accuracy(Classifier& model, const Tensor& inputs,
                         std::span<const std::size_t> labels) {
  Tensor logits = model.logits(inputs, /*training=*/false);
  const double acc = accuracy(logits, labels);
  obs::MetricsRegistry::global().gauge("nn.last_eval_accuracy").set(acc);
  return acc;
}

}  // namespace taglets::nn
