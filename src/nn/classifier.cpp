#include "nn/classifier.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::nn {

using tensor::Tensor;

Classifier::Classifier(const Sequential& encoder, std::size_t feature_dim,
                       std::size_t num_classes, util::Rng& rng)
    : encoder_(encoder),
      head_(std::make_unique<Linear>(feature_dim, num_classes, rng)) {}

Classifier::Classifier(const Sequential& encoder, Linear head)
    : encoder_(encoder), head_(std::make_unique<Linear>(std::move(head))) {}

Classifier::Classifier(const Classifier& other)
    : encoder_(other.encoder_),
      head_(std::make_unique<Linear>(*other.head_)),
      encoder_frozen_(other.encoder_frozen_) {}

Classifier& Classifier::operator=(const Classifier& other) {
  if (this == &other) return *this;
  encoder_ = other.encoder_;
  head_ = std::make_unique<Linear>(*other.head_);
  encoder_frozen_ = other.encoder_frozen_;
  return *this;
}

std::size_t Classifier::input_dim() const {
  // The first Linear fixes the expected width; any layers before it
  // (activations, dropout) are width-preserving.
  for (std::size_t i = 0; i < encoder_.layer_count(); ++i) {
    if (const auto* linear = dynamic_cast<const Linear*>(&encoder_.layer(i))) {
      return linear->in_features();
    }
  }
  return feature_dim();
}

Tensor Classifier::features(const Tensor& inputs, bool training) {
  return encoder_.forward(inputs, training);
}

Tensor Classifier::logits(const Tensor& inputs, bool training) {
  return head_->forward(encoder_.forward(inputs, training), training);
}

Tensor Classifier::predict_proba(const Tensor& inputs) {
  return tensor::softmax(logits(inputs, /*training=*/false));
}

std::vector<std::size_t> Classifier::predict(const Tensor& inputs) {
  return tensor::argmax_rows(logits(inputs, /*training=*/false));
}

void Classifier::backward(const Tensor& grad_logits) {
  Tensor grad_features = head_->backward(grad_logits);
  if (!encoder_frozen_) encoder_.backward(grad_features);
}

std::vector<Parameter*> Classifier::parameters() {
  std::vector<Parameter*> out;
  if (!encoder_frozen_) out = encoder_.parameters();
  auto hp = head_->parameters();
  out.insert(out.end(), hp.begin(), hp.end());
  return out;
}

void Classifier::zero_grad() {
  encoder_.zero_grad();
  for (Parameter* p : head_->parameters()) p->zero_grad();
}

void Classifier::replace_head(Linear head) {
  // The new head's input width must match the encoder output; validated
  // lazily at the first forward if the encoder is opaque, but we can
  // check against the old head immediately.
  TAGLETS_CHECK_EQ(head.in_features(), head_->in_features(),
                   "replace_head: feature width mismatch");
  head_ = std::make_unique<Linear>(std::move(head));
}

std::size_t Classifier::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : encoder_.parameters()) n += p->value.size();
  for (Parameter* p : head_->parameters()) n += p->value.size();
  return n;
}

void Classifier::save(std::ostream& out) const {
  encoder_.save(out);
  Sequential head_only;
  head_only.add(head_->clone());
  head_only.save(out);
}

Classifier Classifier::load(std::istream& in, util::Rng& rng) {
  Sequential encoder = Sequential::load(in, rng);
  Sequential head_seq = Sequential::load(in, rng);
  if (head_seq.layer_count() != 1) {
    throw std::runtime_error("Classifier::load: malformed head");
  }
  auto* lin = dynamic_cast<Linear*>(&head_seq.layer(0));
  if (lin == nullptr) {
    throw std::runtime_error("Classifier::load: head is not Linear");
  }
  return Classifier(encoder, Linear(lin->weight().value, lin->bias().value));
}

}  // namespace taglets::nn
