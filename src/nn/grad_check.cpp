#include "nn/grad_check.hpp"

#include <algorithm>
#include <cmath>

namespace taglets::nn {

namespace {

double relative_error(double analytic, double numeric) {
  const double denom =
      std::max({std::abs(analytic), std::abs(numeric), 1e-8});
  return std::abs(analytic - numeric) / denom;
}

}  // namespace

double max_param_grad_error(std::span<Parameter* const> params,
                            const std::function<double()>& loss_fn,
                            double epsilon) {
  double worst = 0.0;
  for (Parameter* p : params) {
    auto values = p->value.data();
    auto grads = p->grad.data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const float saved = values[i];
      values[i] = saved + static_cast<float>(epsilon);
      const double plus = loss_fn();
      values[i] = saved - static_cast<float>(epsilon);
      const double minus = loss_fn();
      values[i] = saved;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      worst = std::max(worst, relative_error(grads[i], numeric));
    }
  }
  return worst;
}

double max_input_grad_error(tensor::Tensor& input,
                            const tensor::Tensor& analytic_grad,
                            const std::function<double()>& loss_fn,
                            double epsilon) {
  double worst = 0.0;
  auto values = input.data();
  auto grads = analytic_grad.data();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float saved = values[i];
    values[i] = saved + static_cast<float>(epsilon);
    const double plus = loss_fn();
    values[i] = saved - static_cast<float>(epsilon);
    const double minus = loss_fn();
    values[i] = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    worst = std::max(worst, relative_error(grads[i], numeric));
  }
  return worst;
}

}  // namespace taglets::nn
