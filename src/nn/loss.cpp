#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::nn {

using tensor::Tensor;

LossResult cross_entropy(const Tensor& logits,
                         std::span<const std::size_t> labels) {
  TAGLETS_CHECK(!(!logits.is_matrix() || logits.rows() != labels.size()),
                "cross_entropy: shape mismatch");
  const std::size_t n = logits.rows(), c = logits.cols();
  Tensor log_probs = tensor::log_softmax(logits);
  Tensor grad = tensor::softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    TAGLETS_CHECK_LT(labels[i], c, "cross_entropy: label");
    loss -= log_probs.at(i, labels[i]);
    auto g = grad.row(i);
    g[labels[i]] -= 1.0f;
    for (float& x : g) x *= inv_n;
  }
  return LossResult{loss / static_cast<double>(n), std::move(grad)};
}

LossResult soft_cross_entropy(const Tensor& logits, const Tensor& targets) {
  TAGLETS_CHECK(!(!tensor::same_shape(logits, targets) || !logits.is_matrix()),
                "soft_cross_entropy: shape mismatch");
  const std::size_t n = logits.rows(), c = logits.cols();
  Tensor log_probs = tensor::log_softmax(logits);
  Tensor grad = tensor::softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto lp = log_probs.row(i);
    auto t = targets.row(i);
    auto g = grad.row(i);
    for (std::size_t j = 0; j < c; ++j) {
      loss -= static_cast<double>(t[j]) * lp[j];
      g[j] = (g[j] - t[j]) * inv_n;
    }
  }
  return LossResult{loss / static_cast<double>(n), std::move(grad)};
}

LossResult mse(const Tensor& prediction, const Tensor& target) {
  TAGLETS_CHECK(tensor::same_shape(prediction, target), "mse: shape mismatch");
  const std::size_t n = prediction.size();
  Tensor grad = tensor::sub(prediction, target);
  double loss = 0.0;
  for (float g : grad.data()) loss += static_cast<double>(g) * g;
  loss /= static_cast<double>(n);
  const float scale = 2.0f / static_cast<float>(n);
  for (float& g : grad.data()) g *= scale;
  return LossResult{loss, std::move(grad)};
}

double accuracy(const Tensor& logits, std::span<const std::size_t> labels) {
  TAGLETS_CHECK(!(!logits.is_matrix() || logits.rows() != labels.size()),
                "accuracy: shape mismatch");
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    if (tensor::argmax(logits.row(i)) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace taglets::nn
