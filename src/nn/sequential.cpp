#include "nn/sequential.hpp"

#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/check.hpp"

namespace taglets::nn {

using tensor::Tensor;

Sequential::Sequential(const Sequential& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

void Sequential::add(std::unique_ptr<Layer> layer) {
  TAGLETS_CHECK(layer, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& l : layers_) {
    auto ps = l->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& l : layers_) copy->add(l->clone());
  return copy;
}

void Sequential::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

namespace {

void write_string(std::ostream& out, const std::string& s) {
  const std::uint32_t n = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("Sequential::load: truncated");
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw std::runtime_error("Sequential::load: truncated");
  return s;
}

}  // namespace

void Sequential::save(std::ostream& out) const {
  const std::uint32_t n = static_cast<std::uint32_t>(layers_.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& l : layers_) {
    write_string(out, l->name());
    if (const auto* lin = dynamic_cast<const Linear*>(l.get())) {
      tensor::write_tensor(out, lin->weight().value);
      tensor::write_tensor(out, lin->bias().value);
    } else if (const auto* drop = dynamic_cast<const Dropout*>(l.get())) {
      const float p = drop->rate();
      out.write(reinterpret_cast<const char*>(&p), sizeof(p));
    }
  }
}

Sequential Sequential::load(std::istream& in, util::Rng& dropout_rng) {
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("Sequential::load: truncated header");
  Sequential seq;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = read_string(in);
    if (name == "Linear") {
      Tensor w = tensor::read_tensor(in);
      Tensor b = tensor::read_tensor(in);
      seq.add(std::make_unique<Linear>(std::move(w), std::move(b)));
    } else if (name == "ReLU") {
      seq.add(std::make_unique<ReLU>());
    } else if (name == "Tanh") {
      seq.add(std::make_unique<Tanh>());
    } else if (name == "Dropout") {
      float p = 0.0f;
      in.read(reinterpret_cast<char*>(&p), sizeof(p));
      if (!in) throw std::runtime_error("Sequential::load: truncated dropout");
      seq.add(std::make_unique<Dropout>(p, dropout_rng.fork()));
    } else {
      throw std::runtime_error("Sequential::load: unknown layer " + name);
    }
  }
  return seq;
}

Sequential make_mlp(const std::vector<std::size_t>& dims, util::Rng& rng,
                    float dropout) {
  TAGLETS_CHECK_GE(dims.size(), 2, "make_mlp: need >= 2 dims");
  Sequential seq;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    seq.add(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    const bool last = (i + 2 == dims.size());
    if (!last) {
      seq.add(std::make_unique<ReLU>());
      if (dropout > 0.0f) {
        seq.add(std::make_unique<Dropout>(dropout, rng.fork()));
      }
    }
  }
  return seq;
}

}  // namespace taglets::nn
