#include "backbone/backbone.hpp"

#include <stdexcept>

#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace taglets::backbone {

using synth::Dataset;
using tensor::Tensor;

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kBitS: return "BiT-S (ImageNet-21k-S)";
    case Kind::kRn50S: return "ResNet50-S (ImageNet-1k-S)";
  }
  return "?";
}

Pretrained pretrain_backbone(const synth::World& world, Kind kind,
                             const PretrainConfig& config) {
  Pretrained out;
  out.kind = kind;
  out.feature_dim = config.feature_dim;
  out.pretrain_concepts = kind == Kind::kBitS
                              ? world.auxiliary_concepts()
                              : world.auxiliary_subset(config.rn50_fraction);

  util::Rng rng(util::combine_seeds(
      {world.config().seed, 0xBACBACULL, static_cast<std::uint64_t>(kind)}));
  Dataset corpus = world.make_auxiliary_corpus(
      out.pretrain_concepts, config.images_per_class, rng);

  // Encoder ends in ReLU so downstream heads see penultimate activations.
  nn::Sequential encoder;
  {
    auto mlp = nn::make_mlp(
        {world.pixel_dim(), config.hidden_dim, config.feature_dim}, rng);
    encoder = std::move(mlp);
    encoder.add(std::make_unique<nn::ReLU>());
  }

  nn::Classifier model(encoder, config.feature_dim, corpus.num_classes(), rng);
  nn::FitConfig fit;
  fit.epochs = config.epochs;
  fit.batch_size = config.batch_size;
  fit.optimizer = nn::FitConfig::Opt::kSgd;
  fit.sgd.lr = config.lr;
  fit.sgd.momentum = config.momentum;
  fit.schedule = std::make_shared<nn::StepDecayLr>(
      config.lr, std::vector<double>{0.5, 0.8});
  nn::fit_hard(model, corpus.inputs, corpus.labels, fit, rng);

  out.final_train_accuracy =
      nn::evaluate_accuracy(model, corpus.inputs, corpus.labels);
  TAGLETS_LOG(kInfo) << "pretrained " << kind_name(kind) << " on "
                     << out.pretrain_concepts.size() << " concepts, train acc "
                     << out.final_train_accuracy;
  out.encoder = model.encoder();
  return out;
}

ReferenceHead train_reference_head(const synth::World& world,
                                   Pretrained& backbone,
                                   std::span<const graph::NodeId> concepts,
                                   const PretrainConfig& config) {
  util::Rng rng(util::combine_seeds({world.config().seed, 0x2EFULL}));
  Dataset corpus =
      world.make_auxiliary_corpus(concepts, config.images_per_class, rng);

  nn::Classifier model(backbone.encoder, backbone.feature_dim,
                       corpus.num_classes(), rng);
  nn::FitConfig fit;
  fit.epochs = config.epochs + 2;  // the frozen-encoder head trains fast
  fit.batch_size = config.batch_size;
  fit.freeze_encoder = true;
  fit.optimizer = nn::FitConfig::Opt::kSgd;
  fit.sgd.lr = 0.05;
  fit.sgd.momentum = config.momentum;
  nn::fit_hard(model, corpus.inputs, corpus.labels, fit, rng);

  ReferenceHead head;
  head.concepts.assign(concepts.begin(), concepts.end());
  // Head weight is (feature, classes); expose per-class rows.
  head.weights = tensor::transpose(model.head().weight().value);
  head.biases = model.head().bias().value;
  return head;
}

}  // namespace taglets::backbone
