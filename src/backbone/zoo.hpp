// Backbone zoo: lazily pretrains and memoizes the two simulated
// backbones for a world, with an optional on-disk cache so repeated
// bench invocations skip pretraining.
//
// Thread-safe: get() and zsl_reference() may be called from concurrent
// pool lanes (the task-graph pipeline overlaps the backbone fetch with
// SCADS selection, and modules fan out afterwards). Pretraining for a
// given Kind runs exactly once — concurrent callers for the same Kind
// wait on the builder, callers for a different Kind proceed in
// parallel — and the returned references are stable for the zoo's
// lifetime (entries are never evicted; std::map nodes do not move).
// Cache files are written through util::atomic_io, so a killed process
// leaves either the previous cache file or none, never a torn one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "backbone/backbone.hpp"
#include "util/sync.hpp"

namespace taglets::backbone {

/// Quantizes a real-valued config knob for fingerprint mixing:
/// round(value * scale) through a checked signed intermediate.
/// Saturates at the int64 range ends, maps NaN to a fixed sentinel,
/// and is well-defined for negative values — unlike the previous
/// `static_cast<uint64_t>(value * scale)`, which was UB for any
/// negative knob (e.g. a negative domain_shift) and could silently
/// collide cache keys. Exposed for unit tests.
std::uint64_t quantize_knob(double value, double scale);

class Zoo {
 public:
  /// `cache_dir` empty disables the disk cache. The default picks up the
  /// TAGLETS_CACHE environment variable (empty default = no disk cache).
  explicit Zoo(const synth::World* world, PretrainConfig config = {},
               std::optional<std::string> cache_dir = std::nullopt);

  const synth::World& world() const { return *world_; }
  const PretrainConfig& config() const { return config_; }

  /// Pretrained backbone for `kind` (trains on first use). Safe to
  /// call concurrently; the returned reference stays valid and is
  /// never mutated after publication.
  Pretrained& get(Kind kind);

  /// Frozen-feature reference head over the ImageNet-1k-S concepts,
  /// computed against the RN50-S backbone (ZSL-KG supervision).
  /// Safe to call concurrently; trains at most once.
  const ReferenceHead& zsl_reference();

 private:
  std::string cache_path(Kind kind) const;
  std::optional<Pretrained> load_cached(Kind kind) const;
  void store_cached(Kind kind, const Pretrained& backbone) const;

  /// CondVar wait predicates; they run with mu_ held by the wait
  /// machinery, which the static analysis cannot see.
  bool backbone_settled(Kind kind) const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return backbones_.count(kind) != 0 || building_.count(kind) == 0;
  }
  bool zsl_settled() const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return zsl_reference_.has_value() || !zsl_building_;
  }

  const synth::World* world_;
  PretrainConfig config_;
  std::string cache_dir_;

  mutable util::Mutex mu_{"backbone.zoo", util::lockrank::kBackboneZoo};
  util::CondVar cv_;
  std::map<Kind, Pretrained> backbones_ TAGLETS_GUARDED_BY(mu_);
  /// Kinds some thread is currently pretraining (lock dropped during
  /// the build; peers for the same Kind wait on cv_).
  std::set<Kind> building_ TAGLETS_GUARDED_BY(mu_);
  std::optional<ReferenceHead> zsl_reference_ TAGLETS_GUARDED_BY(mu_);
  bool zsl_building_ TAGLETS_GUARDED_BY(mu_) = false;
};

}  // namespace taglets::backbone
