// Backbone zoo: lazily pretrains and memoizes the two simulated
// backbones for a world, with an optional on-disk cache so repeated
// bench invocations skip pretraining. Thread-compatible: the zoo is
// filled before module training fans out.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "backbone/backbone.hpp"

namespace taglets::backbone {

class Zoo {
 public:
  /// `cache_dir` empty disables the disk cache. The default picks up the
  /// TAGLETS_CACHE environment variable (empty default = no disk cache).
  explicit Zoo(const synth::World* world, PretrainConfig config = {},
               std::optional<std::string> cache_dir = std::nullopt);

  const synth::World& world() const { return *world_; }
  const PretrainConfig& config() const { return config_; }

  /// Pretrained backbone for `kind` (trains on first use).
  Pretrained& get(Kind kind);

  /// Frozen-feature reference head over the ImageNet-1k-S concepts,
  /// computed against the RN50-S backbone (ZSL-KG supervision).
  const ReferenceHead& zsl_reference();

 private:
  std::string cache_path(Kind kind) const;
  std::optional<Pretrained> load_cached(Kind kind) const;
  void store_cached(Kind kind, const Pretrained& backbone) const;

  const synth::World* world_;
  PretrainConfig config_;
  std::string cache_dir_;
  std::map<Kind, Pretrained> backbones_;
  std::optional<ReferenceHead> zsl_reference_;
};

}  // namespace taglets::backbone
