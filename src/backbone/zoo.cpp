#include "backbone/zoo.hpp"

#include <filesystem>
#include <fstream>

#include "util/check.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace taglets::backbone {

namespace {

/// Cache key mixing every input that affects pretraining output.
std::uint64_t config_fingerprint(const synth::WorldConfig& wc,
                                 const PretrainConfig& pc, Kind kind) {
  return util::combine_seeds({
      wc.seed, wc.concept_count, wc.latent_dim, wc.pixel_dim, wc.word_dim,
      wc.render_hidden_dim, wc.render_regions, wc.style_dim,
      static_cast<std::uint64_t>(wc.style_scale * 1e6),
      static_cast<std::uint64_t>(wc.render_gain * 1e6),
      static_cast<std::uint64_t>(wc.intra_class_noise * 1e6),
      static_cast<std::uint64_t>(wc.pixel_noise * 1e6),
      static_cast<std::uint64_t>(wc.tree_step * 1e6),
      static_cast<std::uint64_t>(wc.domain_shift * 1e6),
      pc.hidden_dim, pc.feature_dim, pc.images_per_class, pc.epochs,
      pc.batch_size, static_cast<std::uint64_t>(pc.lr * 1e9),
      static_cast<std::uint64_t>(pc.rn50_fraction * 1e6),
      static_cast<std::uint64_t>(kind),
  });
}

}  // namespace

Zoo::Zoo(const synth::World* world, PretrainConfig config,
         std::optional<std::string> cache_dir)
    : world_(world), config_(config) {
  TAGLETS_CHECK_NE(world_, nullptr, "Zoo: null world");
  cache_dir_ =
      cache_dir.value_or(util::env_string("TAGLETS_CACHE", ".taglets_cache"));
}

std::string Zoo::cache_path(Kind kind) const {
  if (cache_dir_.empty()) return {};
  const std::uint64_t fp = config_fingerprint(world_->config(), config_, kind);
  return cache_dir_ + "/backbone_" + std::to_string(fp) + ".bin";
}

std::optional<Pretrained> Zoo::load_cached(Kind kind) const {
  const std::string path = cache_path(kind);
  if (path.empty()) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    Pretrained p;
    p.kind = kind;
    p.feature_dim = config_.feature_dim;
    util::Rng rng(0);
    p.encoder = nn::Sequential::load(in, rng);
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    p.pretrain_concepts.resize(n);
    for (auto& c : p.pretrain_concepts) {
      std::uint64_t v = 0;
      in.read(reinterpret_cast<char*>(&v), sizeof(v));
      c = static_cast<graph::NodeId>(v);
    }
    in.read(reinterpret_cast<char*>(&p.final_train_accuracy),
            sizeof(p.final_train_accuracy));
    if (!in) return std::nullopt;
    TAGLETS_LOG(kInfo) << "loaded cached backbone " << kind_name(kind);
    return p;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void Zoo::store_cached(Kind kind, const Pretrained& backbone) const {
  const std::string path = cache_path(kind);
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(cache_dir_, ec);
  std::ofstream out(path, std::ios::binary);
  if (!out) return;
  backbone.encoder.save(out);
  const std::uint64_t n = backbone.pretrain_concepts.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (graph::NodeId c : backbone.pretrain_concepts) {
    const std::uint64_t v = c;
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  out.write(reinterpret_cast<const char*>(&backbone.final_train_accuracy),
            sizeof(backbone.final_train_accuracy));
}

Pretrained& Zoo::get(Kind kind) {
  auto it = backbones_.find(kind);
  if (it != backbones_.end()) return it->second;
  if (auto cached = load_cached(kind)) {
    return backbones_.emplace(kind, std::move(*cached)).first->second;
  }
  Pretrained fresh = pretrain_backbone(*world_, kind, config_);
  store_cached(kind, fresh);
  return backbones_.emplace(kind, std::move(fresh)).first->second;
}

const ReferenceHead& Zoo::zsl_reference() {
  if (!zsl_reference_) {
    Pretrained& rn50 = get(Kind::kRn50S);
    zsl_reference_ = train_reference_head(*world_, rn50,
                                          rn50.pretrain_concepts, config_);
  }
  return *zsl_reference_;
}

}  // namespace taglets::backbone
