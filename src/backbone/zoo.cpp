#include "backbone/zoo.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "obs/metrics.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace taglets::backbone {

std::uint64_t quantize_knob(double value, double scale) {
  const double scaled = value * scale;
  if (std::isnan(scaled)) return 0x7FF8000000000000ULL;
  // Largest double exactly representable below 2^63; beyond it,
  // llround's behavior is undefined, so saturate first.
  constexpr double kLimit = 9223372036854774784.0;
  std::int64_t quantized;
  if (scaled >= kLimit) {
    quantized = std::numeric_limits<std::int64_t>::max();
  } else if (scaled <= -kLimit) {
    quantized = std::numeric_limits<std::int64_t>::min();
  } else {
    quantized = std::llround(scaled);
  }
  return static_cast<std::uint64_t>(quantized);
}

namespace {

/// Cache key mixing every input that affects pretraining output.
std::uint64_t config_fingerprint(const synth::WorldConfig& wc,
                                 const PretrainConfig& pc, Kind kind) {
  return util::combine_seeds({
      wc.seed, wc.concept_count, wc.latent_dim, wc.pixel_dim, wc.word_dim,
      wc.render_hidden_dim, wc.render_regions, wc.style_dim,
      quantize_knob(wc.style_scale, 1e6),
      quantize_knob(wc.render_gain, 1e6),
      quantize_knob(wc.intra_class_noise, 1e6),
      quantize_knob(wc.pixel_noise, 1e6),
      quantize_knob(wc.tree_step, 1e6),
      quantize_knob(wc.domain_shift, 1e6),
      pc.hidden_dim, pc.feature_dim, pc.images_per_class, pc.epochs,
      pc.batch_size, quantize_knob(pc.lr, 1e9),
      quantize_knob(pc.rn50_fraction, 1e6),
      static_cast<std::uint64_t>(kind),
  });
}

}  // namespace

Zoo::Zoo(const synth::World* world, PretrainConfig config,
         std::optional<std::string> cache_dir)
    : world_(world), config_(config) {
  TAGLETS_CHECK_NE(world_, nullptr, "Zoo: null world");
  cache_dir_ =
      cache_dir.value_or(util::env_string("TAGLETS_CACHE", ".taglets_cache"));
}

std::string Zoo::cache_path(Kind kind) const {
  if (cache_dir_.empty()) return {};
  const std::uint64_t fp = config_fingerprint(world_->config(), config_, kind);
  return cache_dir_ + "/backbone_" + std::to_string(fp) + ".bin";
}

std::optional<Pretrained> Zoo::load_cached(Kind kind) const {
  const std::string path = cache_path(kind);
  if (path.empty()) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    Pretrained p;
    p.kind = kind;
    p.feature_dim = config_.feature_dim;
    util::Rng rng(0);
    p.encoder = nn::Sequential::load(in, rng);
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    p.pretrain_concepts.resize(n);
    for (auto& c : p.pretrain_concepts) {
      std::uint64_t v = 0;
      in.read(reinterpret_cast<char*>(&v), sizeof(v));
      c = static_cast<graph::NodeId>(v);
    }
    in.read(reinterpret_cast<char*>(&p.final_train_accuracy),
            sizeof(p.final_train_accuracy));
    if (!in) return std::nullopt;
    TAGLETS_LOG(kInfo) << "loaded cached backbone " << kind_name(kind);
    return p;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void Zoo::store_cached(Kind kind, const Pretrained& backbone) const {
  const std::string path = cache_path(kind);
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(cache_dir_, ec);
  // The cache is a pure optimization: a failed write (full disk,
  // injected fault) is logged and swallowed — training already
  // succeeded. The write-temp-then-rename protocol guarantees the
  // previous cache file (or none) survives a crash or a concurrent
  // writer; the rename winner is whole either way.
  try {
    util::fault::retry_with_backoff(
        "backbone cache " + std::string(kind_name(kind)),
        util::fault::RetryPolicy::from_env(), [&] {
          util::atomic_write_stream(path, "zoo.cache", [&](std::ostream& out) {
            backbone.encoder.save(out);
            const std::uint64_t n = backbone.pretrain_concepts.size();
            out.write(reinterpret_cast<const char*>(&n), sizeof(n));
            for (graph::NodeId c : backbone.pretrain_concepts) {
              const std::uint64_t v = c;
              out.write(reinterpret_cast<const char*>(&v), sizeof(v));
            }
            out.write(
                reinterpret_cast<const char*>(&backbone.final_train_accuracy),
                sizeof(backbone.final_train_accuracy));
          });
        });
  } catch (const std::runtime_error& e) {
    TAGLETS_LOG(kWarn) << "backbone cache write failed for "
                       << kind_name(kind) << ": " << e.what();
  }
}

Pretrained& Zoo::get(Kind kind) {
  util::MutexLock lock(mu_);
  for (;;) {
    auto it = backbones_.find(kind);
    if (it != backbones_.end()) return it->second;
    if (building_.insert(kind).second) break;  // this thread builds
    // Another thread is pretraining this Kind: wait for it to either
    // publish the backbone or give up (exception), then re-check.
    cv_.wait(lock, [this, kind] { return backbone_settled(kind); });
  }

  // Build with the lock dropped — pretraining is minutes of compute
  // and may itself use the parallel pool; holding mu_ across it would
  // serialize unrelated Kinds and invert the lock order.
  lock.unlock();
  std::optional<Pretrained> built;
  try {
    built = load_cached(kind);
    if (!built) {
      built = pretrain_backbone(*world_, kind, config_);
      obs::MetricsRegistry::global().counter("backbone.pretrained_total").add();
      store_cached(kind, *built);
    }
  } catch (...) {
    lock.lock();
    building_.erase(kind);
    lock.unlock();
    cv_.notify_all();
    throw;
  }

  lock.lock();
  Pretrained& published =
      backbones_.emplace(kind, std::move(*built)).first->second;
  building_.erase(kind);
  lock.unlock();
  cv_.notify_all();
  // Safe after unlock: map nodes are stable and entries are never
  // erased, so the reference outlives any future get() traffic.
  return published;
}

const ReferenceHead& Zoo::zsl_reference() {
  // Resolve the backbone before taking mu_: get() acquires the same
  // mutex, and the rank checker (rightly) rejects recursion.
  Pretrained& rn50 = get(Kind::kRn50S);

  util::MutexLock lock(mu_);
  for (;;) {
    if (zsl_reference_) return *zsl_reference_;
    if (!zsl_building_) {
      zsl_building_ = true;
      break;
    }
    cv_.wait(lock, [this] { return zsl_settled(); });
  }

  lock.unlock();
  std::optional<ReferenceHead> head;
  try {
    head = train_reference_head(*world_, rn50, rn50.pretrain_concepts,
                                config_);
  } catch (...) {
    lock.lock();
    zsl_building_ = false;
    lock.unlock();
    cv_.notify_all();
    throw;
  }

  lock.lock();
  zsl_reference_ = std::move(*head);
  zsl_building_ = false;
  const ReferenceHead& published = *zsl_reference_;
  lock.unlock();
  cv_.notify_all();
  return published;
}

}  // namespace taglets::backbone
