// Pretrained backbone simulation. The paper's experiments vary the
// encoder phi between BiT (pretrained on ImageNet-21k) and ResNet-50
// (pretrained on ImageNet-1k). Here a backbone is an MLP encoder
// genuinely pretrained on the synthetic auxiliary corpus: "BiT-S" sees
// every auxiliary concept, "RN50-S" only a fraction — reproducing the
// paper's axis of how much auxiliary knowledge the backbone embeds.
#pragma once

#include <string>
#include <vector>

#include "nn/classifier.hpp"
#include "nn/sequential.hpp"
#include "synth/world.hpp"

namespace taglets::backbone {

enum class Kind {
  kBitS,   // "BiT (ImageNet-21k)" analogue
  kRn50S,  // "ResNet-50 (ImageNet-1k)" analogue
};

const char* kind_name(Kind kind);

struct PretrainConfig {
  std::size_t hidden_dim = 160;
  std::size_t feature_dim = 32;
  std::size_t images_per_class = 24;
  std::size_t epochs = 40;
  std::size_t batch_size = 128;
  double lr = 0.05;
  double momentum = 0.9;
  /// Fraction of the auxiliary concept pool RN50-S is pretrained on.
  double rn50_fraction = 0.25;
};

struct Pretrained {
  Kind kind = Kind::kRn50S;
  nn::Sequential encoder;  // pixel -> feature, ReLU output
  std::size_t feature_dim = 0;
  std::vector<graph::NodeId> pretrain_concepts;
  double final_train_accuracy = 0.0;
};

/// Train an encoder on an auxiliary corpus drawn from `concepts`.
/// Deterministic given (world, config, kind).
Pretrained pretrain_backbone(const synth::World& world, Kind kind,
                             const PretrainConfig& config);

/// Linear classifier over *frozen* backbone features for the given
/// concepts — the stand-in for the torchvision ResNet classifier whose
/// fully-connected weights supervise ZSL-KG pretraining (Appendix A.5).
struct ReferenceHead {
  std::vector<graph::NodeId> concepts;   // row i <-> concepts[i]
  tensor::Tensor weights;                // (n_concepts, feature_dim)
  tensor::Tensor biases;                 // (n_concepts)
};

ReferenceHead train_reference_head(const synth::World& world,
                                   Pretrained& backbone,
                                   std::span<const graph::NodeId> concepts,
                                   const PretrainConfig& config);

}  // namespace taglets::backbone
