#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace taglets::tensor {

Tensor Tensor::zeros(std::size_t n) {
  return Tensor(1, n, 1, AlignedVector(n, 0.0f));
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(2, rows, cols, AlignedVector(rows * cols, 0.0f));
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, float value) {
  return Tensor(2, rows, cols, AlignedVector(rows * cols, value));
}

Tensor Tensor::from_vector(std::vector<float> values) {
  // Copies into aligned storage (std::vector<float> has no alignment
  // guarantee beyond alignof(float)).
  const std::size_t n = values.size();
  return Tensor(1, n, 1, AlignedVector(values.begin(), values.end()));
}

Tensor Tensor::from_matrix(std::size_t rows, std::size_t cols,
                           std::vector<float> values) {
  TAGLETS_CHECK_EQ(values.size(), rows * cols, "Tensor::from_matrix");
  return Tensor(2, rows, cols, AlignedVector(values.begin(), values.end()));
}

Tensor Tensor::identity(std::size_t n) {
  Tensor t = zeros(n, n);
  for (std::size_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

std::span<float> Tensor::row(std::size_t r) {
  TAGLETS_DCHECK(rank_ == 2);
  TAGLETS_DCHECK_LT(r, rows_);
  return std::span<float>(data_.data() + r * cols_, cols_);
}

std::span<const float> Tensor::row(std::size_t r) const {
  TAGLETS_DCHECK(rank_ == 2);
  TAGLETS_DCHECK_LT(r, rows_);
  return std::span<const float>(data_.data() + r * cols_, cols_);
}

Tensor Tensor::row_copy(std::size_t r) const {
  auto src = row(r);
  return from_vector(std::vector<float>(src.begin(), src.end()));
}

Tensor Tensor::gather_rows(std::span<const std::size_t> indices) const {
  TAGLETS_CHECK(is_matrix(), "gather_rows: rank-2 required");
  Tensor out = zeros(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    TAGLETS_CHECK_LT(indices[i], rows_, "gather_rows");
    auto src = row(indices[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

Tensor Tensor::reshape(std::size_t rows, std::size_t cols) const {
  TAGLETS_CHECK_EQ(rows * cols, data_.size(), "Tensor::reshape");
  return Tensor(2, rows, cols, data_);
}

Tensor Tensor::flatten() const { return Tensor(1, data_.size(), 1, data_); }

void Tensor::fill(float value) {
  for (float& x : data_) x = value;
}

float Tensor::squared_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(s);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  if (rank_ == 0) os << "[]";
  else if (rank_ == 1) os << "[" << rows_ << "]";
  else os << "[" << rows_ << ", " << cols_ << "]";
  return os.str();
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.rank() == b.rank() && a.rows() == b.rows() && a.cols() == b.cols();
}

}  // namespace taglets::tensor
