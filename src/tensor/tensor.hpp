// Dense row-major float tensor restricted to ranks 1 and 2 — the shapes
// that appear in the TAGLETS pipeline (feature matrices, weight
// matrices, probability vectors). Deliberately minimal: contiguous
// storage, bounds-checked element access in debug builds (TAGLETS_DCHECK
// — free in release, see docs/CORRECTNESS.md), and value semantics so
// layers can own their parameters directly.
//
// Storage is 32-byte aligned (kAlignment) so the SIMD backends
// (tensor/backend.hpp) never touch an under-aligned base pointer —
// row starts are only as aligned as `cols` allows, so kernels still use
// unaligned loads, but the base alignment avoids cache-line-split
// traffic on the common power-of-two widths.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace taglets::tensor {

/// Guaranteed alignment (bytes) of every Tensor's backing storage; one
/// AVX2 vector. Regression-tested in tensor_test.
inline constexpr std::size_t kAlignment = 32;

/// Minimal aligned allocator so Tensor storage can stay a std::vector
/// while guaranteeing kAlignment. Stateless: all instances compare
/// equal.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlignment));
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

/// The aligned float buffer Tensor owns.
using AlignedVector = std::vector<float, AlignedAllocator<float>>;

class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() = default;

  /// Rank-1 tensor of `n` zeros.
  static Tensor zeros(std::size_t n);
  /// Rank-2 tensor of `rows` x `cols` zeros.
  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor full(std::size_t rows, std::size_t cols, float value);
  /// Rank-1 from values.
  static Tensor from_vector(std::vector<float> values);
  /// Rank-2 from row-major values; values.size() must equal rows*cols.
  static Tensor from_matrix(std::size_t rows, std::size_t cols,
                            std::vector<float> values);
  static Tensor identity(std::size_t n);

  bool is_vector() const { return rank_ == 1; }
  bool is_matrix() const { return rank_ == 2; }
  int rank() const { return rank_; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Total element count.
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Rank-1 element access.
  float& operator[](std::size_t i) {
    TAGLETS_DCHECK(rank_ == 1 && i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    TAGLETS_DCHECK(rank_ == 1 && i < data_.size());
    return data_[i];
  }

  /// Rank-2 element access.
  float& at(std::size_t r, std::size_t c) {
    TAGLETS_DCHECK(rank_ == 2 && r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    TAGLETS_DCHECK(rank_ == 2 && r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

  /// Copy of row `r` as a rank-1 tensor.
  Tensor row_copy(std::size_t r) const;
  /// New matrix containing the given rows in order.
  Tensor gather_rows(std::span<const std::size_t> indices) const;
  /// Reinterpret a rank-1 tensor of length rows*cols as a matrix.
  Tensor reshape(std::size_t rows, std::size_t cols) const;
  /// Flatten to rank-1.
  Tensor flatten() const;

  void fill(float value);

  /// Total squared L2 norm of all elements.
  float squared_norm() const;

  std::string shape_string() const;

 private:
  Tensor(int rank, std::size_t rows, std::size_t cols, AlignedVector data)
      : rank_(rank), rows_(rows), cols_(cols), data_(std::move(data)) {}

  int rank_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector data_;
};

/// Exact shape equality (rank, rows, cols).
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace taglets::tensor
