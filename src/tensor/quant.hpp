// Weight-only int8 quantization for the serving path. Classifier weight
// matrices are quantized once at ServableModel::load time with a
// per-row affine scheme (scale + zero-point per row, range always
// covering 0.0), and matmul_quant dequantizes on accumulate — the
// activations and the accumulator stay float32, so accuracy loss comes
// only from rounding the weights. An accuracy-delta gate in eval
// (eval::int8_accuracy_gate) rejects models where that loss exceeds a
// budget; the training path never touches this code and stays bitwise
// deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace taglets::tensor {

/// A rank-2 matrix with each row quantized to int8: for row r,
/// float_value(r, j) ~= scales[r] * (values[r*cols + j] - zero_points[r]).
struct QuantizedMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> values;      // rows * cols, row-major
  std::vector<float> scales;            // per row
  std::vector<std::int32_t> zero_points;  // per row

  bool empty() const { return values.empty(); }
};

/// Quantize each row of a rank-2 tensor to int8 with an affine
/// (scale, zero_point) per row. The quantized range always includes
/// 0.0f so zero weights stay exactly zero; an all-zero (or constant-0)
/// row gets scale 1, zero_point 0.
QuantizedMatrix quantize_rows(const Tensor& w);

/// Reconstruct the float matrix the quantized form represents (used by
/// tests and the accuracy gate; serving never materializes this).
Tensor dequantize(const QuantizedMatrix& q);

/// C = X(mxk) * dequantize(W)(kxn), mirroring matmul's i-k-j loop
/// structure, row-block parallelism, and zero-skip policy on the float
/// activations, with the inner row kernel dispatched through
/// tensor/backend.hpp (axpy_q8). X must have k == q.rows.
Tensor matmul_quant(const Tensor& x, const QuantizedMatrix& q);

}  // namespace taglets::tensor
