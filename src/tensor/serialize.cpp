#include "tensor/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace taglets::tensor {

namespace {

constexpr char kMagic[4] = {'T', 'G', 'T', '1'};

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_tensor: truncated stream");
  return value;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.rank()));
  write_pod<std::uint64_t>(out, t.rows());
  write_pod<std::uint64_t>(out, t.cols());
  auto data = t.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!out) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("read_tensor: bad magic");
  }
  const auto rank = read_pod<std::uint32_t>(in);
  const auto rows = read_pod<std::uint64_t>(in);
  const auto cols = read_pod<std::uint64_t>(in);
  if (rank != 1 && rank != 2) throw std::runtime_error("read_tensor: bad rank");
  const std::size_t count = static_cast<std::size_t>(rows) * cols;
  std::vector<float> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw std::runtime_error("read_tensor: truncated payload");
  if (rank == 1) {
    if (cols != 1) throw std::runtime_error("read_tensor: rank-1 cols != 1");
    return Tensor::from_vector(std::move(values));
  }
  return Tensor::from_matrix(rows, cols, std::move(values));
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensor: cannot open " + path);
  write_tensor(out, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensor: cannot open " + path);
  return read_tensor(in);
}

}  // namespace taglets::tensor
