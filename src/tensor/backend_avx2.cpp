// AVX2+FMA backend. Compiled with -mavx2 -mfma on x86 only (see
// src/tensor/CMakeLists.txt) and selected at runtime via
// __builtin_cpu_supports, so the binary stays runnable on pre-AVX2
// machines.
//
// Bitwise equality with the scalar backend (the determinism contract in
// backend.hpp) shapes every kernel here:
//  * float kernels vectorize across OUTPUT elements (the j axis) and
//    use explicit _mm256_mul_ps + _mm256_add_ps — never float FMA —
//    so each lane performs exactly the scalar op sequence;
//  * the zero-skip test in gemm_rowblock stays a scalar branch on
//    arow[p], identical to the scalar backend's decision;
//  * gemm_nt_row may use double FMA: the product of two floats is
//    exact in double (48 < 53 significand bits), so fmadd rounds once
//    exactly like the scalar mul-then-add;
//  * softmax_row vectorizes only the max reduction and the final scale
//    (max is order-insensitive for finite floats up to the sign of
//    zero, and exp(+0.0f) == exp(-0.0f) == 1.0f makes that harmless);
//    std::exp and the double sum stay scalar.
//
// The speedup over the (auto-vectorized, -march=native) scalar backend
// comes from register tiling: gemm_rowblock holds a 16-wide strip of C
// in two ymm accumulators across the whole k-block instead of storing
// and reloading C for every p.
#include <cstddef>
#include <cstdint>

#include "tensor/backend.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <climits>
#include <cmath>

namespace taglets::tensor::backend {

namespace {

// kCheckZero=false is taken only when the caller proved the A block has
// no zeros, so dropping the test cannot change which p are skipped —
// the op sequence per element is identical, just without the (port-
// stealing) ucomiss per p in the hot loop.
template <bool kCheckZero>
void gemm_rowblock_impl(const float* arow, std::size_t k0, std::size_t k1,
                        const float* b, std::size_t ldb, std::size_t n,
                        float* crow) {
  std::size_t j = 0;
  // 64-wide strips: eight independent accumulator chains keep the FP
  // add ports saturated (one chain's add latency would otherwise gate
  // every p step), and C stays in registers across the whole k-block.
  for (; j + 64 <= n; j += 64) {
    float* cj = crow + j;
    __m256 c0 = _mm256_loadu_ps(cj);
    __m256 c1 = _mm256_loadu_ps(cj + 8);
    __m256 c2 = _mm256_loadu_ps(cj + 16);
    __m256 c3 = _mm256_loadu_ps(cj + 24);
    __m256 c4 = _mm256_loadu_ps(cj + 32);
    __m256 c5 = _mm256_loadu_ps(cj + 40);
    __m256 c6 = _mm256_loadu_ps(cj + 48);
    __m256 c7 = _mm256_loadu_ps(cj + 56);
    for (std::size_t p = k0; p < k1; ++p) {
      const float av = arow[p];
      if constexpr (kCheckZero) {
        if (av == 0.0f) continue;  // zero-skip contract: see backend.hpp
      }
      const __m256 va = _mm256_set1_ps(av);
      const float* brow = b + p * ldb + j;
      c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(brow)));
      c1 = _mm256_add_ps(c1, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 8)));
      c2 = _mm256_add_ps(c2, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 16)));
      c3 = _mm256_add_ps(c3, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 24)));
      c4 = _mm256_add_ps(c4, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 32)));
      c5 = _mm256_add_ps(c5, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 40)));
      c6 = _mm256_add_ps(c6, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 48)));
      c7 = _mm256_add_ps(c7, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 56)));
    }
    _mm256_storeu_ps(cj, c0);
    _mm256_storeu_ps(cj + 8, c1);
    _mm256_storeu_ps(cj + 16, c2);
    _mm256_storeu_ps(cj + 24, c3);
    _mm256_storeu_ps(cj + 32, c4);
    _mm256_storeu_ps(cj + 40, c5);
    _mm256_storeu_ps(cj + 48, c6);
    _mm256_storeu_ps(cj + 56, c7);
  }
  for (; j + 16 <= n; j += 16) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    __m256 c1 = _mm256_loadu_ps(crow + j + 8);
    for (std::size_t p = k0; p < k1; ++p) {
      const float av = arow[p];
      if constexpr (kCheckZero) {
        if (av == 0.0f) continue;
      }
      const __m256 va = _mm256_set1_ps(av);
      const float* brow = b + p * ldb + j;
      c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(brow)));
      c1 = _mm256_add_ps(c1, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 8)));
    }
    _mm256_storeu_ps(crow + j, c0);
    _mm256_storeu_ps(crow + j + 8, c1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    for (std::size_t p = k0; p < k1; ++p) {
      const float av = arow[p];
      if constexpr (kCheckZero) {
        if (av == 0.0f) continue;
      }
      c0 = _mm256_add_ps(
          c0, _mm256_mul_ps(_mm256_set1_ps(av),
                            _mm256_loadu_ps(b + p * ldb + j)));
    }
    _mm256_storeu_ps(crow + j, c0);
  }
  if (j < n) {
    for (std::size_t p = k0; p < k1; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (std::size_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
    }
  }
}

bool block_has_zero(const float* arow, std::size_t k0, std::size_t k1) {
  for (std::size_t p = k0; p < k1; ++p) {
    if (arow[p] == 0.0f) return true;
  }
  return false;
}

void gemm_rowblock(const float* arow, std::size_t k0, std::size_t k1,
                   const float* b, std::size_t ldb, std::size_t n,
                   float* crow) {
  if (block_has_zero(arow, k0, k1)) {
    gemm_rowblock_impl<true>(arow, k0, k1, b, ldb, n, crow);
  } else {
    gemm_rowblock_impl<false>(arow, k0, k1, b, ldb, n, crow);
  }
}

template <bool kCheckZero>
void gemm_rowblock2_impl(const float* arow0, const float* arow1,
                         std::size_t k0, std::size_t k1, const float* b,
                         std::size_t ldb, std::size_t n, float* crow0,
                         float* crow1) {
  std::size_t j = 0;
  // 32-wide strips over two C rows: each loaded B strip feeds both
  // rows, halving B traffic vs two single-row passes, with the same
  // eight independent accumulator chains. The zero-skip decision stays
  // per-row, so each element sees exactly the single-row op sequence.
  for (; j + 32 <= n; j += 32) {
    float* c0j = crow0 + j;
    float* c1j = crow1 + j;
    __m256 a0 = _mm256_loadu_ps(c0j);
    __m256 a1 = _mm256_loadu_ps(c0j + 8);
    __m256 a2 = _mm256_loadu_ps(c0j + 16);
    __m256 a3 = _mm256_loadu_ps(c0j + 24);
    __m256 d0 = _mm256_loadu_ps(c1j);
    __m256 d1 = _mm256_loadu_ps(c1j + 8);
    __m256 d2 = _mm256_loadu_ps(c1j + 16);
    __m256 d3 = _mm256_loadu_ps(c1j + 24);
    for (std::size_t p = k0; p < k1; ++p) {
      const float v0 = arow0[p];
      const float v1 = arow1[p];
      const float* brow = b + p * ldb + j;
      if constexpr (kCheckZero) {
        const bool use0 = v0 != 0.0f;  // zero-skip contract, per row
        const bool use1 = v1 != 0.0f;
        if (!use0 && !use1) continue;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        if (use0) {
          const __m256 va = _mm256_set1_ps(v0);
          a0 = _mm256_add_ps(a0, _mm256_mul_ps(va, b0));
          a1 = _mm256_add_ps(a1, _mm256_mul_ps(va, b1));
          a2 = _mm256_add_ps(a2, _mm256_mul_ps(va, b2));
          a3 = _mm256_add_ps(a3, _mm256_mul_ps(va, b3));
        }
        if (use1) {
          const __m256 va = _mm256_set1_ps(v1);
          d0 = _mm256_add_ps(d0, _mm256_mul_ps(va, b0));
          d1 = _mm256_add_ps(d1, _mm256_mul_ps(va, b1));
          d2 = _mm256_add_ps(d2, _mm256_mul_ps(va, b2));
          d3 = _mm256_add_ps(d3, _mm256_mul_ps(va, b3));
        }
      } else {
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        const __m256 va0 = _mm256_set1_ps(v0);
        const __m256 va1 = _mm256_set1_ps(v1);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(va0, b0));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(va0, b1));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(va0, b2));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(va0, b3));
        d0 = _mm256_add_ps(d0, _mm256_mul_ps(va1, b0));
        d1 = _mm256_add_ps(d1, _mm256_mul_ps(va1, b1));
        d2 = _mm256_add_ps(d2, _mm256_mul_ps(va1, b2));
        d3 = _mm256_add_ps(d3, _mm256_mul_ps(va1, b3));
      }
    }
    _mm256_storeu_ps(c0j, a0);
    _mm256_storeu_ps(c0j + 8, a1);
    _mm256_storeu_ps(c0j + 16, a2);
    _mm256_storeu_ps(c0j + 24, a3);
    _mm256_storeu_ps(c1j, d0);
    _mm256_storeu_ps(c1j + 8, d1);
    _mm256_storeu_ps(c1j + 16, d2);
    _mm256_storeu_ps(c1j + 24, d3);
  }
  if (j < n) {
    gemm_rowblock_impl<kCheckZero>(arow0, k0, k1, b + j, ldb, n - j,
                                   crow0 + j);
    gemm_rowblock_impl<kCheckZero>(arow1, k0, k1, b + j, ldb, n - j,
                                   crow1 + j);
  }
}

void gemm_rowblock2(const float* arow0, const float* arow1, std::size_t k0,
                    std::size_t k1, const float* b, std::size_t ldb,
                    std::size_t n, float* crow0, float* crow1) {
  if (block_has_zero(arow0, k0, k1) || block_has_zero(arow1, k0, k1)) {
    gemm_rowblock2_impl<true>(arow0, arow1, k0, k1, b, ldb, n, crow0, crow1);
  } else {
    gemm_rowblock2_impl<false>(arow0, arow1, k0, k1, b, ldb, n, crow0,
                               crow1);
  }
}

void gemm_nt_row(const float* arow, const float* b, std::size_t ldb,
                 std::size_t n_rows_b, std::size_t k, float* crow) {
  std::size_t j = 0;
  // Lanes are distinct output columns (rows of B); each lane walks p
  // serially, so per-element order matches the scalar backend. Gather
  // indices are int32: fall back to the scalar loop for absurd strides.
  if (ldb <= static_cast<std::size_t>(INT_MAX / 4)) {
    const int ld = static_cast<int>(ldb);
    const __m128i idx = _mm_setr_epi32(0, ld, 2 * ld, 3 * ld);
    // Two accumulator quads per pass to break the FMA latency chain.
    for (; j + 8 <= n_rows_b; j += 8) {
      const float* b0 = b + j * ldb;
      const float* b1 = b + (j + 4) * ldb;
      __m256d s0 = _mm256_setzero_pd();
      __m256d s1 = _mm256_setzero_pd();
      for (std::size_t p = 0; p < k; ++p) {
        const __m256d ap = _mm256_set1_pd(static_cast<double>(arow[p]));
        const __m128 v0 = _mm_i32gather_ps(b0 + p, idx, 4);
        const __m128 v1 = _mm_i32gather_ps(b1 + p, idx, 4);
        // Exact-product double FMA == scalar mul-then-add (see header).
        s0 = _mm256_fmadd_pd(ap, _mm256_cvtps_pd(v0), s0);
        s1 = _mm256_fmadd_pd(ap, _mm256_cvtps_pd(v1), s1);
      }
      _mm_storeu_ps(crow + j, _mm256_cvtpd_ps(s0));
      _mm_storeu_ps(crow + j + 4, _mm256_cvtpd_ps(s1));
    }
  }
  for (; j < n_rows_b; ++j) {
    const float* brow = b + j * ldb;
    double s = 0.0;
    for (std::size_t p = 0; p < k; ++p) {
      s += static_cast<double>(arow[p]) * brow[p];
    }
    crow[j] = static_cast<float>(s);
  }
}

void axpy(std::size_t n, float a, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void axpy_q8(std::size_t n, float a, const std::int8_t* q,
             std::int32_t zero_point, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  const __m256i vzp = _mm256_set1_epi32(zero_point);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + j));
    // (q - zp) is exact in int32 and |q - zp| <= 255 converts exactly
    // to float, so lanes match the scalar backend bit-for-bit.
    const __m256i qi = _mm256_sub_epi32(_mm256_cvtepi8_epi32(raw), vzp);
    const __m256 qf = _mm256_cvtepi32_ps(qi);
    _mm256_storeu_ps(y + j, _mm256_add_ps(_mm256_loadu_ps(y + j),
                                          _mm256_mul_ps(va, qf)));
  }
  for (; j < n; ++j) {
    y[j] += a * static_cast<float>(static_cast<std::int32_t>(q[j]) -
                                   zero_point);
  }
}

void ew_add(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void ew_sub(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_sub_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void ew_mul(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ew_scale(std::size_t n, float a, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

void softmax_row(const float* in, std::size_t n, float* out) {
  if (n == 0) return;
  float mx;
  std::size_t j;
  if (n >= 8) {
    __m256 vm = _mm256_loadu_ps(in);
    for (j = 8; j + 8 <= n; j += 8) {
      vm = _mm256_max_ps(vm, _mm256_loadu_ps(in + j));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vm);
    mx = lanes[0];
    for (int l = 1; l < 8; ++l) mx = mx < lanes[l] ? lanes[l] : mx;
  } else {
    mx = in[0];
    j = 1;
  }
  for (; j < n; ++j) mx = mx < in[j] ? in[j] : mx;
  double sum = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = std::exp(in[t] - mx);
    sum += out[t];
  }
  const float inv = static_cast<float>(1.0 / sum);
  const __m256 vinv = _mm256_set1_ps(inv);
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8) {
    _mm256_storeu_ps(out + t, _mm256_mul_ps(_mm256_loadu_ps(out + t), vinv));
  }
  for (; t < n; ++t) out[t] *= inv;
}

}  // namespace

namespace detail {

const Kernels* avx2_kernels() {
  // gemm_nt_row uses fmadd_pd, so require FMA alongside AVX2.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static const Kernels k{
      "avx2",  gemm_rowblock, gemm_rowblock2, gemm_nt_row, axpy,
      axpy_q8, ew_add,        ew_sub,         ew_mul,      ew_scale,
      softmax_row,
  };
  return &k;
}

}  // namespace detail

}  // namespace taglets::tensor::backend

#else  // non-x86: the avx2 backend does not exist on this architecture

namespace taglets::tensor::backend::detail {

const Kernels* avx2_kernels() { return nullptr; }

}  // namespace taglets::tensor::backend::detail

#endif
