// Runtime-dispatched SIMD kernel backends for the tensor hot paths.
//
// A backend is a table of row-level microkernels (Kernels) that ops.cpp
// drives from its existing util::Parallel row-blocking; backends never
// see whole tensors, only raw rows, so the blocking, shape checks, and
// finiteness guards stay in exactly one place (ops.cpp) and are by
// construction identical across backends.
//
// Available backends:
//   scalar — bit-for-bit the pre-backend loops; always available.
//   avx2   — AVX2+FMA x86 kernels, selected at runtime via CPUID
//            (__builtin_cpu_supports), compiled only on x86.
//   neon   — NEON kernels, compile-time selected on ARM.
//
// Selection: TAGLETS_TENSOR_BACKEND = scalar | avx2 | neon | native
// (default native = best available). Requesting an unavailable backend
// throws std::runtime_error at first use — a misconfigured fleet node
// must fail loudly, not silently fall back to scalar.
//
// Determinism contract (enforced by tests/backend_test.cpp): for every
// kernel, each output element is computed by the same sequence of
// floating-point operations in every backend, so results are bitwise
// identical backend-to-backend:
//   * gemm_rowblock / axpy accumulate per output element in ascending-p
//     order with an explicit mul-then-add per step (the kernel sources
//     are compiled with -ffp-contract=off so the scalar loops cannot be
//     FMA-contracted into different roundings);
//   * gemm_rowblock skips p where arow[p] == 0.0f — the zero-skip
//     decision is part of the kernel contract and must be made on the
//     same scalar value in every backend (SIMD lanes vectorize j, never
//     the skip test), so even NaN/Inf columns in B are dropped or
//     propagated identically (see the TAGLETS_CHECK_FINITE guard in
//     ops.cpp for why skipping can drop 0*NaN at all);
//   * gemm_nt_row accumulates each output element in double in
//     ascending-p order; SIMD lanes are distinct output columns and use
//     double FMA, which is bitwise-equal to the scalar mul-then-add
//     because the product of two floats is exact in double;
//   * softmax_row keeps std::exp and the double sum scalar (vectorizing
//     only the max reduction and the final scale, both lane-exact).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace taglets::tensor::backend {

/// Table of row-level microkernels. All pointers are non-null in every
/// registered backend; kernels are pure functions and thread-safe.
struct Kernels {
  const char* name;

  /// crow[j] += sum over p in [k0, k1) of arow[p] * b[p*ldb + j] for
  /// j in [0, n), accumulating in ascending-p order per j and skipping
  /// p where arow[p] == 0.0f (zero-skip contract, see header comment).
  void (*gemm_rowblock)(const float* arow, std::size_t k0, std::size_t k1,
                        const float* b, std::size_t ldb, std::size_t n,
                        float* crow);

  /// Two C rows per pass: exactly gemm_rowblock(arow0, ..., crow0)
  /// followed by gemm_rowblock(arow1, ..., crow1), but backends may
  /// interleave the rows so each loaded B strip feeds both, halving B
  /// traffic. Per-element accumulation order and the per-row zero-skip
  /// decisions are unchanged, so results stay bitwise identical to two
  /// single-row calls.
  void (*gemm_rowblock2)(const float* arow0, const float* arow1,
                         std::size_t k0, std::size_t k1, const float* b,
                         std::size_t ldb, std::size_t n, float* crow0,
                         float* crow1);

  /// crow[j] = (float)(sum over p in [0, k) of
  /// (double)arow[p] * (double)b[j*ldb + p]) for j in [0, n_rows_b) —
  /// one output row of C = A * B^T.
  void (*gemm_nt_row)(const float* arow, const float* b, std::size_t ldb,
                      std::size_t n_rows_b, std::size_t k, float* crow);

  /// y[i] += a * x[i]. No zero-skip: callers that want the matmul
  /// skip rule apply it before calling (identically for all backends).
  void (*axpy)(std::size_t n, float a, const float* x, float* y);

  /// y[j] += a * (float)((int32)q[j] - zero_point) — dequantize-on-
  /// accumulate over one int8-quantized row (tensor/quant.hpp).
  void (*axpy_q8)(std::size_t n, float a, const std::int8_t* q,
                  std::int32_t zero_point, float* y);

  /// y[i] += x[i] / y[i] -= x[i] / y[i] *= x[i] / y[i] *= a.
  void (*ew_add)(std::size_t n, const float* x, float* y);
  void (*ew_sub)(std::size_t n, const float* x, float* y);
  void (*ew_mul)(std::size_t n, const float* x, float* y);
  void (*ew_scale)(std::size_t n, float a, float* y);

  /// out = softmax(in) over one row of n elements (in != out). Max
  /// subtraction for stability; the exp/sum stage is scalar by contract.
  void (*softmax_row)(const float* in, std::size_t n, float* out);
};

/// The active backend, resolved once per process from
/// TAGLETS_TENSOR_BACKEND (+ CPUID). Hot paths call this per op, not
/// per row — it is one relaxed atomic load after the first call.
const Kernels& active();

/// Name of the active backend ("scalar" / "avx2" / "neon").
std::string active_name();

/// Names of the backends usable on this machine (always contains
/// "scalar").
std::vector<std::string> available();

/// Backend by name, or nullptr when unknown/unavailable here.
const Kernels* lookup(const std::string& name);

/// Testing/bench hook: force the active backend, returning the previous
/// table (restore it when done). nullptr re-resolves from the
/// environment on next use.
const Kernels* exchange_active(const Kernels* kernels);

namespace detail {
/// Per-backend tables; avx2/neon return nullptr when the instruction
/// set is missing at compile or run time.
const Kernels& scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* neon_kernels();
}  // namespace detail

}  // namespace taglets::tensor::backend
