// Tensor operations used by the NN substrate, the graph-embedding code
// (retrofitting, cosine search), and the ensemble math. Matmul uses
// cache-blocked loops parallelized over row blocks via util::Parallel
// (bitwise-identical results at every TAGLETS_THREADS setting); the
// inner row kernels are dispatched through tensor/backend.hpp
// (TAGLETS_TENSOR_BACKEND = scalar | avx2 | neon | native) under a
// bitwise-determinism contract, so results are also identical at every
// backend setting — see docs/PERFORMANCE.md. All functions validate
// shapes via TAGLETS_CHECK (throwing util::ContractViolation, see
// docs/CORRECTNESS.md) so shape bugs fail loudly rather than silently.
// The matmul zero-skip fast path additionally rejects non-finite
// operands in debug builds (or with TAGLETS_CHECK_FINITE=1), since
// skipping 0 * NaN would silently drop NaN/Inf propagation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace taglets::tensor {

/// Toggle the matmul finiteness guard at runtime (defaults: on in debug
/// builds, TAGLETS_CHECK_FINITE elsewhere). Returns the previous value.
bool set_finite_checks(bool enabled);
/// Whether the matmul finiteness guard is currently active (shared by
/// all kernels with a zero-skip fast path, including matmul_quant).
bool finite_checks_enabled();

// ---- matrix products -------------------------------------------------

/// C = A(mxk) * B(kxn).
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T(kxm -> mxk view) * B, i.e. matmul(transpose(a), b) without
/// materializing the transpose.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A * B^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

// ---- elementwise -----------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor hadamard(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
/// a += s * b (AXPY).
void add_scaled_inplace(Tensor& a, const Tensor& b, float s);
/// Add a rank-1 bias to every row of a matrix.
Tensor add_row_broadcast(const Tensor& a, const Tensor& bias);

// ---- reductions ------------------------------------------------------

float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> a);
/// Cosine similarity; 0 when either vector has zero norm.
float cosine_similarity(std::span<const float> a, std::span<const float> b);
/// Column sums of a matrix as a rank-1 tensor.
Tensor column_sums(const Tensor& a);
/// Mean over rows as a rank-1 tensor.
Tensor row_mean(const Tensor& a);

// ---- probability helpers --------------------------------------------

/// Numerically stable softmax of each row (matrix) or of the vector.
Tensor softmax(const Tensor& logits);
/// Stable log-softmax.
Tensor log_softmax(const Tensor& logits);
/// Index of the max element per row.
std::vector<std::size_t> argmax_rows(const Tensor& a);
std::size_t argmax(std::span<const float> a);
/// Max element per row.
std::vector<float> max_rows(const Tensor& a);

/// L2-normalize each row in place; zero rows are left untouched.
void normalize_rows(Tensor& a);

/// Top-k indices by descending value (ties broken by lower index).
std::vector<std::size_t> top_k_indices(std::span<const float> values,
                                       std::size_t k);

}  // namespace taglets::tensor
