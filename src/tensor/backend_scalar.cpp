// Scalar reference backend: bit-for-bit the loops ops.cpp used before
// backends existed. Every other backend is tested against this one for
// bitwise equality (tests/backend_test.cpp), so these loops are the
// semantics of record — do not "optimize" them. This TU is compiled
// with -ffp-contract=off so the mul-then-add accumulations can never be
// fused into FMAs with different rounding than the SIMD backends.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/backend.hpp"

namespace taglets::tensor::backend {

namespace {

void gemm_rowblock(const float* arow, std::size_t k0, std::size_t k1,
                   const float* b, std::size_t ldb, std::size_t n,
                   float* crow) {
  for (std::size_t p = k0; p < k1; ++p) {
    const float av = arow[p];
    if (av == 0.0f) continue;  // zero-skip contract: see backend.hpp
    const float* brow = b + p * ldb;
    for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
  }
}

void gemm_rowblock2(const float* arow0, const float* arow1, std::size_t k0,
                    std::size_t k1, const float* b, std::size_t ldb,
                    std::size_t n, float* crow0, float* crow1) {
  gemm_rowblock(arow0, k0, k1, b, ldb, n, crow0);
  gemm_rowblock(arow1, k0, k1, b, ldb, n, crow1);
}

void gemm_nt_row(const float* arow, const float* b, std::size_t ldb,
                 std::size_t n_rows_b, std::size_t k, float* crow) {
  for (std::size_t j = 0; j < n_rows_b; ++j) {
    const float* brow = b + j * ldb;
    double s = 0.0;
    for (std::size_t p = 0; p < k; ++p) {
      s += static_cast<double>(arow[p]) * brow[p];
    }
    crow[j] = static_cast<float>(s);
  }
}

void axpy(std::size_t n, float a, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void axpy_q8(std::size_t n, float a, const std::int8_t* q,
             std::int32_t zero_point, float* y) {
  for (std::size_t j = 0; j < n; ++j) {
    y[j] += a * static_cast<float>(static_cast<std::int32_t>(q[j]) -
                                   zero_point);
  }
}

void ew_add(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void ew_sub(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void ew_mul(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void ew_scale(std::size_t n, float a, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= a;
}

void softmax_row(const float* in, std::size_t n, float* out) {
  if (n == 0) return;  // *max_element on an empty range is UB
  const float mx = *std::max_element(in, in + n);
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = std::exp(in[j] - mx);
    sum += out[j];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::size_t j = 0; j < n; ++j) out[j] *= inv;
}

}  // namespace

namespace detail {

const Kernels& scalar_kernels() {
  static const Kernels k{
      "scalar", gemm_rowblock, gemm_rowblock2, gemm_nt_row, axpy,
      axpy_q8,  ew_add,        ew_sub,         ew_mul,      ew_scale,
      softmax_row,
  };
  return k;
}

}  // namespace detail

}  // namespace taglets::tensor::backend
