#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/backend.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace taglets::tensor {

namespace {

constexpr std::size_t kBlock = 64;  // matches ops.cpp's matmul blocking

}  // namespace

QuantizedMatrix quantize_rows(const Tensor& w) {
  TAGLETS_CHECK(w.is_matrix(), "quantize_rows: rank-2 required");
  TAGLETS_CHECK_FINITE(w, "quantize_rows",
                       ": cannot quantize non-finite weights");
  QuantizedMatrix q;
  q.rows = w.rows();
  q.cols = w.cols();
  q.values.resize(w.rows() * w.cols());
  q.scales.resize(w.rows());
  q.zero_points.resize(w.rows());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    auto row = w.row(r);
    float lo = 0.0f, hi = 0.0f;  // range always covers 0.0
    for (float x : row) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi == lo) {
      // Constant-zero row: represent exactly with q = 0 everywhere.
      q.scales[r] = 1.0f;
      q.zero_points[r] = 0;
      std::fill_n(q.values.begin() + static_cast<std::ptrdiff_t>(r * q.cols),
                  q.cols, std::int8_t{0});
      continue;
    }
    const float scale = (hi - lo) / 255.0f;
    // Map lo -> -128; since lo <= 0 <= hi the zero point lands in
    // [-128, 127], so 0.0f is exactly representable.
    const std::int32_t zp = static_cast<std::int32_t>(
        std::lround(-128.0 - static_cast<double>(lo) / scale));
    q.scales[r] = scale;
    q.zero_points[r] = zp;
    std::int8_t* out =
        q.values.data() + static_cast<std::ptrdiff_t>(r * q.cols);
    for (std::size_t j = 0; j < row.size(); ++j) {
      const long v = std::lround(static_cast<double>(row[j]) / scale) + zp;
      out[j] = static_cast<std::int8_t>(std::clamp(v, -128L, 127L));
    }
  }
  return q;
}

Tensor dequantize(const QuantizedMatrix& q) {
  Tensor w = Tensor::zeros(q.rows, q.cols);
  for (std::size_t r = 0; r < q.rows; ++r) {
    const std::int8_t* qrow =
        q.values.data() + static_cast<std::ptrdiff_t>(r * q.cols);
    float* out = w.row(r).data();
    for (std::size_t j = 0; j < q.cols; ++j) {
      out[j] = q.scales[r] *
               static_cast<float>(static_cast<std::int32_t>(qrow[j]) -
                                  q.zero_points[r]);
    }
  }
  return w;
}

Tensor matmul_quant(const Tensor& x, const QuantizedMatrix& q) {
  TAGLETS_CHECK(x.is_matrix(), "matmul_quant: rank-2 required");
  TAGLETS_CHECK(x.cols() == q.rows, "matmul_quant: inner dim mismatch");
  if (finite_checks_enabled()) {
    // Same rationale as matmul: the zero-skip below would silently drop
    // 0 * NaN, so reject poisoned activations when the guard is on.
    TAGLETS_CHECK_FINITE(x, "matmul_quant",
                         ": non-finite operand (zero-skip fast path would "
                         "drop NaN/Inf propagation)");
  }
  const std::size_t m = x.rows(), k = x.cols(), n = q.cols;
  Tensor c = Tensor::zeros(m, n);
  const backend::Kernels& kern = backend::active();
  util::parallel_for_ranges(m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t kend = std::min(k, kk + kBlock);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* xrow = x.row(i).data();
        float* crow = c.row(i).data();
        for (std::size_t p = kk; p < kend; ++p) {
          const float av = xrow[p];
          if (av == 0.0f) continue;  // same skip policy as matmul
          // Fold the per-row weight scale into the activation so the
          // kernel dequantizes with one multiply per element.
          kern.axpy_q8(
              n, av * q.scales[p],
              q.values.data() + static_cast<std::ptrdiff_t>(p * n),
              q.zero_points[p], crow);
        }
      }
    }
  });
  return c;
}

}  // namespace taglets::tensor
