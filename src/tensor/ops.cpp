#include "tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "tensor/backend.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace taglets::tensor {

namespace {

constexpr std::size_t kBlock = 64;

// -1 = resolve lazily from build mode / TAGLETS_CHECK_FINITE.
std::atomic<int> g_finite_checks{-1};

// The matmul kernels skip zero multiplicands for speed, which silently
// drops NaN/Inf propagation (0 * NaN must be NaN). Keep the fast path,
// but in debug mode (or with TAGLETS_CHECK_FINITE=1) reject non-finite
// operands so the skip can never mask a poisoned tensor.
void debug_check_finite(const Tensor& t, const char* what) {
  if (!finite_checks_enabled()) return;
  TAGLETS_CHECK_FINITE(t, what,
                       ": non-finite operand (zero-skip fast path would "
                       "drop NaN/Inf propagation)");
}

}  // namespace

bool set_finite_checks(bool enabled) {
  const int prev = g_finite_checks.exchange(enabled ? 1 : 0,
                                            std::memory_order_relaxed);
  return prev > 0;
}

bool finite_checks_enabled() {
  int v = g_finite_checks.load(std::memory_order_relaxed);
  if (v < 0) {
#ifndef NDEBUG
    v = 1;
#else
    v = util::env_flag("TAGLETS_CHECK_FINITE") ? 1 : 0;
#endif
    g_finite_checks.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

// All three matmul variants parallelize over disjoint row blocks of C
// through util::Parallel and hand each row block to the active backend
// (tensor/backend.hpp). Each output row is accumulated by exactly one
// chunk in the same p-order as the serial loop, so results are
// bitwise-identical at every thread count — and, by the backend
// determinism contract, at every TAGLETS_TENSOR_BACKEND setting.

Tensor matmul(const Tensor& a, const Tensor& b) {
  TAGLETS_CHECK(a.is_matrix() && b.is_matrix(), "matmul: rank-2 required");
  TAGLETS_CHECK(a.cols() == b.rows(), "matmul: inner dim mismatch");
  debug_check_finite(a, "matmul");
  debug_check_finite(b, "matmul");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c = Tensor::zeros(m, n);
  const backend::Kernels& kern = backend::active();
  const float* bp = b.data().data();
  // i-k-j loop order with blocking on k: the innermost (backend) loop
  // walks both B and C rows contiguously.
  util::parallel_for_ranges(m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t kend = std::min(k, kk + kBlock);
      // Paired rows share each loaded B strip (see gemm_rowblock2);
      // results are bitwise identical to the single-row path.
      std::size_t i = r0;
      for (; i + 1 < r1; i += 2) {
        kern.gemm_rowblock2(a.row(i).data(), a.row(i + 1).data(), kk, kend,
                            bp, n, n, c.row(i).data(), c.row(i + 1).data());
      }
      if (i < r1) {
        kern.gemm_rowblock(a.row(i).data(), kk, kend, bp, n, n,
                           c.row(i).data());
      }
    }
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  TAGLETS_CHECK(a.is_matrix() && b.is_matrix(), "matmul_tn: rank-2 required");
  TAGLETS_CHECK(a.rows() == b.rows(), "matmul_tn: inner dim mismatch");
  debug_check_finite(a, "matmul_tn");
  debug_check_finite(b, "matmul_tn");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Tensor c = Tensor::zeros(m, n);
  const backend::Kernels& kern = backend::active();
  util::parallel_for_ranges(m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t p = 0; p < k; ++p) {
      const float* arow = a.row(p).data();
      const float* brow = b.row(p).data();
      for (std::size_t i = r0; i < r1; ++i) {
        const float av = arow[i];
        // The zero-skip decision lives here, in backend-independent
        // caller code, so every backend sees the identical policy.
        if (av == 0.0f) continue;
        kern.axpy(n, av, brow, c.row(i).data());
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  TAGLETS_CHECK(a.is_matrix() && b.is_matrix(), "matmul_nt: rank-2 required");
  TAGLETS_CHECK(a.cols() == b.cols(), "matmul_nt: inner dim mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c = Tensor::zeros(m, n);
  const backend::Kernels& kern = backend::active();
  const float* bp = b.data().data();
  util::parallel_for_ranges(m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      kern.gemm_nt_row(a.row(i).data(), bp, k, n, k, c.row(i).data());
    }
  });
  return c;
}

Tensor transpose(const Tensor& a) {
  TAGLETS_CHECK(a.is_matrix(), "transpose: rank-2 required");
  Tensor t = Tensor::zeros(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  TAGLETS_CHECK(same_shape(a, b), "add: shape mismatch");
  Tensor c = a;
  backend::active().ew_add(c.size(), b.data().data(), c.data().data());
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  TAGLETS_CHECK(same_shape(a, b), "sub: shape mismatch");
  Tensor c = a;
  backend::active().ew_sub(c.size(), b.data().data(), c.data().data());
  return c;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  TAGLETS_CHECK(same_shape(a, b), "hadamard: shape mismatch");
  Tensor c = a;
  backend::active().ew_mul(c.size(), b.data().data(), c.data().data());
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  backend::active().ew_scale(c.size(), s, c.data().data());
  return c;
}

void add_scaled_inplace(Tensor& a, const Tensor& b, float s) {
  TAGLETS_CHECK(same_shape(a, b), "add_scaled_inplace: shape mismatch");
  // No zero-skip on s: unlike matmul this is a single pass, and the
  // optimizer update path relies on a += 0 * b normalizing -0.0 the
  // same way the historical loop did.
  backend::active().axpy(a.size(), s, b.data().data(), a.data().data());
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& bias) {
  TAGLETS_CHECK(a.is_matrix(), "add_row_broadcast: matrix required");
  TAGLETS_CHECK(bias.is_vector() && bias.size() == a.cols(),
          "add_row_broadcast: bias size mismatch");
  Tensor c = a;
  const backend::Kernels& kern = backend::active();
  const float* bp = bias.data().data();
  for (std::size_t i = 0; i < c.rows(); ++i) {
    kern.ew_add(c.cols(), bp, c.row(i).data());
  }
  return c;
}

float dot(std::span<const float> a, std::span<const float> b) {
  TAGLETS_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(s);
}

float l2_norm(std::span<const float> a) {
  double s = 0.0;
  for (float x : a) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const float na = l2_norm(a), nb = l2_norm(b);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

Tensor column_sums(const Tensor& a) {
  TAGLETS_CHECK(a.is_matrix(), "column_sums: matrix required");
  Tensor out = Tensor::zeros(a.cols());
  const backend::Kernels& kern = backend::active();
  float* op = out.data().data();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    kern.ew_add(a.cols(), a.row(i).data(), op);
  }
  return out;
}

Tensor row_mean(const Tensor& a) {
  Tensor out = column_sums(a);
  if (a.rows() > 0) {
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] /= static_cast<float>(a.rows());
    }
  }
  return out;
}

Tensor softmax(const Tensor& logits) {
  const backend::Kernels& kern = backend::active();
  if (logits.is_vector()) {
    Tensor out = Tensor::zeros(logits.size());
    kern.softmax_row(logits.data().data(), logits.size(), out.data().data());
    return out;
  }
  Tensor out = Tensor::zeros(logits.rows(), logits.cols());
  // Rows are independent; batches below the threshold stay serial so
  // chunk dispatch never dominates tiny softmaxes. Either path produces
  // identical bits per row.
  constexpr std::size_t kParallelMinRows = 64;
  auto run_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      kern.softmax_row(logits.row(i).data(), logits.cols(),
                       out.row(i).data());
    }
  };
  if (logits.rows() >= kParallelMinRows) {
    util::parallel_for_ranges(logits.rows(), run_rows);
  } else {
    run_rows(0, logits.rows());
  }
  return out;
}

Tensor log_softmax(const Tensor& logits) {
  TAGLETS_CHECK(logits.is_matrix() || logits.is_vector(),
                "log_softmax: bad rank");
  Tensor out = logits;
  const std::size_t rows = logits.is_matrix() ? logits.rows() : 1;
  const std::size_t cols = logits.is_matrix() ? logits.cols() : logits.size();
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = out.data().data() + i * cols;
    const float mx = *std::max_element(row, row + cols);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) sum += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (std::size_t j = 0; j < cols; ++j) row[j] -= lse;
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  std::vector<std::size_t> out;
  if (a.is_vector()) {
    out.push_back(argmax(a.data()));
    return out;
  }
  out.reserve(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) out.push_back(argmax(a.row(i)));
  return out;
}

std::size_t argmax(std::span<const float> a) {
  TAGLETS_CHECK(!a.empty(), "argmax: empty");
  return static_cast<std::size_t>(
      std::max_element(a.begin(), a.end()) - a.begin());
}

std::vector<float> max_rows(const Tensor& a) {
  TAGLETS_CHECK(a.is_matrix(), "max_rows: matrix required");
  std::vector<float> out;
  out.reserve(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    out.push_back(*std::max_element(row.begin(), row.end()));
  }
  return out;
}

void normalize_rows(Tensor& a) {
  if (a.is_vector()) {
    const float n = l2_norm(a.data());
    if (n > 0.0f) {
      for (float& x : a.data()) x /= n;
    }
    return;
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    const float n = l2_norm(row);
    if (n > 0.0f) {
      for (float& x : row) x /= n;
    }
  }
}

std::vector<std::size_t> top_k_indices(std::span<const float> values,
                                       std::size_t k) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace taglets::tensor
