// NEON backend (compile-time selected on ARM — every AArch64 core has
// NEON, so there is no runtime probe). Float kernels use explicit
// vmulq + vaddq, never vmlaq/vfmaq (which fuse on AArch64 and would
// round differently than the scalar backend). Kernels that would not
// gain from 128-bit lanes here (gemm_nt_row's double accumulation,
// softmax_row's scalar exp/sum) reuse the scalar backend's entries, so
// the determinism contract holds trivially for them.
#include <cstddef>
#include <cstdint>

#include "tensor/backend.hpp"

#if defined(__ARM_NEON)

#include <arm_neon.h>

namespace taglets::tensor::backend {

namespace {

void gemm_rowblock(const float* arow, std::size_t k0, std::size_t k1,
                   const float* b, std::size_t ldb, std::size_t n,
                   float* crow) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    float32x4_t c0 = vld1q_f32(crow + j);
    float32x4_t c1 = vld1q_f32(crow + j + 4);
    for (std::size_t p = k0; p < k1; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // zero-skip contract: see backend.hpp
      const float32x4_t va = vdupq_n_f32(av);
      const float* brow = b + p * ldb + j;
      c0 = vaddq_f32(c0, vmulq_f32(va, vld1q_f32(brow)));
      c1 = vaddq_f32(c1, vmulq_f32(va, vld1q_f32(brow + 4)));
    }
    vst1q_f32(crow + j, c0);
    vst1q_f32(crow + j + 4, c1);
  }
  if (j < n) {
    for (std::size_t p = k0; p < k1; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (std::size_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
    }
  }
}

void gemm_rowblock2(const float* arow0, const float* arow1, std::size_t k0,
                    std::size_t k1, const float* b, std::size_t ldb,
                    std::size_t n, float* crow0, float* crow1) {
  gemm_rowblock(arow0, k0, k1, b, ldb, n, crow0);
  gemm_rowblock(arow1, k0, k1, b, ldb, n, crow1);
}

void axpy(std::size_t n, float a, const float* x, float* y) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i,
              vaddq_f32(vld1q_f32(y + i), vmulq_f32(va, vld1q_f32(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ew_add(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void ew_sub(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vsubq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void ew_mul(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void ew_scale(std::size_t n, float a, float* y) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

void axpy_q8(std::size_t n, float a, const std::int8_t* q,
             std::int32_t zero_point, float* y) {
  const float32x4_t va = vdupq_n_f32(a);
  const int32x4_t vzp = vdupq_n_s32(zero_point);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const int16x8_t w = vmovl_s8(vld1_s8(q + j));
    const int32x4_t lo = vsubq_s32(vmovl_s16(vget_low_s16(w)), vzp);
    const int32x4_t hi = vsubq_s32(vmovl_s16(vget_high_s16(w)), vzp);
    vst1q_f32(y + j, vaddq_f32(vld1q_f32(y + j),
                               vmulq_f32(va, vcvtq_f32_s32(lo))));
    vst1q_f32(y + j + 4, vaddq_f32(vld1q_f32(y + j + 4),
                                   vmulq_f32(va, vcvtq_f32_s32(hi))));
  }
  for (; j < n; ++j) {
    y[j] += a * static_cast<float>(static_cast<std::int32_t>(q[j]) -
                                   zero_point);
  }
}

}  // namespace

namespace detail {

const Kernels* neon_kernels() {
  const Kernels& s = scalar_kernels();
  static const Kernels k{
      "neon",  gemm_rowblock, gemm_rowblock2, s.gemm_nt_row, axpy,
      axpy_q8, ew_add,        ew_sub,         ew_mul,        ew_scale,
      s.softmax_row,
  };
  return &k;
}

}  // namespace detail

}  // namespace taglets::tensor::backend

#else  // no NEON on this architecture

namespace taglets::tensor::backend::detail {

const Kernels* neon_kernels() { return nullptr; }

}  // namespace taglets::tensor::backend::detail

#endif
