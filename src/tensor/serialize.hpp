// Binary (de)serialization of tensors. Used to persist the servable end
// model ("automatically distill to a servable model" — design principle 3)
// and to cache pretrained backbones across bench runs.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "tensor/tensor.hpp"

namespace taglets::tensor {

/// Writes a tensor as: magic("TGT1"), rank (u32), rows (u64), cols (u64),
/// then raw little-endian float32 payload.
void write_tensor(std::ostream& out, const Tensor& t);

/// Reads a tensor written by write_tensor; throws std::runtime_error on
/// malformed input.
Tensor read_tensor(std::istream& in);

/// Convenience file round-trips.
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

}  // namespace taglets::tensor
