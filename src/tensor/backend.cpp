#include "tensor/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace taglets::tensor::backend {

namespace {

// nullptr = not yet resolved; resolution is idempotent, so a benign
// race between first callers just resolves twice to the same table.
std::atomic<const Kernels*> g_active{nullptr};

const Kernels* best_available() {
  if (const Kernels* k = detail::avx2_kernels()) return k;
  if (const Kernels* k = detail::neon_kernels()) return k;
  return &detail::scalar_kernels();
}

const Kernels* resolve_from_env() {
  const char* env = std::getenv("TAGLETS_TENSOR_BACKEND");
  if (env == nullptr || *env == '\0') return best_available();
  const std::string want(env);
  if (want == "native" || want == "auto") return best_available();
  if (const Kernels* k = lookup(want)) return k;
  // An explicitly requested backend that is missing here is a
  // deployment error; falling back silently would hide it.
  throw std::runtime_error("TAGLETS_TENSOR_BACKEND=" + want +
                           " is unknown or unavailable on this machine "
                           "(use: scalar | avx2 | neon | native)");
}

}  // namespace

const Kernels& active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolve_from_env();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

std::string active_name() { return active().name; }

std::vector<std::string> available() {
  std::vector<std::string> names{detail::scalar_kernels().name};
  if (const Kernels* k = detail::avx2_kernels()) names.emplace_back(k->name);
  if (const Kernels* k = detail::neon_kernels()) names.emplace_back(k->name);
  return names;
}

const Kernels* lookup(const std::string& name) {
  if (name == detail::scalar_kernels().name) return &detail::scalar_kernels();
  if (const Kernels* k = detail::avx2_kernels(); k && name == k->name) {
    return k;
  }
  if (const Kernels* k = detail::neon_kernels(); k && name == k->name) {
    return k;
  }
  return nullptr;
}

const Kernels* exchange_active(const Kernels* kernels) {
  return g_active.exchange(kernels, std::memory_order_acq_rel);
}

}  // namespace taglets::tensor::backend
