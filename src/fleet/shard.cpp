#include "fleet/shard.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

#include "fleet/trace_merge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace taglets::fleet {

using tensor::Tensor;

namespace {

Status to_fleet_status(serve::Status s) {
  switch (s) {
    case serve::Status::kOk: return Status::kOk;
    case serve::Status::kRejected: return Status::kOverloaded;
    case serve::Status::kDeadlineExceeded: return Status::kDeadlineExceeded;
    case serve::Status::kShutdown: return Status::kShutdown;
    case serve::Status::kError: return Status::kError;
  }
  return Status::kError;
}

std::chrono::milliseconds ms(double v) {
  return std::chrono::milliseconds(static_cast<long>(v));
}

/// Waiting for the NEXT frame is idleness, not an I/O in progress, so
/// the reader's recv budget is hours, not io_timeout_ms — an idle but
/// healthy client keeps its connection. stop() wakes blocked readers
/// via shutdown_rw.
constexpr std::chrono::milliseconds kIdleRecvBudget{3'600'000};

}  // namespace

double int8_disagreement_fraction(ensemble::ServableModel& model,
                                  std::size_t probe_rows) {
  TAGLETS_CHECK_NE(probe_rows, 0, "int8 probe needs >= 1 row");
  util::Rng rng(20260807);  // fixed: the gate must be deterministic
  Tensor probe = Tensor::zeros(probe_rows, model.model().input_dim());
  for (float& v : probe.data()) v = static_cast<float>(rng.normal());
  model.set_precision(ensemble::Precision::kFloat32);
  const std::vector<std::size_t> base = model.predict_batch(probe);
  model.set_precision(ensemble::Precision::kInt8);
  const std::vector<std::size_t> quant = model.predict_batch(probe);
  std::size_t disagree = 0;
  for (std::size_t i = 0; i < probe_rows; ++i) {
    if (base[i] != quant[i]) ++disagree;
  }
  return static_cast<double>(disagree) / static_cast<double>(probe_rows);
}

void ShardConfig::validate() const {
  if (endpoint.empty()) {
    throw std::invalid_argument("ShardConfig: endpoint must be set");
  }
  if (io_timeout_ms <= 0.0) {
    throw std::invalid_argument("ShardConfig: io_timeout_ms must be > 0");
  }
  if (max_inflight_per_connection == 0) {
    throw std::invalid_argument(
        "ShardConfig: max_inflight_per_connection must be >= 1");
  }
  if (int8_agree_limit < 0.0 || int8_agree_limit > 1.0) {
    throw std::invalid_argument("ShardConfig: int8_agree_limit not in [0,1]");
  }
  if (int8_probe_rows == 0) {
    throw std::invalid_argument("ShardConfig: int8_probe_rows must be >= 1");
  }
  server.validate();
}

/// Per-connection I/O pair: the reader decodes and dispatches frames,
/// the writer resolves pipelined predict futures in FIFO order and
/// sends the responses. Control traffic (ping/reload/stats) is
/// answered inline by the reader under the shared write lock, so a
/// heartbeat never queues behind a slow batch.
struct ShardServer::ConnectionHandler {
  ShardServer* shard = nullptr;
  Connection conn;
  util::Mutex write_mu{"fleet.shard.write", util::lockrank::kFleetWrite};

  struct Pending {
    std::uint64_t id = 0;
    serve::Clock::time_point t0{};
    std::future<serve::Response> future;
  };
  util::Mutex q_mu{"fleet.shard.connq",
                   util::lockrank::kFleetShardConnQueue};
  util::CondVar q_cv;
  std::deque<Pending> q TAGLETS_GUARDED_BY(q_mu);
  bool closing TAGLETS_GUARDED_BY(q_mu) = false;

  /// Writer wait predicate; runs with q_mu held by the CondVar
  /// machinery, which the static analysis cannot see.
  bool writer_wake_ready() const TAGLETS_NO_THREAD_SAFETY_ANALYSIS {
    return closing || !q.empty();
  }

  std::thread reader;
  std::thread writer;
  std::atomic<int> live_threads{2};

  void send(const std::vector<std::uint8_t>& frame) {
    util::MutexLock lock(write_mu);
    conn.send_frame(frame, ms(shard->config_.io_timeout_ms));
  }

  void begin_close() {
    {
      util::MutexLock lock(q_mu);
      closing = true;
    }
    q_cv.notify_all();
    conn.shutdown_rw();
  }

  bool finished() const { return live_threads.load(std::memory_order_acquire) == 0; }

  void reader_loop();
  void writer_loop();
  void dispatch(const std::vector<std::uint8_t>& frame);
};

void ShardServer::ConnectionHandler::reader_loop() {
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = conn.recv_frame(kIdleRecvBudget);
    } catch (const SocketError&) {
      break;  // broken/killed peer, or shutdown_rw from stop()
    }
    if (!frame) break;  // clean EOF
    try {
      dispatch(*frame);
    } catch (const std::exception&) {
      break;  // malformed frame or dead peer: drop the connection
    }
    if (shard->stopping_.load(std::memory_order_acquire)) break;
  }
  begin_close();
  live_threads.fetch_sub(1, std::memory_order_acq_rel);
}

void ShardServer::ConnectionHandler::dispatch(
    const std::vector<std::uint8_t>& frame) {
  switch (peek_type(frame)) {
    case MsgType::kPredictRequest: {
      const PredictRequest req = decode_predict_request(frame);
      shard->predicts_total_->add();
      PredictResponse early;
      early.id = req.id;
      {
        util::MutexLock lock(q_mu);
        if (q.size() >= shard->config_.max_inflight_per_connection) {
          early.status = Status::kOverloaded;
          early.error = "per-connection inflight window full";
        }
      }
      if (early.status != Status::kOverloaded &&
          req.features.size() != shard->input_dim_) {
        early.status = Status::kError;
        early.error = "input dim " + std::to_string(req.features.size()) +
                      " != model dim " + std::to_string(shard->input_dim_);
      }
      if (early.status == Status::kOverloaded ||
          !early.error.empty()) {
        if (early.status == Status::kOverloaded) shard->overloaded_total_->add();
        send(encode(early));
        return;
      }
      Tensor input = Tensor::zeros(req.features.size());
      std::memcpy(input.data().data(), req.features.data(),
                  req.features.size() * sizeof(float));
      Pending pending;
      pending.id = req.id;
      pending.t0 = serve::Clock::now();
      {
        // Shared lock: the pointer read and the enqueue are atomic
        // with respect to a reload's pointer flip, so a request can
        // never land in a queue that is already being drained.
        util::ReaderMutexLock swap(shard->swap_mu_);
        pending.future = shard->active_->submit(std::move(input),
                                                req.deadline_ms, req.trace_id);
      }
      {
        util::MutexLock lock(q_mu);
        q.push_back(std::move(pending));
      }
      q_cv.notify_one();
      return;
    }
    case MsgType::kPing: {
      const Ping ping = decode_ping(frame);
      send(encode(shard->make_pong(ping.seq)));
      return;
    }
    case MsgType::kReloadRequest: {
      const ReloadRequest req = decode_reload_request(frame);
      const ReloadOutcome out = shard->reload(req.path);
      ReloadResponse resp;
      resp.ok = out.ok ? 1 : 0;
      resp.model_version = out.model_version;
      resp.message = out.message;
      send(encode(resp));
      return;
    }
    case MsgType::kStatsRequest: {
      StatsResponse resp;
      resp.json = shard->active()->stats().json();
      send(encode(resp));
      return;
    }
    case MsgType::kTraceExportRequest: {
      // now_us is stamped inside build_local_process_trace(), between
      // the collector's send and receive — the midpoint assumption the
      // clock-offset estimate rides on.
      TraceExportResponse resp;
      resp.processes.push_back(build_local_process_trace());
      send(encode(resp));
      return;
    }
    case MsgType::kMetricsRequest: {
      MetricsResponse resp;
      obs::MetricsSnapshot snap =
          obs::MetricsRegistry::global().snapshot(obs::process_name());
      snap.meta.emplace_back("endpoint", shard->config_.endpoint);
      snap.meta.emplace_back("model_version",
                             std::to_string(shard->model_version()));
      resp.snapshots.push_back(std::move(snap));
      send(encode(resp));
      return;
    }
    default:
      throw ProtocolError("unexpected message type on a shard connection");
  }
}

void ShardServer::ConnectionHandler::writer_loop() {
  for (;;) {
    Pending pending;
    {
      util::MutexLock lock(q_mu);
      q_cv.wait(lock, [this] { return writer_wake_ready(); });
      if (q.empty()) break;  // closing and fully drained
      pending = std::move(q.front());
      q.pop_front();
    }
    // Resolves exactly once whatever happens to the server (drain,
    // reload adoption, shutdown) — the serve layer's contract.
    const serve::Response r = pending.future.get();
    PredictResponse resp;
    resp.id = pending.id;
    resp.status = to_fleet_status(r.status);
    resp.label = static_cast<std::uint32_t>(r.label);
    resp.confidence = r.confidence;
    resp.class_name = r.class_name;
    resp.error = r.error;
    resp.shard_ms = r.total_ms;
    resp.queue_wait_ms = r.queue_ms;
    resp.compute_ms = std::max(0.0, r.total_ms - r.queue_ms);
    try {
      send(encode(resp));
    } catch (const SocketError&) {
      break;  // peer gone; remaining futures resolve into the void
    }
  }
  live_threads.fetch_sub(1, std::memory_order_acq_rel);
}

// ------------------------------------------------------------ ShardServer

ShardServer::ShardServer(ensemble::ServableModel model, ShardConfig config)
    : config_((config.validate(), std::move(config))) {
  input_dim_ = model.model().input_dim();
  active_ = std::make_shared<serve::Server>(model, config_.server);
  auto& registry = obs::MetricsRegistry::global();
  predicts_total_ = &registry.counter("fleet.shard.predicts_total");
  overloaded_total_ = &registry.counter("fleet.shard.overloaded_total");
  reloads_total_ = &registry.counter("fleet.shard.reloads_total");
  reload_failures_total_ =
      &registry.counter("fleet.shard.reload_failures_total");
  model_version_gauge_ = &registry.gauge("fleet.shard.model_version");
  model_version_gauge_->set(1.0);
}

ShardServer::~ShardServer() { stop(); }

std::shared_ptr<serve::Server> ShardServer::active() const {
  util::ReaderMutexLock lock(swap_mu_);
  return active_;
}

void ShardServer::start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ShardServer::start: already stopped");
  }
  active()->start();
  listener_ = std::make_unique<Listener>(Endpoint::parse(config_.endpoint));
  accept_thread_ = std::thread([this] { accept_loop(); });
  running_.store(true, std::memory_order_release);
}

void ShardServer::stop() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  running_.store(false, std::memory_order_release);
  if (listener_) listener_->shutdown();
  // The accept and handler threads take handlers_mu_/q_mu/swap_mu_ and,
  // on the reload path, reload_mu_ — all ranked above the lifecycle
  // lock held here, so joining them cannot close a cycle.
  util::check_join_safe(util::lockrank::kFleetShardReload,
                        "ShardServer::stop");
  if (accept_thread_.joinable()) accept_thread_.join();
  // Resolve every admitted request (queued ones fail with kShutdown)
  // *before* tearing down connections, so writers can still deliver
  // the terminal responses to connected peers.
  active()->stop();
  std::vector<std::unique_ptr<ConnectionHandler>> handlers;
  {
    util::MutexLock lock(handlers_mu_);
    handlers.swap(handlers_);
  }
  for (auto& h : handlers) h->begin_close();
  for (auto& h : handlers) {
    if (h->reader.joinable()) h->reader.join();
    if (h->writer.joinable()) h->writer.join();
  }
  listener_.reset();
}

void ShardServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Connection> peer;
    try {
      peer = listener_->accept(std::chrono::milliseconds(200));
    } catch (const SocketError&) {
      break;
    }
    if (!peer) {
      reap_finished_handlers();
      continue;
    }
    auto handler = std::make_unique<ConnectionHandler>();
    handler->shard = this;
    handler->conn = std::move(*peer);
    ConnectionHandler* raw = handler.get();
    handler->reader = std::thread([raw] { raw->reader_loop(); });
    handler->writer = std::thread([raw] { raw->writer_loop(); });
    {
      util::MutexLock lock(handlers_mu_);
      handlers_.push_back(std::move(handler));
    }
    reap_finished_handlers();
  }
}

void ShardServer::reap_finished_handlers() {
  // Move finished handlers out first so the joins below run without
  // handlers_mu_ held: a handler's reader can take reload_mu_ (rank
  // below handlers_mu_), so joining under the lock would be exactly
  // the join-under-lock shape the order checker rejects — even though
  // finished() means these particular threads have already exited.
  std::vector<std::unique_ptr<ConnectionHandler>> finished;
  {
    util::MutexLock lock(handlers_mu_);
    for (auto it = handlers_.begin(); it != handlers_.end();) {
      if ((*it)->finished()) {
        finished.push_back(std::move(*it));
        it = handlers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  util::check_join_safe(util::lockrank::kFleetShardReload,
                        "ShardServer::reap_finished_handlers");
  for (auto& h : finished) {
    if (h->reader.joinable()) h->reader.join();
    if (h->writer.joinable()) h->writer.join();
  }
}

Pong ShardServer::make_pong(std::uint64_t seq) const {
  Pong pong;
  pong.seq = seq;
  pong.model_version = model_version();
  const std::shared_ptr<serve::Server> srv = active();
  pong.queue_depth = static_cast<std::uint32_t>(srv->queue_depth());
  pong.queue_capacity =
      static_cast<std::uint32_t>(srv->config().queue_capacity);
  const serve::ServerStats::Snapshot s = srv->stats().snapshot();
  pong.requests_ok = s.completed;
  pong.requests_rejected = s.rejected_total();
  pong.requests_deadline_missed = s.deadline_missed;
  pong.draining = draining_.load(std::memory_order_acquire) ? 1 : 0;
  return pong;
}

serve::ServerStats::Snapshot ShardServer::stats_snapshot() const {
  return active()->stats().snapshot();
}

ReloadOutcome ShardServer::reload(const std::string& path) {
  util::MutexLock serialize(reload_mu_);
  ReloadOutcome out;
  out.model_version = model_version();
  try {
    // 1. Load and validate off to the side; the old model serves on.
    ensemble::ServableModel fresh = ensemble::ServableModel::load(path);
    if (fresh.model().input_dim() != input_dim_) {
      reload_failures_total_->add();
      out.message = "reload rejected: input_dim " +
                    std::to_string(fresh.model().input_dim()) +
                    " != serving dim " + std::to_string(input_dim_);
      return out;
    }
    if (fresh.precision() == ensemble::Precision::kInt8) {
      const double disagree =
          int8_disagreement_fraction(fresh, config_.int8_probe_rows);
      if (disagree > config_.int8_agree_limit) {
        reload_failures_total_->add();
        out.message = "reload rejected: int8 agreement gate failed (" +
                      std::to_string(disagree) + " > " +
                      std::to_string(config_.int8_agree_limit) + ")";
        return out;
      }
    }
    // 2. Start the replacement beside the old server.
    auto next = std::make_shared<serve::Server>(fresh, config_.server);
    next->start();
    // 3. Flip. New submissions land on the new server from here on.
    draining_.store(true, std::memory_order_release);
    std::shared_ptr<serve::Server> old;
    {
      util::WriterMutexLock swap(swap_mu_);
      old = active_;
      active_ = next;
    }
    // 4. In-flight batches finish on the old model; still-queued
    // requests transfer to the new server with promises intact.
    // adopt() bypasses the replacement queue's capacity bound: new
    // submissions landed there since the flip, and already-admitted
    // work must not be re-rejected because of them.
    std::vector<serve::Request> pending = old->close_and_drain();
    for (serve::Request& request : pending) {
      next->adopt(std::move(request));
    }
    old.reset();
    draining_.store(false, std::memory_order_release);
    const std::uint64_t version =
        model_version_.fetch_add(1, std::memory_order_acq_rel) + 1;
    model_version_gauge_->set(static_cast<double>(version));
    reloads_total_->add();
    out.ok = true;
    out.model_version = version;
    return out;
  } catch (const std::exception& e) {
    draining_.store(false, std::memory_order_release);
    reload_failures_total_->add();
    out.message = e.what();
    return out;
  }
}

}  // namespace taglets::fleet
