// Cross-process trace collection and merge (docs/OBSERVABILITY.md,
// "Fleet observability"). Each fleet process answers TraceExportRequest
// with its tracer buffer as a ProcessTrace; the collector (frontend, or
// a client via --fleet-trace-dump) estimates each producer's clock
// offset from the export round-trip itself — ping-RTT-midpoint: the
// producer stamps its tracer clock while answering, and the collector
// assumes that instant fell halfway between sending the request and
// receiving the reply — then renders every process into one Chrome
// trace-event JSON with per-process lanes, so a single request's
// enqueue -> route -> shard-compute -> respond spans join end to end.
#pragma once

#include <string>
#include <vector>

#include "fleet/protocol.hpp"

namespace taglets::fleet {

/// This process's tracer buffer as a wire-ready ProcessTrace: real pid,
/// obs::process_name(), tracer-clock "now", dropped count. Spans are
/// sorted by start time and the earliest are discarded first if the
/// encoded frame would exceed the protocol's frame cap (discards are
/// added to `dropped` — truncation is never silent).
ProcessTrace build_local_process_trace();

/// Ping-RTT-midpoint clock-offset estimate: the collector sent the
/// export at local tracer time `t0_us`, received the reply at `t1_us`,
/// and the producer reported its tracer clock read `remote_now_us`
/// while answering. Returns the offset to ADD to the producer's
/// timestamps to land on the collector's epoch; the error is bounded by
/// half the round-trip time.
double estimate_clock_offset_us(double t0_us, double t1_us,
                                double remote_now_us);

/// Merge per-process traces into one Chrome trace-event JSON document
/// ({"traceEvents":[...]}, loadable in chrome://tracing and Perfetto):
/// a process_name metadata event per process plus every span as an "X"
/// complete event under its real pid, timestamps shifted by each
/// process's align_offset_us onto the collector's epoch.
std::string render_chrome_trace(const std::vector<ProcessTrace>& processes);

}  // namespace taglets::fleet
