#include "fleet/trace_merge.hpp"

#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace taglets::fleet {

namespace {

/// Budget for one ProcessTrace's encoded spans, comfortably inside the
/// 16 MiB frame cap with headroom for the envelope and sibling traces.
constexpr std::size_t kSpanBytesBudget = 12u << 20;

std::size_t encoded_span_bytes(const WireSpan& span) {
  // str = u32 + bytes; fixed fields: tid(4) ts(8) dur(8) depth(4)
  // attr-count(4).
  std::size_t n = 4 + span.name.size() + 4 + 8 + 8 + 4 + 4;
  for (const auto& [key, value] : span.attrs) {
    n += 4 + key.size() + 4 + value.size();
  }
  return n;
}

}  // namespace

ProcessTrace build_local_process_trace() {
  obs::Tracer& tracer = obs::Tracer::global();
  ProcessTrace proc;
  proc.pid = static_cast<std::uint32_t>(::getpid());
  proc.name = obs::process_name();
  proc.dropped = tracer.dropped();

  std::vector<obs::TraceEvent> events = tracer.snapshot();
  std::sort(events.begin(), events.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  proc.spans.reserve(events.size());
  for (obs::TraceEvent& e : events) {
    WireSpan span;
    span.name = std::move(e.name);
    span.tid = e.tid;
    span.ts_us = e.ts_us;
    span.dur_us = e.dur_us;
    span.depth = e.depth;
    span.attrs = std::move(e.attrs);
    proc.spans.push_back(std::move(span));
  }

  // Enforce the frame budget by discarding the *oldest* spans first:
  // under sustained load the recent window is what debugging wants.
  std::size_t total = 0;
  for (const WireSpan& span : proc.spans) total += encoded_span_bytes(span);
  std::size_t cut = 0;
  while (cut < proc.spans.size() && total > kSpanBytesBudget) {
    total -= encoded_span_bytes(proc.spans[cut]);
    ++cut;
  }
  if (cut > 0) {
    proc.dropped += cut;
    proc.spans.erase(proc.spans.begin(),
                     proc.spans.begin() + static_cast<std::ptrdiff_t>(cut));
  }

  // Stamp "now" last so it postdates every span we kept.
  proc.now_us = tracer.now_us();
  return proc;
}

double estimate_clock_offset_us(double t0_us, double t1_us,
                                double remote_now_us) {
  return (t0_us + t1_us) / 2.0 - remote_now_us;
}

std::string render_chrome_trace(const std::vector<ProcessTrace>& processes) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ProcessTrace& proc : processes) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << proc.pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << obs::json_escape(proc.name)
       << "\"}}";
    for (const WireSpan& span : proc.spans) {
      os << ",{\"name\":\"" << obs::json_escape(span.name)
         << "\",\"cat\":\"taglets\",\"ph\":\"X\",\"pid\":" << proc.pid
         << ",\"tid\":" << span.tid
         << ",\"ts\":" << obs::json_number(span.ts_us + proc.align_offset_us)
         << ",\"dur\":" << obs::json_number(span.dur_us) << ",\"args\":{";
      for (std::size_t a = 0; a < span.attrs.size(); ++a) {
        if (a > 0) os << ",";
        os << "\"" << obs::json_escape(span.attrs[a].first) << "\":\""
           << obs::json_escape(span.attrs[a].second) << "\"";
      }
      os << "}}";
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace taglets::fleet
