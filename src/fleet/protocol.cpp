#include "fleet/protocol.hpp"

#include <cstring>

namespace taglets::fleet {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kUnavailable: return "unavailable";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kError: return "error";
    case Status::kShutdown: return "shutdown";
  }
  return "unknown";
}

// ----------------------------------------------------------- FrameWriter

void FrameWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void FrameWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void FrameWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void FrameWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void FrameWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void FrameWriter::str(const std::string& s) {
  if (s.size() > kMaxFrameBytes) throw ProtocolError("string too large");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void FrameWriter::floats(const std::vector<float>& v) {
  if (v.size() > kMaxFrameBytes / sizeof(float)) {
    throw ProtocolError("float array too large");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  const std::size_t offset = buf_.size();
  buf_.resize(offset + v.size() * sizeof(float));
  if (!v.empty()) {
    std::memcpy(buf_.data() + offset, v.data(), v.size() * sizeof(float));
  }
}

// ----------------------------------------------------------- FrameReader

void FrameReader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) throw ProtocolError("truncated frame");
}

std::uint8_t FrameReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t FrameReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t FrameReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

float FrameReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double FrameReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string FrameReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> FrameReader::floats() {
  const std::uint32_t n = u32();
  need(static_cast<std::size_t>(n) * sizeof(float));
  std::vector<float> v(n);
  if (n != 0) {
    std::memcpy(v.data(), buf_.data() + pos_,
                static_cast<std::size_t>(n) * sizeof(float));
  }
  pos_ += static_cast<std::size_t>(n) * sizeof(float);
  return v;
}

void FrameReader::expect_end() const {
  if (remaining() != 0) throw ProtocolError("trailing bytes in frame");
}

// ------------------------------------------------------------- messages

MsgType peek_type(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) throw ProtocolError("empty frame");
  const std::uint8_t t = payload.front();
  if (t < static_cast<std::uint8_t>(MsgType::kPredictRequest) ||
      t > static_cast<std::uint8_t>(MsgType::kStatsResponse)) {
    throw ProtocolError("unknown message type " + std::to_string(t));
  }
  return static_cast<MsgType>(t);
}

namespace {

/// Consumes and checks the type byte at the head of a payload.
FrameReader open(const std::vector<std::uint8_t>& payload, MsgType expected) {
  const MsgType got = peek_type(payload);
  if (got != expected) {
    throw ProtocolError("expected message type " +
                        std::to_string(static_cast<int>(expected)) + ", got " +
                        std::to_string(static_cast<int>(got)));
  }
  FrameReader reader(payload);
  reader.u8();  // type byte
  return reader;
}

Status decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Status::kShutdown)) {
    throw ProtocolError("unknown status " + std::to_string(raw));
  }
  return static_cast<Status>(raw);
}

}  // namespace

std::vector<std::uint8_t> encode(const PredictRequest& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPredictRequest));
  w.u64(m.id);
  w.u64(m.routing_key);
  w.f64(m.deadline_ms);
  w.floats(m.features);
  return w.take();
}

PredictRequest decode_predict_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPredictRequest);
  PredictRequest m;
  m.id = r.u64();
  m.routing_key = r.u64();
  m.deadline_ms = r.f64();
  m.features = r.floats();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const PredictResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPredictResponse));
  w.u64(m.id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u32(m.label);
  w.f32(m.confidence);
  w.str(m.class_name);
  w.str(m.error);
  w.f64(m.shard_ms);
  return w.take();
}

PredictResponse decode_predict_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPredictResponse);
  PredictResponse m;
  m.id = r.u64();
  m.status = decode_status(r.u8());
  m.label = r.u32();
  m.confidence = r.f32();
  m.class_name = r.str();
  m.error = r.str();
  m.shard_ms = r.f64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const Ping& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPing));
  w.u64(m.seq);
  return w.take();
}

Ping decode_ping(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPing);
  Ping m;
  m.seq = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const Pong& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPong));
  w.u64(m.seq);
  w.u64(m.model_version);
  w.u32(m.queue_depth);
  w.u32(m.queue_capacity);
  w.u64(m.requests_ok);
  w.u64(m.requests_rejected);
  w.u64(m.requests_deadline_missed);
  w.u8(m.draining);
  return w.take();
}

Pong decode_pong(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPong);
  Pong m;
  m.seq = r.u64();
  m.model_version = r.u64();
  m.queue_depth = r.u32();
  m.queue_capacity = r.u32();
  m.requests_ok = r.u64();
  m.requests_rejected = r.u64();
  m.requests_deadline_missed = r.u64();
  m.draining = r.u8();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const ReloadRequest& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReloadRequest));
  w.str(m.path);
  return w.take();
}

ReloadRequest decode_reload_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kReloadRequest);
  ReloadRequest m;
  m.path = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const ReloadResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReloadResponse));
  w.u8(m.ok);
  w.u64(m.model_version);
  w.str(m.message);
  return w.take();
}

ReloadResponse decode_reload_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kReloadResponse);
  ReloadResponse m;
  m.ok = r.u8();
  m.model_version = r.u64();
  m.message = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const StatsRequest&) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
  return w.take();
}

StatsRequest decode_stats_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kStatsRequest);
  r.expect_end();
  return StatsRequest{};
}

std::vector<std::uint8_t> encode(const StatsResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsResponse));
  w.str(m.json);
  return w.take();
}

StatsResponse decode_stats_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kStatsResponse);
  StatsResponse m;
  m.json = r.str();
  r.expect_end();
  return m;
}

}  // namespace taglets::fleet
