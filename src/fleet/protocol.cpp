#include "fleet/protocol.hpp"

#include <cstring>

namespace taglets::fleet {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kUnavailable: return "unavailable";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kError: return "error";
    case Status::kShutdown: return "shutdown";
  }
  return "unknown";
}

// ----------------------------------------------------------- FrameWriter

void FrameWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void FrameWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void FrameWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void FrameWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void FrameWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void FrameWriter::str(const std::string& s) {
  if (s.size() > kMaxFrameBytes) throw ProtocolError("string too large");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void FrameWriter::floats(const std::vector<float>& v) {
  if (v.size() > kMaxFrameBytes / sizeof(float)) {
    throw ProtocolError("float array too large");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  const std::size_t offset = buf_.size();
  buf_.resize(offset + v.size() * sizeof(float));
  if (!v.empty()) {
    std::memcpy(buf_.data() + offset, v.data(), v.size() * sizeof(float));
  }
}

// ----------------------------------------------------------- FrameReader

void FrameReader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) throw ProtocolError("truncated frame");
}

std::uint8_t FrameReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t FrameReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t FrameReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

float FrameReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double FrameReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string FrameReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> FrameReader::floats() {
  const std::uint32_t n = u32();
  need(static_cast<std::size_t>(n) * sizeof(float));
  std::vector<float> v(n);
  if (n != 0) {
    std::memcpy(v.data(), buf_.data() + pos_,
                static_cast<std::size_t>(n) * sizeof(float));
  }
  pos_ += static_cast<std::size_t>(n) * sizeof(float);
  return v;
}

void FrameReader::expect_end() const {
  if (remaining() != 0) throw ProtocolError("trailing bytes in frame");
}

// ------------------------------------------------------------- messages

MsgType peek_type(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) throw ProtocolError("empty frame");
  const std::uint8_t t = payload.front();
  if (t < static_cast<std::uint8_t>(MsgType::kPredictRequest) ||
      t > static_cast<std::uint8_t>(MsgType::kMetricsResponse)) {
    throw ProtocolError("unknown message type " + std::to_string(t));
  }
  return static_cast<MsgType>(t);
}

namespace {

/// Consumes and checks the type byte at the head of a payload.
FrameReader open(const std::vector<std::uint8_t>& payload, MsgType expected) {
  const MsgType got = peek_type(payload);
  if (got != expected) {
    throw ProtocolError("expected message type " +
                        std::to_string(static_cast<int>(expected)) + ", got " +
                        std::to_string(static_cast<int>(got)));
  }
  FrameReader reader(payload);
  reader.u8();  // type byte
  return reader;
}

Status decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Status::kShutdown)) {
    throw ProtocolError("unknown status " + std::to_string(raw));
  }
  return static_cast<Status>(raw);
}

}  // namespace

std::vector<std::uint8_t> encode(const PredictRequest& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPredictRequest));
  w.u64(m.id);
  w.u64(m.routing_key);
  w.f64(m.deadline_ms);
  w.u64(m.trace_id);
  w.u64(m.parent_span);
  w.floats(m.features);
  return w.take();
}

PredictRequest decode_predict_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPredictRequest);
  PredictRequest m;
  m.id = r.u64();
  m.routing_key = r.u64();
  m.deadline_ms = r.f64();
  m.trace_id = r.u64();
  m.parent_span = r.u64();
  m.features = r.floats();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const PredictResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPredictResponse));
  w.u64(m.id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u32(m.label);
  w.f32(m.confidence);
  w.str(m.class_name);
  w.str(m.error);
  w.f64(m.shard_ms);
  w.f64(m.queue_wait_ms);
  w.f64(m.compute_ms);
  return w.take();
}

PredictResponse decode_predict_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPredictResponse);
  PredictResponse m;
  m.id = r.u64();
  m.status = decode_status(r.u8());
  m.label = r.u32();
  m.confidence = r.f32();
  m.class_name = r.str();
  m.error = r.str();
  m.shard_ms = r.f64();
  m.queue_wait_ms = r.f64();
  m.compute_ms = r.f64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const Ping& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPing));
  w.u64(m.seq);
  return w.take();
}

Ping decode_ping(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPing);
  Ping m;
  m.seq = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const Pong& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPong));
  w.u64(m.seq);
  w.u64(m.model_version);
  w.u32(m.queue_depth);
  w.u32(m.queue_capacity);
  w.u64(m.requests_ok);
  w.u64(m.requests_rejected);
  w.u64(m.requests_deadline_missed);
  w.u8(m.draining);
  return w.take();
}

Pong decode_pong(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kPong);
  Pong m;
  m.seq = r.u64();
  m.model_version = r.u64();
  m.queue_depth = r.u32();
  m.queue_capacity = r.u32();
  m.requests_ok = r.u64();
  m.requests_rejected = r.u64();
  m.requests_deadline_missed = r.u64();
  m.draining = r.u8();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const ReloadRequest& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReloadRequest));
  w.str(m.path);
  return w.take();
}

ReloadRequest decode_reload_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kReloadRequest);
  ReloadRequest m;
  m.path = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const ReloadResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReloadResponse));
  w.u8(m.ok);
  w.u64(m.model_version);
  w.str(m.message);
  return w.take();
}

ReloadResponse decode_reload_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kReloadResponse);
  ReloadResponse m;
  m.ok = r.u8();
  m.model_version = r.u64();
  m.message = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const StatsRequest&) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
  return w.take();
}

StatsRequest decode_stats_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kStatsRequest);
  r.expect_end();
  return StatsRequest{};
}

std::vector<std::uint8_t> encode(const StatsResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsResponse));
  w.str(m.json);
  return w.take();
}

StatsResponse decode_stats_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kStatsResponse);
  StatsResponse m;
  m.json = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const TraceExportRequest&) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceExportRequest));
  return w.take();
}

TraceExportRequest decode_trace_export_request(
    const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kTraceExportRequest);
  r.expect_end();
  return TraceExportRequest{};
}

std::vector<std::uint8_t> encode(const TraceExportResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceExportResponse));
  w.u32(static_cast<std::uint32_t>(m.processes.size()));
  for (const ProcessTrace& proc : m.processes) {
    w.u32(proc.pid);
    w.str(proc.name);
    w.f64(proc.now_us);
    w.f64(proc.align_offset_us);
    w.u64(proc.dropped);
    w.u32(static_cast<std::uint32_t>(proc.spans.size()));
    for (const WireSpan& span : proc.spans) {
      w.str(span.name);
      w.u32(span.tid);
      w.f64(span.ts_us);
      w.f64(span.dur_us);
      w.u32(span.depth);
      w.u32(static_cast<std::uint32_t>(span.attrs.size()));
      for (const auto& [key, value] : span.attrs) {
        w.str(key);
        w.str(value);
      }
    }
  }
  return w.take();
}

TraceExportResponse decode_trace_export_response(
    const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kTraceExportResponse);
  TraceExportResponse m;
  // Counts come off the wire, so containers grow via push_back — the
  // per-read underflow checks bound a hostile count before it can
  // drive a huge allocation.
  const std::uint32_t n_procs = r.u32();
  for (std::uint32_t i = 0; i < n_procs; ++i) {
    ProcessTrace proc;
    proc.pid = r.u32();
    proc.name = r.str();
    proc.now_us = r.f64();
    proc.align_offset_us = r.f64();
    proc.dropped = r.u64();
    const std::uint32_t n_spans = r.u32();
    for (std::uint32_t s = 0; s < n_spans; ++s) {
      WireSpan span;
      span.name = r.str();
      span.tid = r.u32();
      span.ts_us = r.f64();
      span.dur_us = r.f64();
      span.depth = r.u32();
      const std::uint32_t n_attrs = r.u32();
      for (std::uint32_t a = 0; a < n_attrs; ++a) {
        std::string key = r.str();
        std::string value = r.str();
        span.attrs.emplace_back(std::move(key), std::move(value));
      }
      proc.spans.push_back(std::move(span));
    }
    m.processes.push_back(std::move(proc));
  }
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode(const MetricsRequest&) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kMetricsRequest));
  return w.take();
}

MetricsRequest decode_metrics_request(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kMetricsRequest);
  r.expect_end();
  return MetricsRequest{};
}

std::vector<std::uint8_t> encode(const MetricsResponse& m) {
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kMetricsResponse));
  w.u32(static_cast<std::uint32_t>(m.snapshots.size()));
  for (const obs::MetricsSnapshot& snap : m.snapshots) {
    w.str(snap.source);
    w.u32(static_cast<std::uint32_t>(snap.meta.size()));
    for (const auto& [key, value] : snap.meta) {
      w.str(key);
      w.str(value);
    }
    w.u32(static_cast<std::uint32_t>(snap.counters.size()));
    for (const auto& c : snap.counters) {
      w.str(c.name);
      w.u64(c.value);
    }
    w.u32(static_cast<std::uint32_t>(snap.gauges.size()));
    for (const auto& g : snap.gauges) {
      w.str(g.name);
      w.f64(g.value);
    }
    w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
    for (const auto& h : snap.histograms) {
      w.str(h.name);
      w.u32(static_cast<std::uint32_t>(h.snap.bounds.size()));
      for (const double b : h.snap.bounds) w.f64(b);
      w.u32(static_cast<std::uint32_t>(h.snap.counts.size()));
      for (const std::uint64_t c : h.snap.counts) w.u64(c);
      w.u64(h.snap.count);
      w.f64(h.snap.sum);
    }
  }
  return w.take();
}

MetricsResponse decode_metrics_response(const std::vector<std::uint8_t>& p) {
  FrameReader r = open(p, MsgType::kMetricsResponse);
  MetricsResponse m;
  const std::uint32_t n_snaps = r.u32();
  for (std::uint32_t i = 0; i < n_snaps; ++i) {
    obs::MetricsSnapshot snap;
    snap.source = r.str();
    const std::uint32_t n_meta = r.u32();
    for (std::uint32_t k = 0; k < n_meta; ++k) {
      std::string key = r.str();
      std::string value = r.str();
      snap.meta.emplace_back(std::move(key), std::move(value));
    }
    const std::uint32_t n_counters = r.u32();
    for (std::uint32_t k = 0; k < n_counters; ++k) {
      obs::MetricsSnapshot::CounterEntry e;
      e.name = r.str();
      e.value = r.u64();
      snap.counters.push_back(std::move(e));
    }
    const std::uint32_t n_gauges = r.u32();
    for (std::uint32_t k = 0; k < n_gauges; ++k) {
      obs::MetricsSnapshot::GaugeEntry e;
      e.name = r.str();
      e.value = r.f64();
      snap.gauges.push_back(std::move(e));
    }
    const std::uint32_t n_hists = r.u32();
    for (std::uint32_t k = 0; k < n_hists; ++k) {
      obs::MetricsSnapshot::HistogramEntry e;
      e.name = r.str();
      const std::uint32_t n_bounds = r.u32();
      for (std::uint32_t b = 0; b < n_bounds; ++b) {
        e.snap.bounds.push_back(r.f64());
      }
      const std::uint32_t n_counts = r.u32();
      for (std::uint32_t b = 0; b < n_counts; ++b) {
        e.snap.counts.push_back(r.u64());
      }
      e.snap.count = r.u64();
      e.snap.sum = r.f64();
      if (e.snap.counts.size() != e.snap.bounds.size() + 1) {
        throw ProtocolError("histogram '" + e.name +
                            "': counts must be bounds + 1");
      }
      snap.histograms.push_back(std::move(e));
    }
    m.snapshots.push_back(std::move(snap));
  }
  r.expect_end();
  return m;
}

}  // namespace taglets::fleet
