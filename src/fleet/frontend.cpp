#include "fleet/frontend.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fleet/trace_merge.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace taglets::fleet {

namespace {

std::chrono::milliseconds ms(double v) {
  return std::chrono::milliseconds(static_cast<long>(v));
}

/// Idle client/replica channels are legal (a client may hold a
/// connection open between bursts); only stop()/shutdown_rw unblocks
/// a reader early.
constexpr std::chrono::milliseconds kIdleRecvBudget{3'600'000};

}  // namespace

void FrontendConfig::validate() const {
  if (endpoint.empty()) {
    throw std::invalid_argument("FrontendConfig: endpoint must be set");
  }
  if (groups.empty()) {
    throw std::invalid_argument("FrontendConfig: need at least one group");
  }
  std::vector<std::string> names;
  std::vector<std::string> endpoints;
  for (const GroupSpec& group : groups) {
    if (group.name.empty()) {
      throw std::invalid_argument("FrontendConfig: group name must be set");
    }
    if (group.replicas.empty()) {
      throw std::invalid_argument("FrontendConfig: group " + group.name +
                                  " has no replicas");
    }
    names.push_back(group.name);
    for (const std::string& ep : group.replicas) endpoints.push_back(ep);
  }
  std::sort(names.begin(), names.end());
  if (std::adjacent_find(names.begin(), names.end()) != names.end()) {
    throw std::invalid_argument("FrontendConfig: duplicate group name");
  }
  std::sort(endpoints.begin(), endpoints.end());
  if (std::adjacent_find(endpoints.begin(), endpoints.end()) !=
      endpoints.end()) {
    throw std::invalid_argument("FrontendConfig: duplicate replica endpoint");
  }
  if (heartbeat_interval_ms <= 0.0 || connect_timeout_ms <= 0.0 ||
      io_timeout_ms <= 0.0) {
    throw std::invalid_argument("FrontendConfig: timeouts must be > 0");
  }
  if (ring_vnodes == 0) {
    throw std::invalid_argument("FrontendConfig: ring_vnodes must be >= 1");
  }
  health.validate();
}

/// One upstream shard replica: a lazily (re)connected channel, its
/// health tracker, and the predicts in flight on it. The reader thread
/// never takes conn_mu — senders hold conn_mu, the reader only reads
/// the fd (full-duplex socket). Teardown synchronizes through
/// `accepting` + `broken`: the exiting reader turns `accepting` off
/// and drains `pending` *before* raising `broken`, so whoever observes
/// `broken` under conn_mu knows the drain is over and may rebuild the
/// channel without joining the old thread (joins happen later, on the
/// retired list, outside every conn_mu — see ensure_connected_locked).
struct Frontend::Replica {
  explicit Replica(HealthPolicy policy) : tracker(policy) {}

  std::string group;
  std::string endpoint;
  Endpoint parsed;
  HealthTracker tracker;

  /// Guards conn/connected/reader lifecycle + sends.
  util::Mutex conn_mu{"fleet.frontend.conn",
                      util::lockrank::kFleetFrontendConn};
  Connection conn;
  bool connected TAGLETS_GUARDED_BY(conn_mu) = false;
  std::atomic<bool> broken{false};  // reader drained pending; reset under conn_mu
  std::thread reader;
  std::shared_ptr<std::atomic<bool>> reader_done;  // set as the thread's last act

  util::Mutex pending_mu{"fleet.frontend.pending",
                         util::lockrank::kFleetFrontendPending};
  /// Admission gate for `pending`: true while the current reader is
  /// live. The exiting reader turns it off before draining, so a
  /// racing send_to can never register a predict nobody will drain.
  bool accepting TAGLETS_GUARDED_BY(pending_mu) = false;
  std::unordered_map<std::uint64_t, std::shared_ptr<RouteTask>> pending
      TAGLETS_GUARDED_BY(pending_mu);

  /// Heartbeat-thread-only: last Dead-endpoint reconnect probe.
  HealthTracker::Clock::time_point last_dead_probe{};

  // Shard-reported load from the latest pong (routing reads these).
  std::atomic<std::uint32_t> queue_depth{0};
  std::atomic<std::uint32_t> queue_capacity{0};
  std::atomic<std::uint64_t> model_version{0};

  /// Heartbeat-thread-only: last state written to the event log, so
  /// transitions are logged once at heartbeat granularity.
  HealthState last_logged_state = HealthState::kUnknown;
  /// Lifetime rejoin count (tracker.reset() wipes transition history).
  std::atomic<std::uint64_t> rejoins{0};

  // Latency attribution histograms, shared per group (same registry
  // names resolve to the same instances): end-to-end as the frontend
  // saw it, plus the network / queue-wait / compute decomposition.
  obs::Histogram* latency_hist = nullptr;     // ..latency_ms{shard=G}
  obs::Histogram* network_hist = nullptr;     // total - shard_ms
  obs::Histogram* queue_wait_hist = nullptr;  // shard admission->dispatch
  obs::Histogram* compute_hist = nullptr;     // shard dispatch->done
};

/// One client request making its way through the candidate list. At
/// any moment exactly one thread owns the cursor (the dispatcher, or
/// the replica reader that popped it from a pending map), but a
/// broken-channel redispatch can race a failing send — `next` and
/// `completed` are atomic so the overlap is at worst a duplicated
/// (idempotent) predict, never a double client reply.
struct Frontend::RouteTask {
  PredictRequest request;  // original client id preserved
  Completion done;
  std::vector<Replica*> candidates;
  obs::TraceClock::time_point t_start{};  // admission at the frontend
  std::atomic<std::size_t> next{0};
  std::atomic<bool> saw_overload{false};
  std::atomic<bool> completed{false};
};

struct Frontend::ClientConn {
  Connection conn;
  util::Mutex write_mu{"fleet.frontend.client_write",
                       util::lockrank::kFleetWrite};
  std::thread reader;
  std::atomic<bool> finished{false};
};

// ------------------------------------------------------------ lifecycle

Frontend::Frontend(FrontendConfig config)
    : config_((config.validate(), std::move(config))),
      ring_(config_.ring_vnodes) {
  for (const GroupSpec& group : config_.groups) {
    std::vector<Replica*>& members = group_members_[group.name];
    for (const std::string& ep : group.replicas) {
      auto replica = std::make_unique<Replica>(config_.health);
      replica->group = group.name;
      replica->endpoint = ep;
      replica->parsed = Endpoint::parse(ep);
      by_endpoint_[ep] = replica.get();
      members.push_back(replica.get());
      replicas_.push_back(std::move(replica));
    }
    ring_.add_node(group.name);
  }
  auto& registry = obs::MetricsRegistry::global();
  requests_total_ = &registry.counter("fleet.frontend.requests_total");
  requests_ok_total_ = &registry.counter("fleet.frontend.requests_ok_total");
  failovers_total_ = &registry.counter("fleet.frontend.failovers_total");
  overloaded_total_ = &registry.counter("fleet.frontend.overloaded_total");
  unavailable_total_ = &registry.counter("fleet.frontend.unavailable_total");
  evicted_groups_total_ =
      &registry.counter("fleet.frontend.evicted_groups_total");
  dead_rejoins_total_ = &registry.counter("fleet.frontend.dead_rejoins_total");
  alive_replicas_gauge_ = &registry.gauge("fleet.frontend.alive_replicas");
  ring_groups_gauge_ = &registry.gauge("fleet.frontend.ring_groups");
  ring_groups_gauge_->set(static_cast<double>(config_.groups.size()));
  // Per-group latency decomposition; replicas of one group share the
  // registry instances (histogram() returns the existing one).
  for (auto& replica : replicas_) {
    const std::string suffix = "_ms{shard=" + replica->group + "}";
    replica->latency_hist = &registry.histogram(
        "fleet.frontend.latency" + suffix, obs::default_latency_buckets_ms());
    replica->network_hist = &registry.histogram(
        "fleet.frontend.network" + suffix, obs::default_latency_buckets_ms());
    replica->queue_wait_hist =
        &registry.histogram("fleet.frontend.queue_wait" + suffix,
                            obs::default_latency_buckets_ms());
    replica->compute_hist = &registry.histogram(
        "fleet.frontend.compute" + suffix, obs::default_latency_buckets_ms());
  }
  if (!config_.event_log_path.empty()) {
    event_log_ = std::make_unique<std::ofstream>(config_.event_log_path,
                                                 std::ios::app);
    if (!*event_log_) {
      throw std::runtime_error("Frontend: cannot open event log " +
                               config_.event_log_path);
    }
  }
}

Frontend::~Frontend() { stop(); }

void Frontend::start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("Frontend::start: already stopped");
  }
  listener_ = std::make_unique<Listener>(Endpoint::parse(config_.endpoint));
  accept_thread_ = std::thread([this] { accept_loop(); });
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  running_.store(true, std::memory_order_release);
}

void Frontend::stop() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  running_.store(false, std::memory_order_release);
  {
    // Empty critical section before the notify: without it a heartbeat
    // thread that already evaluated its predicate (stopping_ still
    // false) but has not yet blocked would miss this wakeup entirely
    // and sleep a full extra interval. Holding the wait lock across
    // the stopping_ publication pins the waiter on either side of the
    // race: it re-checks the predicate under the lock, or it is
    // already blocked and the notify reaches it.
    util::MutexLock pin(heartbeat_mu_);
  }
  heartbeat_cv_.notify_all();
  if (listener_) listener_->shutdown();
  // The accept and heartbeat threads take the heartbeat, conn, ring,
  // retired, and clients locks — all ranked above the lifecycle lock
  // held here.
  util::check_join_safe(util::lockrank::kFleetFrontendHeartbeat,
                        "Frontend::stop");
  if (accept_thread_.joinable()) accept_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  // Wake and join replica readers. Join OUTSIDE conn_mu: a reader's
  // exit path redispatches its pending tasks, which locks other
  // replicas' conn_mu — joining under our own would close a lock cycle
  // between two exiting readers.
  for (auto& replica : replicas_) {
    std::thread reader;
    {
      util::MutexLock lock(replica->conn_mu);
      if (replica->connected) replica->conn.shutdown_rw();
      reader = std::move(replica->reader);
    }
    if (reader.joinable()) reader.join();
  }
  // Plus any readers of previously-broken channels still parked on the
  // retired list (stopping_ is set, so nothing retires after this).
  reap_retired_readers(/*wait=*/true);
  // Readers redispatched their pending sets on exit; with stopping_
  // set those dispatches terminated with kShutdown, so nothing is in
  // flight past this point.
  std::vector<std::shared_ptr<ClientConn>> clients;
  {
    util::MutexLock lock(clients_mu_);
    clients.swap(clients_);
  }
  for (auto& client : clients) client->conn.shutdown_rw();
  for (auto& client : clients) {
    if (client->reader.joinable()) client->reader.join();
  }
  listener_.reset();
}

bool Frontend::wait_until_ready(std::size_t min_alive,
                                std::chrono::milliseconds timeout) {
  const auto deadline = HealthTracker::Clock::now() + timeout;
  for (;;) {
    std::size_t alive = 0;
    for (const auto& replica : replicas_) {
      if (replica->tracker.state() == HealthState::kAlive) ++alive;
    }
    if (alive >= min_alive) return true;
    if (HealthTracker::Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ------------------------------------------------------------- routing

void Frontend::route(PredictRequest request, Completion done) {
  requests_total_->add();
  auto task = std::make_shared<RouteTask>();
  task->request = std::move(request);
  task->done = std::move(done);
  task->t_start = obs::TraceClock::now();
  if (obs::trace_enabled() && task->request.trace_id == 0) {
    // Originate trace context here when the client sent none: pid in
    // the high bits keeps ids distinct across fleet processes.
    task->request.trace_id =
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        next_trace_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  task->candidates = candidates_for(task->request.routing_key);
  dispatch(std::move(task));
}

std::vector<Frontend::Replica*> Frontend::candidates_for(std::uint64_t key) {
  std::vector<std::string> order;
  {
    util::MutexLock lock(ring_mu_);
    if (ring_.node_count() > 0) order = ring_.successors(key);
  }
  // Evicted groups are gone from `order` already; within each group
  // prefer confirmed-healthy replicas, try never-seen ones
  // optimistically, keep Suspect as the last resort, never Dead.
  static constexpr HealthState kPasses[] = {
      HealthState::kAlive, HealthState::kUnknown, HealthState::kSuspect};
  std::vector<Replica*> out;
  for (const std::string& group : order) {
    const auto it = group_members_.find(group);
    if (it == group_members_.end()) continue;
    for (const HealthState pass : kPasses) {
      for (Replica* replica : it->second) {
        if (replica->tracker.state() == pass) out.push_back(replica);
      }
    }
  }
  return out;
}

void Frontend::dispatch(std::shared_ptr<RouteTask> task) {
  const auto now = [] { return HealthTracker::Clock::now(); };
  for (;;) {
    const std::size_t i =
        task->next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= task->candidates.size()) break;
    if (i > 0) failovers_total_->add();
    Replica* replica = task->candidates[i];
    if (replica->tracker.state() == HealthState::kDead) continue;
    const std::uint32_t capacity =
        replica->queue_capacity.load(std::memory_order_relaxed);
    if (capacity != 0 &&
        replica->queue_depth.load(std::memory_order_relaxed) >= capacity) {
      task->saw_overload.store(true, std::memory_order_relaxed);
      continue;  // shard-reported saturation: skip, don't pile on
    }
    if (send_to(*replica, task)) return;  // now pending on this replica
    replica->tracker.record_failure(now());
  }
  PredictResponse resp;
  resp.id = task->request.id;
  if (stopping_.load(std::memory_order_acquire)) {
    resp.status = Status::kShutdown;
    resp.error = "frontend stopping";
  } else if (task->saw_overload.load(std::memory_order_relaxed)) {
    resp.status = Status::kOverloaded;
    resp.error = "all candidate replicas saturated";
    overloaded_total_->add();
  } else {
    resp.status = Status::kUnavailable;
    resp.error = "no routable replica";
    unavailable_total_->add();
  }
  complete(task, std::move(resp), nullptr);
}

bool Frontend::send_to(Replica& replica,
                       const std::shared_ptr<RouteTask>& task) {
  const std::uint64_t wire_id =
      next_wire_id_.fetch_add(1, std::memory_order_relaxed);
  PredictRequest wire = task->request;
  wire.id = wire_id;
  util::MutexLock conn_lock(replica.conn_mu);
  if (!ensure_connected_locked(replica)) return false;
  {
    util::MutexLock lock(replica.pending_mu);
    // The reader may have exited (and drained pending) between the
    // connect check and here; registering now would orphan the task —
    // nobody would ever redispatch it. Fail over instead.
    if (!replica.accepting) return false;
    replica.pending.emplace(wire_id, task);
  }
  try {
    replica.conn.send_frame(encode(wire), ms(config_.io_timeout_ms));
  } catch (const SocketError&) {
    {
      util::MutexLock lock(replica.pending_mu);
      replica.pending.erase(wire_id);
    }
    replica.conn.shutdown_rw();  // reader exits, redispatches the rest
    return false;
  }
  return true;
}

bool Frontend::ensure_connected_locked(Replica& replica) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  if (replica.broken.load(std::memory_order_acquire)) {
    // The exited reader already turned `accepting` off and drained its
    // pending set (it raises `broken` only after the drain), so the
    // channel can be rebuilt immediately. Do NOT join it here: a
    // reader's exit path dispatches into other replicas' conn_mu, so
    // two readers failing over into each other (or the heartbeat
    // thread holding this conn_mu) joining under conn_mu would
    // deadlock. Park the thread for the heartbeat reaper instead.
    retire_reader_locked(replica);
    replica.conn.close();
    replica.connected = false;
    replica.broken.store(false, std::memory_order_release);
  }
  if (replica.connected) return true;
  if (replica.tracker.state() == HealthState::kDead) return false;
  try {
    replica.conn =
        Connection::connect(replica.parsed, ms(config_.connect_timeout_ms));
  } catch (const SocketError&) {
    return false;
  }
  replica.connected = true;
  {
    util::MutexLock lock(replica.pending_mu);
    replica.accepting = true;
  }
  auto done = std::make_shared<std::atomic<bool>>(false);
  replica.reader_done = done;
  Replica* raw = &replica;
  replica.reader = std::thread([this, raw, done] {
    replica_reader(raw);
    done->store(true, std::memory_order_release);
  });
  return true;
}

void Frontend::retire_reader_locked(Replica& replica) {
  if (!replica.reader.joinable()) return;
  util::MutexLock lock(retired_mu_);
  retired_readers_.emplace_back(std::move(replica.reader),
                                std::move(replica.reader_done));
}

void Frontend::reap_retired_readers(bool wait) {
  std::vector<std::thread> joinable;
  {
    util::MutexLock lock(retired_mu_);
    for (auto it = retired_readers_.begin(); it != retired_readers_.end();) {
      if (wait ||
          (it->second && it->second->load(std::memory_order_acquire))) {
        joinable.push_back(std::move(it->first));
        it = retired_readers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Exiting readers redispatch their pending sets, which takes other
  // replicas' conn_mu — never join while holding one.
  util::check_join_safe(util::lockrank::kFleetFrontendConn,
                        "Frontend::reap_retired_readers");
  for (std::thread& thread : joinable) {
    if (thread.joinable()) thread.join();
  }
}

void Frontend::replica_reader(Replica* replica) {
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = replica->conn.recv_frame(kIdleRecvBudget);
    } catch (const SocketError&) {
      break;
    }
    if (!frame) break;
    const auto now = HealthTracker::Clock::now();
    try {
      switch (peek_type(*frame)) {
        case MsgType::kPredictResponse: {
          PredictResponse resp = decode_predict_response(*frame);
          std::shared_ptr<RouteTask> task;
          {
            util::MutexLock lock(replica->pending_mu);
            const auto it = replica->pending.find(resp.id);
            if (it != replica->pending.end()) {
              task = it->second;
              replica->pending.erase(it);
            }
          }
          if (!task) break;  // stale (already redispatched elsewhere)
          if (resp.status == Status::kOverloaded) {
            // This replica is full, others may not be: fail over.
            task->saw_overload.store(true, std::memory_order_relaxed);
            dispatch(std::move(task));
            break;
          }
          if (resp.status == Status::kShutdown) {
            replica->tracker.record_failure(now);
            dispatch(std::move(task));
            break;
          }
          replica->tracker.record_success(now);
          resp.id = task->request.id;
          complete(task, std::move(resp), replica);
          break;
        }
        case MsgType::kPong: {
          const Pong pong = decode_pong(*frame);
          replica->queue_depth.store(pong.queue_depth,
                                     std::memory_order_relaxed);
          replica->queue_capacity.store(pong.queue_capacity,
                                        std::memory_order_relaxed);
          replica->model_version.store(pong.model_version,
                                       std::memory_order_relaxed);
          replica->tracker.record_success(now);
          break;
        }
        default:
          break;  // tolerated: unknown-but-well-formed frame
      }
    } catch (const ProtocolError&) {
      break;  // corrupt peer: drop the channel
    }
  }
  // Exit order matters: close admissions and drain pending BEFORE
  // raising `broken` — once `broken` is observed (under conn_mu) the
  // channel may be rebuilt and the pending map reused, so the drain
  // must already be over. Dispatching the drained tasks happens last;
  // it may route back here, in which case ensure_connected_locked
  // retires this very thread (moves the std::thread object, no join)
  // and rebuilds the channel.
  std::vector<std::shared_ptr<RouteTask>> stranded;
  {
    util::MutexLock lock(replica->pending_mu);
    replica->accepting = false;
    stranded.reserve(replica->pending.size());
    for (auto& [id, task] : replica->pending) {
      stranded.push_back(std::move(task));
    }
    replica->pending.clear();
  }
  replica->tracker.record_failure(HealthTracker::Clock::now());
  replica->broken.store(true, std::memory_order_release);
  if (!stranded.empty()) {
    log_event("failover", "\"endpoint\":\"" +
                              obs::json_escape(replica->endpoint) +
                              "\",\"group\":\"" +
                              obs::json_escape(replica->group) +
                              "\",\"redispatched\":" +
                              std::to_string(stranded.size()));
  }
  for (auto& task : stranded) dispatch(std::move(task));
}

void Frontend::complete(const std::shared_ptr<RouteTask>& task,
                        PredictResponse resp, Replica* served_by) {
  if (task->completed.exchange(true, std::memory_order_acq_rel)) return;
  if (resp.status == Status::kOk) requests_ok_total_->add();
  const obs::TraceClock::time_point now = obs::TraceClock::now();
  const double total_ms =
      std::chrono::duration<double, std::milli>(now - task->t_start).count();
  if (served_by != nullptr) {
    // Attribute where the time went: everything the shard did not
    // account for is transport + frontend queueing ("network").
    served_by->latency_hist->observe(total_ms);
    served_by->network_hist->observe(std::max(0.0, total_ms - resp.shard_ms));
    served_by->queue_wait_hist->observe(resp.queue_wait_ms);
    served_by->compute_hist->observe(resp.compute_ms);
  }
  if (obs::trace_enabled()) {
    obs::TraceAttrs attrs = {{"id", std::to_string(task->request.id)},
                             {"status", status_name(resp.status)}};
    if (task->request.trace_id != 0) {
      attrs.emplace_back("trace_id", std::to_string(task->request.trace_id));
    }
    if (served_by != nullptr) attrs.emplace_back("shard", served_by->group);
    obs::Tracer::global().record_complete("fleet.request", task->t_start, now,
                                          std::move(attrs));
  }
  task->done(std::move(resp));
}

// ------------------------------------------------------------ heartbeat

void Frontend::heartbeat_loop() {
  util::MutexLock lock(heartbeat_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    lock.unlock();
    heartbeat_round();
    lock.lock();
    heartbeat_cv_.wait_for(lock, ms(config_.heartbeat_interval_ms), [this] {
      return stopping_.load(std::memory_order_acquire);
    });
  }
}

void Frontend::heartbeat_round() {
  const auto now = HealthTracker::Clock::now();
  // Join readers of channels that broke since the last round. This
  // thread is the single reaper (stop() aside), and it joins outside
  // every conn_mu — the exiting readers' dispatch calls may need those.
  reap_retired_readers(/*wait=*/false);
  std::size_t alive = 0;
  for (auto& entry : replicas_) {
    Replica& replica = *entry;
    if (replica.tracker.state() != HealthState::kDead) {
      Ping ping;
      ping.seq = next_ping_seq_.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock conn_lock(replica.conn_mu);
      if (ensure_connected_locked(replica)) {
        try {
          replica.conn.send_frame(encode(ping), ms(config_.io_timeout_ms));
        } catch (const SocketError&) {
          replica.conn.shutdown_rw();
          replica.tracker.record_failure(now);
        }
      } else {
        replica.tracker.record_failure(now);
      }
    } else if (config_.dead_probe_interval_ms > 0.0) {
      probe_dead_replica(replica, now);
    }
    replica.tracker.tick(now);
    const HealthState state = replica.tracker.state();
    if (state != replica.last_logged_state) {
      log_event("health", "\"endpoint\":\"" +
                              obs::json_escape(replica.endpoint) +
                              "\",\"group\":\"" +
                              obs::json_escape(replica.group) +
                              "\",\"from\":\"" +
                              health_state_name(replica.last_logged_state) +
                              "\",\"to\":\"" + health_state_name(state) +
                              "\"");
      replica.last_logged_state = state;
    }
    if (state == HealthState::kAlive) ++alive;
  }
  alive_replicas_gauge_->set(static_cast<double>(alive));
  // Evict groups whose every replica is Dead — the ring must never map
  // a key to a shard nobody can reach — and re-add a group as soon as
  // a probed-back replica revives it.
  util::MutexLock ring_lock(ring_mu_);
  for (const auto& [group, members] : group_members_) {
    const bool all_dead =
        std::all_of(members.begin(), members.end(), [](Replica* r) {
          return r->tracker.state() == HealthState::kDead;
        });
    if (all_dead) {
      if (ring_.contains(group)) {
        ring_.remove_node(group);
        evicted_groups_total_->add();
      }
    } else if (!ring_.contains(group)) {
      ring_.add_node(group);
    }
  }
  ring_groups_gauge_->set(static_cast<double>(ring_.node_count()));
}

void Frontend::probe_dead_replica(Replica& replica,
                                  HealthTracker::Clock::time_point now) {
  if (replica.last_dead_probe != HealthTracker::Clock::time_point{} &&
      std::chrono::duration<double, std::milli>(now - replica.last_dead_probe)
              .count() < config_.dead_probe_interval_ms) {
    return;
  }
  replica.last_dead_probe = now;
  try {
    const Connection probe =
        Connection::connect(replica.parsed, ms(config_.connect_timeout_ms));
    (void)probe;
  } catch (const SocketError&) {
    return;  // still down; next probe after the interval
  }
  // The endpoint answers again. Dead stays terminal inside the state
  // machine — recovery is re-registration: the tracker restarts as a
  // brand-new Unknown member (docs/FLEET.md) and the next round's ping
  // walks it back toward Alive.
  replica.tracker.reset();
  replica.rejoins.fetch_add(1, std::memory_order_relaxed);
  dead_rejoins_total_->add();
  log_event("rejoin", "\"endpoint\":\"" + obs::json_escape(replica.endpoint) +
                          "\",\"group\":\"" + obs::json_escape(replica.group) +
                          "\"");
}

// ------------------------------------------------------------- control

ReloadOutcome Frontend::reload_all(const std::string& path) {
  ReloadOutcome out;
  out.ok = true;
  std::string detail;
  std::uint64_t min_version = std::numeric_limits<std::uint64_t>::max();
  bool any_swapped = false;
  for (auto& entry : replicas_) {
    Replica& replica = *entry;
    if (replica.tracker.state() == HealthState::kDead) {
      detail += replica.endpoint + ": dead, skipped; ";
      continue;
    }
    try {
      Connection control =
          Connection::connect(replica.parsed, ms(config_.connect_timeout_ms));
      ReloadRequest request;
      request.path = path;
      control.send_frame(encode(request), ms(config_.io_timeout_ms));
      // Loading + starting the replacement server takes real time.
      const auto frame =
          control.recv_frame(std::chrono::milliseconds(60'000));
      if (!frame) throw SocketError("eof before reload response");
      const ReloadResponse resp = decode_reload_response(*frame);
      if (resp.ok) {
        any_swapped = true;
        min_version = std::min(min_version, resp.model_version);
        replica.model_version.store(resp.model_version,
                                    std::memory_order_relaxed);
      } else {
        out.ok = false;
        detail += replica.endpoint + ": " + resp.message + "; ";
      }
    } catch (const std::exception& e) {
      out.ok = false;
      detail += replica.endpoint + ": " + e.what() + "; ";
    }
  }
  if (any_swapped &&
      min_version != std::numeric_limits<std::uint64_t>::max()) {
    out.model_version = min_version;
  }
  out.message = detail;
  log_event("reload", "\"path\":\"" + obs::json_escape(path) +
                          "\",\"ok\":" + (out.ok ? "true" : "false") +
                          ",\"model_version\":" +
                          std::to_string(out.model_version) + ",\"detail\":\"" +
                          obs::json_escape(detail) + "\"");
  return out;
}

void Frontend::log_event(const std::string& type, const std::string& fields) {
  if (!event_log_) return;
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  util::MutexLock lock(event_mu_);
  *event_log_ << "{\"ts_ms\":" << wall_ms << ",\"event\":\""
              << obs::json_escape(type) << "\"";
  if (!fields.empty()) *event_log_ << "," << fields;
  *event_log_ << "}\n";
  event_log_->flush();  // ops tail this file; a buffered line is invisible
}

TraceExportResponse Frontend::collect_traces() {
  obs::Tracer& tracer = obs::Tracer::global();
  TraceExportResponse out;
  out.processes.push_back(build_local_process_trace());  // offset 0: us
  for (auto& entry : replicas_) {
    Replica& replica = *entry;
    if (replica.tracker.state() == HealthState::kDead) continue;
    try {
      Connection control =
          Connection::connect(replica.parsed, ms(config_.connect_timeout_ms));
      // The round-trip IS the clock-alignment handshake: the shard
      // stamps its tracer clock while answering, and we assume that
      // instant fell halfway between t0 and t1 on ours.
      const double t0 = tracer.now_us();
      control.send_frame(encode(TraceExportRequest{}),
                         ms(config_.io_timeout_ms));
      const auto frame = control.recv_frame(ms(config_.io_timeout_ms));
      const double t1 = tracer.now_us();
      if (!frame) continue;  // shard died mid-export; skip its lane
      TraceExportResponse shard_trace = decode_trace_export_response(*frame);
      for (ProcessTrace& proc : shard_trace.processes) {
        proc.align_offset_us = estimate_clock_offset_us(t0, t1, proc.now_us);
        out.processes.push_back(std::move(proc));
      }
    } catch (const std::exception&) {
      // Unreachable or hostile shard: the merged trace simply misses
      // its lane; health tracking handles the rest.
    }
  }
  return out;
}

MetricsResponse Frontend::federated_metrics() {
  MetricsResponse out;
  obs::MetricsSnapshot own =
      obs::MetricsRegistry::global().snapshot(obs::process_name());
  own.meta.emplace_back("endpoint", config_.endpoint);
  out.snapshots.push_back(std::move(own));
  for (auto& entry : replicas_) {
    Replica& replica = *entry;
    if (replica.tracker.state() == HealthState::kDead) continue;
    try {
      Connection control =
          Connection::connect(replica.parsed, ms(config_.connect_timeout_ms));
      control.send_frame(encode(MetricsRequest{}), ms(config_.io_timeout_ms));
      const auto frame = control.recv_frame(ms(config_.io_timeout_ms));
      if (!frame) continue;
      MetricsResponse shard_metrics = decode_metrics_response(*frame);
      for (obs::MetricsSnapshot& snap : shard_metrics.snapshots) {
        // Per-shard labels: the aggregator, not the shard, knows where
        // this snapshot sits in the fleet.
        if (snap.source.empty()) snap.source = replica.endpoint;
        snap.meta.emplace_back("group", replica.group);
        snap.meta.emplace_back("replica_endpoint", replica.endpoint);
        snap.meta.emplace_back(
            "health", health_state_name(replica.tracker.state()));
        snap.meta.emplace_back(
            "flaps", std::to_string(replica.tracker.transitions().size()));
        snap.meta.emplace_back(
            "rejoins",
            std::to_string(replica.rejoins.load(std::memory_order_relaxed)));
        out.snapshots.push_back(std::move(snap));
      }
    } catch (const std::exception&) {
      // Skipped: the federation reports what answered.
    }
  }
  return out;
}

Pong Frontend::make_aggregate_pong(std::uint64_t seq) const {
  Pong pong;
  pong.seq = seq;
  std::uint64_t min_version = std::numeric_limits<std::uint64_t>::max();
  for (const auto& replica : replicas_) {
    if (replica->tracker.state() == HealthState::kDead) continue;
    pong.queue_depth += replica->queue_depth.load(std::memory_order_relaxed);
    pong.queue_capacity +=
        replica->queue_capacity.load(std::memory_order_relaxed);
    const std::uint64_t version =
        replica->model_version.load(std::memory_order_relaxed);
    if (version != 0) min_version = std::min(min_version, version);
  }
  if (min_version != std::numeric_limits<std::uint64_t>::max()) {
    pong.model_version = min_version;
  }
  // ok = completions the clients actually saw as kOk (not merely
  // routed); rejected = every request the frontend turned away,
  // whether for saturation or for want of a routable replica.
  pong.requests_ok = requests_ok_total_->value();
  pong.requests_rejected =
      overloaded_total_->value() + unavailable_total_->value();
  return pong;
}

std::string Frontend::stats_json() const {
  std::ostringstream os;
  os << "{\"groups\":[";
  bool first_group = true;
  for (const GroupSpec& group : config_.groups) {
    if (!first_group) os << ",";
    first_group = false;
    os << "{\"name\":\"" << group.name << "\",\"on_ring\":"
       << (([this, &group] {
            util::MutexLock lock(ring_mu_);
            return ring_.contains(group.name);
          }())
               ? "true"
               : "false")
       << ",\"replicas\":[";
    bool first_replica = true;
    for (const std::string& ep : group.replicas) {
      if (!first_replica) os << ",";
      first_replica = false;
      const Replica* replica = by_endpoint_.at(ep);
      os << "{\"endpoint\":\"" << ep << "\",\"state\":\""
         << health_state_name(replica->tracker.state())
         << "\",\"model_version\":"
         << replica->model_version.load(std::memory_order_relaxed)
         << ",\"queue_depth\":"
         << replica->queue_depth.load(std::memory_order_relaxed)
         << ",\"queue_capacity\":"
         << replica->queue_capacity.load(std::memory_order_relaxed) << "}";
    }
    os << "]}";
  }
  os << "],\"requests_total\":" << requests_total_->value()
     << ",\"requests_ok_total\":" << requests_ok_total_->value()
     << ",\"failovers_total\":" << failovers_total_->value()
     << ",\"overloaded_total\":" << overloaded_total_->value()
     << ",\"unavailable_total\":" << unavailable_total_->value()
     << ",\"evicted_groups_total\":" << evicted_groups_total_->value()
     << ",\"dead_rejoins_total\":" << dead_rejoins_total_->value() << "}";
  return os.str();
}

HealthState Frontend::replica_state(const std::string& endpoint) const {
  const auto it = by_endpoint_.find(endpoint);
  if (it == by_endpoint_.end()) return HealthState::kDead;
  return it->second->tracker.state();
}

std::vector<std::string> Frontend::ring_groups() const {
  util::MutexLock lock(ring_mu_);
  return ring_.nodes();
}

// --------------------------------------------------------- client front

void Frontend::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Connection> peer;
    try {
      peer = listener_->accept(std::chrono::milliseconds(200));
    } catch (const SocketError&) {
      break;
    }
    if (!peer) {
      reap_finished_clients();
      continue;
    }
    auto client = std::make_shared<ClientConn>();
    client->conn = std::move(*peer);
    client->reader =
        std::thread([this, client] { client_reader(client); });
    {
      util::MutexLock lock(clients_mu_);
      clients_.push_back(std::move(client));
    }
    reap_finished_clients();
  }
}

void Frontend::reap_finished_clients() {
  // Move finished clients out first so the joins run without
  // clients_mu_ held: a client reader routes into replica conn_mu
  // (ranked below clients_mu_), so joining under the lock would be the
  // join-under-lock shape the order checker rejects — even though the
  // finished flag means these readers have already exited.
  std::vector<std::shared_ptr<ClientConn>> finished;
  {
    util::MutexLock lock(clients_mu_);
    for (auto it = clients_.begin(); it != clients_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }
  util::check_join_safe(util::lockrank::kFleetFrontendConn,
                        "Frontend::reap_finished_clients");
  for (auto& client : finished) {
    if (client->reader.joinable()) client->reader.join();
  }
}

void Frontend::client_reader(std::shared_ptr<ClientConn> client) {
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = client->conn.recv_frame(kIdleRecvBudget);
    } catch (const SocketError&) {
      break;
    }
    if (!frame) break;
    try {
      switch (peek_type(*frame)) {
        case MsgType::kPredictRequest: {
          PredictRequest request = decode_predict_request(*frame);
          route(std::move(request), [this, client](PredictResponse resp) {
            util::MutexLock lock(client->write_mu);
            try {
              client->conn.send_frame(encode(resp),
                                      ms(config_.io_timeout_ms));
            } catch (const SocketError&) {
              // Client gone; the outcome is already counted.
            }
          });
          break;
        }
        case MsgType::kPing: {
          const Ping ping = decode_ping(*frame);
          const std::vector<std::uint8_t> reply =
              encode(make_aggregate_pong(ping.seq));
          util::MutexLock lock(client->write_mu);
          client->conn.send_frame(reply, ms(config_.io_timeout_ms));
          break;
        }
        case MsgType::kReloadRequest: {
          const ReloadRequest request = decode_reload_request(*frame);
          const ReloadOutcome outcome = reload_all(request.path);
          ReloadResponse resp;
          resp.ok = outcome.ok ? 1 : 0;
          resp.model_version = outcome.model_version;
          resp.message = outcome.message;
          const std::vector<std::uint8_t> reply = encode(resp);
          util::MutexLock lock(client->write_mu);
          client->conn.send_frame(reply, ms(config_.io_timeout_ms));
          break;
        }
        case MsgType::kStatsRequest: {
          StatsResponse resp;
          resp.json = stats_json();
          const std::vector<std::uint8_t> reply = encode(resp);
          util::MutexLock lock(client->write_mu);
          client->conn.send_frame(reply, ms(config_.io_timeout_ms));
          break;
        }
        case MsgType::kTraceExportRequest: {
          (void)decode_trace_export_request(*frame);
          const std::vector<std::uint8_t> reply = encode(collect_traces());
          util::MutexLock lock(client->write_mu);
          client->conn.send_frame(reply, ms(config_.io_timeout_ms));
          break;
        }
        case MsgType::kMetricsRequest: {
          (void)decode_metrics_request(*frame);
          const std::vector<std::uint8_t> reply = encode(federated_metrics());
          util::MutexLock lock(client->write_mu);
          client->conn.send_frame(reply, ms(config_.io_timeout_ms));
          break;
        }
        default:
          throw ProtocolError("unexpected message type from a client");
      }
    } catch (const std::exception&) {
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  client->finished.store(true, std::memory_order_release);
}

}  // namespace taglets::fleet
