// Client half of the fleet protocol. One FleetClient owns one
// connection (to a frontend, or directly to a shard — same wire
// language) and pipelines predicts over it: submit() returns a future
// immediately and a reader thread matches responses to futures by id,
// so responses may resolve out of submission order when the peer is a
// frontend multiplexing several shards.
//
// Control calls (ping / reload / stats) share the connection; they are
// serialized against each other but ride alongside in-flight predicts.
//
// When the connection breaks, every outstanding future resolves with
// kUnavailable and later calls throw SocketError — a client is
// single-use, like the connection it wraps.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/protocol.hpp"
#include "fleet/socket.hpp"
#include "util/sync.hpp"

namespace taglets::fleet {

struct FleetClientConfig {
  std::string endpoint;
  double connect_timeout_ms = 2000.0;
  double io_timeout_ms = 10000.0;
};

class FleetClient {
 public:
  /// Connects eagerly; throws SocketError when the peer is unreachable.
  explicit FleetClient(FleetClientConfig config);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  /// Pipelined predict. The future always resolves: with the peer's
  /// response, or with kUnavailable when the connection dies first.
  /// `trace_id` propagates distributed-trace context (0 = let the
  /// frontend originate one when tracing is on).
  std::future<PredictResponse> submit(std::vector<float> features,
                                      std::uint64_t routing_key = 0,
                                      double deadline_ms = 0.0,
                                      std::uint64_t trace_id = 0);
  /// submit + wait.
  PredictResponse predict(std::vector<float> features,
                          std::uint64_t routing_key = 0,
                          double deadline_ms = 0.0,
                          std::uint64_t trace_id = 0);

  /// Heartbeat round-trip. Throws SocketError on a dead connection or
  /// reply timeout.
  Pong ping();
  /// Ask the peer to hot-swap its model (a frontend broadcasts).
  ReloadResponse reload(const std::string& path);
  /// Peer stats JSON (shard ServerStats or frontend aggregate).
  std::string stats();
  /// Pull the peer's span buffers (a frontend answers with every fleet
  /// process's trace, clock-aligned onto its own epoch). Render with
  /// render_chrome_trace(). Throws SocketError on a dead connection.
  TraceExportResponse trace_export();
  /// Pull the peer's structured metrics (a frontend answers with the
  /// whole federation, per-shard labeled). Throws SocketError.
  MetricsResponse fleet_metrics();

  /// Fail outstanding futures, close, join. Idempotent.
  void close();
  bool connected() const { return !broken_.load(std::memory_order_acquire); }

 private:
  struct Waiters;

  void reader_loop();
  void fail_all_pending();
  void send_locked_checked(const std::vector<std::uint8_t>& frame);

  FleetClientConfig config_;
  Connection conn_;
  util::Mutex write_mu_{"fleet.client.write", util::lockrank::kFleetWrite};

  /// Guards pending_ and the control waiters.
  util::Mutex pending_mu_{"fleet.client.pending",
                          util::lockrank::kFleetClientPending};
  std::unordered_map<std::uint64_t, std::promise<PredictResponse>> pending_
      TAGLETS_GUARDED_BY(pending_mu_);
  std::unique_ptr<Waiters> waiters_ TAGLETS_PT_GUARDED_BY(pending_mu_);

  /// One control round-trip at a time.
  util::Mutex control_mu_{"fleet.client.control",
                          util::lockrank::kFleetClientControl};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<bool> broken_{false};
  std::atomic<bool> closed_{false};
  std::thread reader_;
};

}  // namespace taglets::fleet
