// Wire protocol of the serving fleet (docs/FLEET.md). Every message —
// client → frontend, frontend → shard, and the control/heartbeat
// traffic between them — travels as one length-prefixed binary frame:
//
//   uint32 payload_length (little-endian) | payload
//   payload = uint8 message type | type-specific body
//
// Integers are fixed-width little-endian, floats are IEEE-754 bit
// copies, strings and float arrays are length-prefixed. Encoding is
// deterministic (the same message always produces the same bytes) and
// decoding validates every length against the frame it arrived in, so
// a truncated or hostile frame raises ProtocolError instead of reading
// out of bounds. The frame length itself is capped (kMaxFrameBytes) to
// bound what one connection can make a peer buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace taglets::fleet {

/// Hard upper bound on one frame's payload; admission control for the
/// transport itself (a 4096-dim float request is ~16 KiB, so this
/// leaves three orders of magnitude of headroom).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Thrown on any malformed, truncated, or oversized frame.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("fleet protocol: " + what) {}
};

/// Payload discriminator, first byte of every frame.
enum class MsgType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kPing = 3,
  kPong = 4,
  kReloadRequest = 5,
  kReloadResponse = 6,
  kStatsRequest = 7,
  kStatsResponse = 8,
  kTraceExportRequest = 9,
  kTraceExportResponse = 10,
  kMetricsRequest = 11,
  kMetricsResponse = 12,
};

/// Terminal outcome of one fleet request, superset of the shard-local
/// serve::Status: the fleet adds outcomes that only exist once there is
/// routing (no live replica) and cross-process backpressure.
enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,        // every candidate replica is saturated
  kUnavailable = 2,       // no Alive/Suspect replica reachable
  kDeadlineExceeded = 3,  // shard-side deadline miss
  kError = 4,             // model execution / decode failure
  kShutdown = 5,          // shard or frontend stopping
};

/// Stable lowercase name ("ok", "overloaded", ...).
const char* status_name(Status status);

// ----------------------------------------------------------- messages

struct PredictRequest {
  std::uint64_t id = 0;           // caller-chosen; echoed in the response
  std::uint64_t routing_key = 0;  // consistent-hash key (e.g. user id)
  double deadline_ms = 0.0;       // per-request deadline, <= 0 = none
  std::uint64_t trace_id = 0;     // distributed trace context; 0 = none
                                  // (the frontend assigns one if so)
  std::uint64_t parent_span = 0;  // caller-side span id, 0 = root
  std::vector<float> features;    // rank-1 input of the model's dim
};

struct PredictResponse {
  std::uint64_t id = 0;
  Status status = Status::kError;
  std::uint32_t label = 0;
  float confidence = 0.0f;
  std::string class_name;
  std::string error;       // diagnostic for kError
  double shard_ms = 0.0;   // shard-side admission -> response
  // Latency decomposition of shard_ms, so the frontend can attribute
  // time to queue vs compute vs network (network = frontend-observed
  // total minus shard_ms).
  double queue_wait_ms = 0.0;  // admission -> batch dispatch
  double compute_ms = 0.0;     // batch dispatch -> response ready
};

/// Heartbeat probe. `seq` must be echoed in the matching Pong.
struct Ping {
  std::uint64_t seq = 0;
};

/// Heartbeat reply carrying the shard's load so the frontend's health
/// and backpressure decisions ride on data the shard already has.
struct Pong {
  std::uint64_t seq = 0;
  std::uint64_t model_version = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_deadline_missed = 0;
  std::uint8_t draining = 0;  // mid model-swap
};

/// Hot model swap: validate the ServableModel at `path`, then flip.
struct ReloadRequest {
  std::string path;
};

struct ReloadResponse {
  std::uint8_t ok = 0;
  std::uint64_t model_version = 0;  // active version after the attempt
  std::string message;              // failure reason, or "" on success
};

struct StatsRequest {};

struct StatsResponse {
  std::string json;  // shard ServerStats::to_json / frontend aggregate
};

/// One finished span pulled from a remote process's tracer buffer.
/// Timestamps are microseconds on the *producer's* tracer epoch; the
/// collector maps them into its own epoch via ProcessTrace's offset.
struct WireSpan {
  std::string name;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t depth = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// One process's span buffer plus what the collector needs to merge it:
/// the real pid and process name for per-process trace lanes, the
/// producer's tracer clock reading (`now_us`, taken while answering the
/// export) for ping-RTT-midpoint clock alignment, and the dropped count
/// so truncation is never silent.
struct ProcessTrace {
  std::uint32_t pid = 0;
  std::string name;              // obs::process_name() of the producer
  double now_us = 0.0;           // producer's tracer clock at export
  double align_offset_us = 0.0;  // collector-filled: add to every ts_us
                                 // to land on the collector's epoch
  std::uint64_t dropped = 0;     // spans lost to buffer cap/frame budget
  std::vector<WireSpan> spans;
};

/// Pull the peer's span buffer (frontend -> shard, or client ->
/// frontend, where the frontend answers with every process's trace).
struct TraceExportRequest {};

struct TraceExportResponse {
  std::vector<ProcessTrace> processes;
};

/// Pull the peer's structured metrics surface. A shard answers with its
/// own registry snapshot; a frontend answers with its own snapshot plus
/// one per reachable shard, each labeled and annotated (endpoint,
/// health, flaps, version) — the metrics-federation counterpart of the
/// opaque StatsResponse JSON.
struct MetricsRequest {};

struct MetricsResponse {
  std::vector<obs::MetricsSnapshot> snapshots;
};

// ------------------------------------------------- encoding / decoding

/// Appends fixed-width little-endian scalars and length-prefixed blobs.
class FrameWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);             // u32 length + bytes
  void floats(const std::vector<float>& v);   // u32 count + raw floats

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads the same encoding back; every accessor throws ProtocolError
/// on underflow instead of reading past the payload.
class FrameReader {
 public:
  explicit FrameReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  std::string str();
  std::vector<float> floats();

  std::size_t remaining() const { return buf_.size() - pos_; }
  /// Throws ProtocolError when payload bytes are left over (a frame
  /// must be consumed exactly).
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// First byte of a payload; throws on an empty or unknown-typed frame.
MsgType peek_type(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode(const PredictRequest& m);
std::vector<std::uint8_t> encode(const PredictResponse& m);
std::vector<std::uint8_t> encode(const Ping& m);
std::vector<std::uint8_t> encode(const Pong& m);
std::vector<std::uint8_t> encode(const ReloadRequest& m);
std::vector<std::uint8_t> encode(const ReloadResponse& m);
std::vector<std::uint8_t> encode(const StatsRequest& m);
std::vector<std::uint8_t> encode(const StatsResponse& m);
std::vector<std::uint8_t> encode(const TraceExportRequest& m);
std::vector<std::uint8_t> encode(const TraceExportResponse& m);
std::vector<std::uint8_t> encode(const MetricsRequest& m);
std::vector<std::uint8_t> encode(const MetricsResponse& m);

/// Each decode checks the type byte and consumes the payload exactly.
PredictRequest decode_predict_request(const std::vector<std::uint8_t>& p);
PredictResponse decode_predict_response(const std::vector<std::uint8_t>& p);
Ping decode_ping(const std::vector<std::uint8_t>& p);
Pong decode_pong(const std::vector<std::uint8_t>& p);
ReloadRequest decode_reload_request(const std::vector<std::uint8_t>& p);
ReloadResponse decode_reload_response(const std::vector<std::uint8_t>& p);
StatsRequest decode_stats_request(const std::vector<std::uint8_t>& p);
StatsResponse decode_stats_response(const std::vector<std::uint8_t>& p);
TraceExportRequest decode_trace_export_request(
    const std::vector<std::uint8_t>& p);
TraceExportResponse decode_trace_export_response(
    const std::vector<std::uint8_t>& p);
MetricsRequest decode_metrics_request(const std::vector<std::uint8_t>& p);
MetricsResponse decode_metrics_response(const std::vector<std::uint8_t>& p);

}  // namespace taglets::fleet
