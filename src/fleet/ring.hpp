// Consistent-hash ring for shard routing. Each node (a shard replica
// group) is projected onto the ring at `vnodes` pseudo-random points;
// a key routes to the first node point clockwise from hash(key). The
// properties the fleet depends on — and tests/property_test.cpp checks:
//
//  * determinism: node set + key -> same node in every process (the
//    hash is our own splitmix64 mix, not std::hash, which the standard
//    allows to vary between processes);
//  * bounded remapping: adding or removing one of N nodes remaps about
//    K/N of K keys (virtual nodes keep the variance small);
//  * failover order: successors(key) lists every node exactly once, in
//    deterministic ring order, so "skip the Suspect/Dead node and take
//    the next" is the same decision on every frontend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace taglets::fleet {

/// Process-independent 64-bit mix (splitmix64 finalizer).
std::uint64_t mix64(std::uint64_t x);
/// Process-independent string hash (FNV-1a folded through mix64).
std::uint64_t hash_bytes(const std::string& s);

class HashRing {
 public:
  /// `vnodes` points per node; must be >= 1.
  explicit HashRing(std::size_t vnodes = 64);

  /// Idempotent. Throws std::invalid_argument on an empty name.
  void add_node(const std::string& name);
  /// No-op when absent.
  void remove_node(const std::string& name);
  bool contains(const std::string& name) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::vector<std::string> nodes() const { return nodes_; }

  /// Node owning `key`. Throws std::logic_error on an empty ring.
  const std::string& lookup(std::uint64_t key) const;

  /// Every node exactly once, starting at the owner of `key` and
  /// continuing in ring order — the failover candidate sequence.
  std::vector<std::string> successors(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  // index into nodes_
  };
  void rebuild();

  std::size_t vnodes_;
  std::vector<std::string> nodes_;  // sorted for deterministic rebuilds
  std::vector<Point> points_;       // sorted by hash
};

}  // namespace taglets::fleet
