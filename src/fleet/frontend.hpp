// Fleet frontend: the process clients talk to. Routes each predict to
// a shard replica group via the consistent-hash ring, picks a replica
// inside the group by health (Alive first, Unknown optimistically
// next, Suspect as a last resort, Dead never), and fails over — a
// request in flight on a replica whose connection breaks is re-sent to
// the next candidate, so a SIGKILLed shard costs retries, not errors.
//
// Health: one heartbeat thread pings every replica each interval; the
// pong carries queue depth/capacity, so saturation decisions ride on
// shard-reported state. Trackers move Unknown -> Alive -> Suspect ->
// Dead per fleet/health.hpp; when every replica of a group is Dead the
// group is evicted from the ring (the ring never maps to a Dead shard).
// Dead replicas are re-probed at dead_probe_interval_ms: when the
// endpoint answers again the replica re-registers as a new member
// (tracker reset to Unknown) and its group rejoins the ring, so a
// restarted shard recovers without a frontend restart.
//
// Backpressure: a replica whose last pong reported a full queue is
// skipped; if every candidate is saturated (or answers kOverloaded)
// the client gets kOverloaded immediately — the frontend buffers
// nothing. With no routable candidate at all the answer is
// kUnavailable.
//
// Control: reload/stats requests from clients fan out to every replica
// over dedicated one-shot connections (they never head-of-line-block
// the data channels).
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/health.hpp"
#include "fleet/protocol.hpp"
#include "fleet/ring.hpp"
#include "fleet/shard.hpp"  // ReloadOutcome
#include "fleet/socket.hpp"
#include "util/sync.hpp"

namespace taglets::fleet {

/// One shard: a named replica group. The group is the unit of ring
/// placement; its replicas are interchangeable servers of the same
/// key range.
struct GroupSpec {
  std::string name;
  std::vector<std::string> replicas;  // endpoints ("unix:..." / "tcp:...")
};

struct FrontendConfig {
  /// Client-facing listen endpoint.
  std::string endpoint;
  std::vector<GroupSpec> groups;
  HealthPolicy health;
  double heartbeat_interval_ms = 50.0;
  double connect_timeout_ms = 1000.0;
  /// Per-frame socket send/recv budget on replica and client channels.
  double io_timeout_ms = 5000.0;
  std::size_t ring_vnodes = 64;
  /// While a replica is Dead the heartbeat thread re-probes its
  /// endpoint at this interval; a successful connect re-registers the
  /// replica as a brand-new member (tracker back to Unknown) and its
  /// group rejoins the ring. <= 0 disables probing, making Dead
  /// effectively terminal until the frontend restarts.
  double dead_probe_interval_ms = 1000.0;
  /// Structured JSON-lines operational event log (health transitions,
  /// failover drains, dead-replica rejoins, reload broadcasts),
  /// appended to this path. Empty disables.
  std::string event_log_path;

  void validate() const;  // throws std::invalid_argument
};

class Frontend {
 public:
  explicit Frontend(FrontendConfig config);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Bind the client endpoint, start the heartbeat and accept threads.
  void start();
  /// Stop accepting, fail in-flight work deterministically, join all
  /// threads. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Wait until at least `min_alive` replicas are Alive (heartbeats
  /// answered). Returns false on timeout.
  bool wait_until_ready(std::size_t min_alive, std::chrono::milliseconds timeout);

  /// In-process routing entry (the socket front calls this too).
  /// `done` is invoked exactly once — possibly on an internal I/O
  /// thread, possibly before route() returns — with response.id equal
  /// to request.id.
  using Completion = std::function<void(PredictResponse)>;
  void route(PredictRequest request, Completion done);

  /// Broadcast a model reload to every replica (dedicated one-shot
  /// control connections). ok only when every reachable replica
  /// swapped; Dead replicas are skipped and reported in the message.
  ReloadOutcome reload_all(const std::string& path);

  /// Aggregate fleet state as JSON (groups, replica health, versions,
  /// frontend counters).
  std::string stats_json() const;

  /// Pull every reachable shard's span buffer over one-shot control
  /// connections and return it with this process's own, each shard's
  /// clock offset estimated from its export round-trip (ping-RTT
  /// midpoint). Render with render_chrome_trace() for one merged
  /// per-process-lane Chrome trace.
  TraceExportResponse collect_traces();

  /// Metrics federation: this process's structured registry snapshot
  /// plus one per reachable shard (one-shot control connections), each
  /// annotated with group, endpoint, health state, flap and rejoin
  /// context — the structured replacement for the opaque stats JSON.
  MetricsResponse federated_metrics();

  /// Health state of one replica endpoint (kDead for unknown names).
  HealthState replica_state(const std::string& endpoint) const;
  /// Group names currently on the ring (all-Dead groups are evicted).
  std::vector<std::string> ring_groups() const;

 private:
  struct Replica;
  struct RouteTask;
  struct ClientConn;

  void heartbeat_loop();
  void heartbeat_round();
  void accept_loop();
  void client_reader(std::shared_ptr<ClientConn> client);
  void reap_finished_clients();

  /// Health-ordered candidate list for a key: ring successor groups,
  /// replicas Alive < Unknown < Suspect within each, Dead skipped.
  std::vector<Replica*> candidates_for(std::uint64_t key);
  /// Try candidates from task->next onward; completes the task when a
  /// send sticks, or terminally when the list is exhausted.
  void dispatch(std::shared_ptr<RouteTask> task);
  /// Send to one replica; registers the task in the pending map first.
  bool send_to(Replica& replica, const std::shared_ptr<RouteTask>& task);
  /// conn_mu held. Reconnects a broken/unopened channel unless the
  /// tracker is Dead or the frontend is stopping. Never blocks on a
  /// thread join: a broken reader is parked for reap_retired_readers.
  bool ensure_connected_locked(Replica& replica);
  void replica_reader(Replica* replica);
  /// conn_mu held: park the exited reader thread (and its done flag)
  /// on the retired list for the heartbeat thread / stop() to join.
  void retire_reader_locked(Replica& replica);
  /// Join parked reader threads. `wait` joins unconditionally (stop
  /// path); otherwise only threads whose done flag is already set, so
  /// the heartbeat loop never blocks on a still-exiting reader.
  void reap_retired_readers(bool wait);
  /// Heartbeat-thread-only: attempt a reconnect to a Dead replica at
  /// dead_probe_interval_ms; success re-registers it (fresh tracker).
  void probe_dead_replica(Replica& replica, HealthTracker::Clock::time_point now);
  /// Terminal delivery: latency attribution (network vs queue vs
  /// compute, labeled per shard group when `served_by` is known), the
  /// "fleet.request" span, then the client callback — exactly once.
  void complete(const std::shared_ptr<RouteTask>& task, PredictResponse resp,
                Replica* served_by);
  Pong make_aggregate_pong(std::uint64_t seq) const;
  /// Append {"ts_ms":...,"event":type,<fields>} to the event log (no-op
  /// when disabled). `fields` is a pre-rendered JSON fragment.
  void log_event(const std::string& type, const std::string& fields);

  FrontendConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;  // fixed after ctor
  std::unordered_map<std::string, Replica*> by_endpoint_;
  std::unordered_map<std::string, std::vector<Replica*>> group_members_;

  mutable util::Mutex ring_mu_{"fleet.frontend.ring",
                               util::lockrank::kFleetFrontendRing};
  HashRing ring_ TAGLETS_GUARDED_BY(ring_mu_);

  std::atomic<std::uint64_t> next_wire_id_{1};
  std::atomic<std::uint64_t> next_ping_seq_{1};
  std::atomic<std::uint64_t> next_trace_seq_{1};

  util::Mutex event_mu_{"fleet.frontend.events",
                        util::lockrank::kFleetFrontendEvents};
  std::unique_ptr<std::ofstream> event_log_;  // null when disabled

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::thread heartbeat_thread_;
  util::Mutex heartbeat_mu_{"fleet.frontend.heartbeat",
                            util::lockrank::kFleetFrontendHeartbeat};
  util::CondVar heartbeat_cv_;

  util::Mutex clients_mu_{"fleet.frontend.clients",
                          util::lockrank::kFleetFrontendClients};
  std::vector<std::shared_ptr<ClientConn>> clients_
      TAGLETS_GUARDED_BY(clients_mu_);

  /// Reader threads of broken channels, parked until a single owner
  /// (heartbeat thread, or stop()) joins them outside every conn_mu.
  /// The paired flag is set as the thread's last act, so a reap with
  /// wait=false never blocks. Joining a reader from another reader's
  /// exit path (two replicas failing over into each other) or under a
  /// conn_mu the exiting reader needs would deadlock — see
  /// ensure_connected_locked.
  util::Mutex retired_mu_{"fleet.frontend.retired",
                          util::lockrank::kFleetFrontendRetired};
  std::vector<std::pair<std::thread, std::shared_ptr<std::atomic<bool>>>>
      retired_readers_ TAGLETS_GUARDED_BY(retired_mu_);

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  util::Mutex lifecycle_mu_{"fleet.frontend.lifecycle",
                            util::lockrank::kFleetFrontendLifecycle};

  // Cached registry references (fleet.frontend.* namespace).
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* requests_ok_total_ = nullptr;
  obs::Counter* failovers_total_ = nullptr;
  obs::Counter* overloaded_total_ = nullptr;
  obs::Counter* unavailable_total_ = nullptr;
  obs::Counter* evicted_groups_total_ = nullptr;
  obs::Counter* dead_rejoins_total_ = nullptr;
  obs::Gauge* alive_replicas_gauge_ = nullptr;
  obs::Gauge* ring_groups_gauge_ = nullptr;
};

}  // namespace taglets::fleet
