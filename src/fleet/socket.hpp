// POSIX socket transport for the fleet protocol. Endpoints are strings:
//
//   unix:/path/to.sock       Unix-domain stream socket
//   tcp:127.0.0.1:9100       loopback/LAN TCP stream socket
//
// Connection is an RAII fd with blocking frame I/O under poll()-based
// deadlines: send_frame prefixes the 4-byte little-endian length,
// recv_frame reads exactly one frame or reports a clean EOF. Partial
// reads/writes are always resumed — a frame either transfers whole or
// the connection is reported broken, never a torn message. All methods
// throw SocketError on transport failure; a peer that vanishes
// mid-frame (SIGKILL failover testing does exactly this) surfaces as
// SocketError/EOF on the next I/O, not as corrupted data.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace taglets::fleet {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what)
      : std::runtime_error("fleet socket: " + what) {}
};

/// Parsed endpoint; see file comment for the accepted spellings.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;       // kUnix
  std::string host;       // kTcp
  std::uint16_t port = 0; // kTcp

  /// Throws SocketError on an unrecognized spec.
  static Endpoint parse(const std::string& spec);
  std::string to_string() const;
};

/// One connected stream socket (client side of connect() or one
/// accept()ed peer). Movable, not copyable; closes on destruction.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connect to `endpoint`, waiting at most `timeout` for the TCP/Unix
  /// handshake. Throws SocketError on refusal or timeout.
  static Connection connect(const Endpoint& endpoint,
                            std::chrono::milliseconds timeout);

  bool valid() const { return fd_ >= 0; }
  void close();
  /// shutdown(2) both directions: any thread blocked in recv_frame /
  /// send_frame on this connection wakes with EOF/SocketError, while
  /// the fd itself stays valid (safe to call from another thread,
  /// unlike close()). Idempotent.
  void shutdown_rw();

  /// Write one length-prefixed frame; resumes partial writes. Throws
  /// SocketError when the peer is gone or `timeout` elapses mid-write.
  void send_frame(const std::vector<std::uint8_t>& payload,
                  std::chrono::milliseconds timeout);

  /// Read one frame. Returns std::nullopt on clean EOF at a frame
  /// boundary (peer closed). Throws SocketError on timeout, a torn
  /// frame (EOF mid-payload), or an oversized length prefix.
  std::optional<std::vector<std::uint8_t>> recv_frame(
      std::chrono::milliseconds timeout);

 private:
  void write_all(const std::uint8_t* data, std::size_t n,
                 std::chrono::milliseconds timeout);
  /// Reads exactly n bytes; returns false on EOF before the first byte
  /// when eof_ok, throws otherwise.
  bool read_all(std::uint8_t* data, std::size_t n,
                std::chrono::milliseconds timeout, bool eof_ok);

  int fd_ = -1;
};

/// Listening socket bound to an endpoint. For unix: endpoints the
/// socket file is unlinked on bind (stale file from a killed process)
/// and on destruction.
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one peer, waiting at most `timeout`; std::nullopt on
  /// timeout or after shutdown(). Throws SocketError on hard failure.
  std::optional<Connection> accept(std::chrono::milliseconds timeout);

  /// Unblock pending/future accepts (thread-safe, idempotent); accept
  /// then returns std::nullopt immediately.
  void shutdown();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Endpoint endpoint_;
  int fd_ = -1;
  int wake_read_ = -1;   // self-pipe: shutdown() wakes poll()
  int wake_write_ = -1;
};

}  // namespace taglets::fleet
