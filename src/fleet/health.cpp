#include "fleet/health.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace taglets::fleet {

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kUnknown: return "unknown";
    case HealthState::kAlive: return "alive";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kDead: return "dead";
  }
  return "?";
}

bool transition_valid(HealthState from, HealthState to) {
  if (from == to) return true;
  switch (from) {
    case HealthState::kUnknown:
      return to == HealthState::kAlive;
    case HealthState::kAlive:
      return to == HealthState::kSuspect;
    case HealthState::kSuspect:
      return to == HealthState::kAlive || to == HealthState::kDead;
    case HealthState::kDead:
      return false;  // terminal
  }
  return false;
}

void HealthPolicy::validate() const {
  if (suspect_after_ms <= 0.0 || dead_after_ms <= suspect_after_ms) {
    throw std::invalid_argument(
        "HealthPolicy: need 0 < suspect_after_ms < dead_after_ms");
  }
  if (failure_threshold == 0) {
    throw std::invalid_argument("HealthPolicy: failure_threshold must be >= 1");
  }
}

HealthTracker::HealthTracker(HealthPolicy policy) : policy_(policy) {
  policy_.validate();
}

void HealthTracker::move_to(HealthState next, Clock::time_point now) {
  if (state_ == next) return;
  TAGLETS_CHECK(transition_valid(state_, next),
                std::string("HealthTracker: invalid transition ") +
                    health_state_name(state_) + " -> " +
                    health_state_name(next));
  // Cap flap history: keep the machine's memory bounded under a
  // replica that oscillates Alive <-> Suspect for hours.
  if (transitions_.size() >= 64) {
    transitions_.erase(transitions_.begin());
  }
  transitions_.push_back({state_, next, now});
  state_ = next;
}

void HealthTracker::record_success(Clock::time_point now) {
  util::MutexLock lock(mu_);
  if (state_ == HealthState::kDead) return;  // terminal
  last_success_ = now;
  ever_succeeded_ = true;
  consecutive_failures_ = 0;
  move_to(HealthState::kAlive, now);
}

void HealthTracker::record_failure(Clock::time_point now) {
  util::MutexLock lock(mu_);
  if (state_ == HealthState::kDead) return;
  ++consecutive_failures_;
  if (state_ == HealthState::kAlive &&
      consecutive_failures_ >= policy_.failure_threshold) {
    move_to(HealthState::kSuspect, now);
  }
}

void HealthTracker::tick(Clock::time_point now) {
  util::MutexLock lock(mu_);
  if (state_ == HealthState::kDead || !ever_succeeded_) {
    // Unknown never times out into Suspect/Dead: a node that was never
    // reachable is simply not yet a member (see header diagram).
    return;
  }
  const double silence_ms =
      std::chrono::duration<double, std::milli>(now - last_success_).count();
  if (state_ == HealthState::kAlive && silence_ms > policy_.suspect_after_ms) {
    move_to(HealthState::kSuspect, now);
  }
  // Separate `if`, not else: one late tick may legally step
  // Alive -> Suspect -> Dead when silence already exceeds both bounds.
  if (state_ == HealthState::kSuspect && silence_ms > policy_.dead_after_ms) {
    move_to(HealthState::kDead, now);
  }
}

void HealthTracker::reset() {
  util::MutexLock lock(mu_);
  state_ = HealthState::kUnknown;
  last_success_ = {};
  ever_succeeded_ = false;
  consecutive_failures_ = 0;
  transitions_.clear();
}

HealthState HealthTracker::state() const {
  util::MutexLock lock(mu_);
  return state_;
}

bool HealthTracker::routable() const {
  util::MutexLock lock(mu_);
  return state_ == HealthState::kAlive || state_ == HealthState::kSuspect;
}

std::uint32_t HealthTracker::consecutive_failures() const {
  util::MutexLock lock(mu_);
  return consecutive_failures_;
}

std::vector<HealthTracker::Transition> HealthTracker::transitions() const {
  util::MutexLock lock(mu_);
  return transitions_;
}

}  // namespace taglets::fleet
