#include "fleet/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace taglets::fleet {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  TAGLETS_CHECK_NE(vnodes_, 0, "HashRing: vnodes must be >= 1");
}

void HashRing::add_node(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("HashRing::add_node: empty name");
  }
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), name);
  if (it != nodes_.end() && *it == name) return;
  nodes_.insert(it, name);
  rebuild();
}

void HashRing::remove_node(const std::string& name) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), name);
  if (it == nodes_.end() || *it != name) return;
  nodes_.erase(it);
  rebuild();
}

bool HashRing::contains(const std::string& name) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), name);
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(nodes_.size() * vnodes_);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    const std::uint64_t base = hash_bytes(nodes_[n]);
    for (std::size_t v = 0; v < vnodes_; ++v) {
      // Point position depends only on (node name, vnode index): a
      // node's points never move when other nodes come or go, which is
      // what bounds remapping to the departed/arrived node's arcs.
      points_.push_back({mix64(base + v), n});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.node < b.node;  // 64-bit collisions: deterministic order
  });
}

const std::string& HashRing::lookup(std::uint64_t key) const {
  if (points_.empty()) throw std::logic_error("HashRing::lookup: empty ring");
  const std::uint64_t h = mix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return nodes_[it->node];
}

std::vector<std::string> HashRing::successors(std::uint64_t key) const {
  std::vector<std::string> out;
  if (points_.empty()) return out;
  const std::uint64_t h = mix64(key);
  auto start = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (start == points_.end()) start = points_.begin();
  std::vector<bool> seen(nodes_.size(), false);
  auto it = start;
  do {
    if (!seen[it->node]) {
      seen[it->node] = true;
      out.push_back(nodes_[it->node]);
      if (out.size() == nodes_.size()) break;
    }
    ++it;
    if (it == points_.end()) it = points_.begin();
  } while (it != start);
  return out;
}

}  // namespace taglets::fleet
