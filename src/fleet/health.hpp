// Replica health state machine, modeled on the heartbeat/membership
// specs referenced in SNIPPETS.md (EK-KOR2): the only valid edges are
//
//        heartbeat            silence > suspect_after
//   Unknown ------> Alive <---------------------------> Suspect
//                                                          |
//                                  silence > dead_after    v
//                                                         Dead (terminal)
//
// Alive -> Suspect also fires after `failure_threshold` consecutive
// request failures (a replica can be heartbeating yet failing work).
// Suspect -> Alive requires a successful contact; Dead is terminal —
// a revived process re-registers as a new tracker, which is what
// reset() implements in place. transition_valid()
// is the machine's ground truth and tests/property_test.cpp asserts
// every transition a tracker ever takes is in it.
//
// Time is passed in (steady-clock points), never read inside, so tests
// drive the machine deterministically.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/sync.hpp"

namespace taglets::fleet {

enum class HealthState : std::uint8_t { kUnknown = 0, kAlive, kSuspect, kDead };

const char* health_state_name(HealthState s);

/// True for edges the machine may take (self-edges included: repeated
/// heartbeats keep a node Alive).
bool transition_valid(HealthState from, HealthState to);

struct HealthPolicy {
  /// Silence after the last successful contact before Alive -> Suspect.
  double suspect_after_ms = 250.0;
  /// Silence before Suspect -> Dead (measured from last success too,
  /// so must be > suspect_after_ms).
  double dead_after_ms = 1000.0;
  /// Consecutive request/heartbeat failures before Alive -> Suspect
  /// even without silence.
  std::uint32_t failure_threshold = 3;

  void validate() const;  // throws std::invalid_argument
};

/// One replica's tracker. Thread-safe: the heartbeat thread, request
/// path, and metric readers may call concurrently.
class HealthTracker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit HealthTracker(HealthPolicy policy = {});

  /// Successful contact (heartbeat reply or served request).
  /// Unknown/Suspect -> Alive; Dead stays Dead.
  void record_success(Clock::time_point now);
  /// Failed contact (broken connection, timeout, error reply).
  void record_failure(Clock::time_point now);
  /// Apply the timing thresholds at `now` (heartbeat tick).
  void tick(Clock::time_point now);

  /// Re-register the replica as a brand-new member: back to Unknown
  /// with all history cleared. This is how a revived process escapes
  /// terminal Dead — the state machine itself never takes a Dead -> *
  /// edge (transition_valid stays the ground truth); the tracker is
  /// simply replaced, per the header diagram's re-registration rule.
  void reset();

  HealthState state() const;
  /// Alive or Suspect — may still be routed to (Suspect only as a
  /// last resort; the router prefers Alive).
  bool routable() const;
  std::uint32_t consecutive_failures() const;

  struct Transition {
    HealthState from;
    HealthState to;
    Clock::time_point at;
  };
  /// Every state change taken so far, in order (bounded: the machine
  /// has at most 3 forward edges plus Alive<->Suspect flaps; flap
  /// history is capped at 64 entries, oldest dropped).
  std::vector<Transition> transitions() const;

 private:
  void move_to(HealthState next, Clock::time_point now)
      TAGLETS_REQUIRES(mu_);

  HealthPolicy policy_;
  mutable util::Mutex mu_{"fleet.health", util::lockrank::kFleetHealth};
  HealthState state_ TAGLETS_GUARDED_BY(mu_) = HealthState::kUnknown;
  Clock::time_point last_success_ TAGLETS_GUARDED_BY(mu_){};
  bool ever_succeeded_ TAGLETS_GUARDED_BY(mu_) = false;
  std::uint32_t consecutive_failures_ TAGLETS_GUARDED_BY(mu_) = 0;
  std::vector<Transition> transitions_ TAGLETS_GUARDED_BY(mu_);
};

}  // namespace taglets::fleet
