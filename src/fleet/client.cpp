#include "fleet/client.hpp"

#include <stdexcept>
#include <utility>

namespace taglets::fleet {

namespace {

std::chrono::milliseconds ms(double v) {
  return std::chrono::milliseconds(static_cast<long>(v));
}

constexpr std::chrono::milliseconds kIdleRecvBudget{3'600'000};
/// Reload covers a full model load + server start on the far side.
constexpr std::chrono::milliseconds kReloadReplyBudget{60'000};

}  // namespace

/// Single-flight control reply slots; armed/resolved under pending_mu_.
struct FleetClient::Waiters {
  bool pong_armed = false;
  std::promise<Pong> pong;
  bool reload_armed = false;
  std::promise<ReloadResponse> reload;
  bool stats_armed = false;
  std::promise<StatsResponse> stats;
  bool trace_armed = false;
  std::promise<TraceExportResponse> trace;
  bool metrics_armed = false;
  std::promise<MetricsResponse> metrics;
};

FleetClient::FleetClient(FleetClientConfig config)
    : config_(std::move(config)), waiters_(std::make_unique<Waiters>()) {
  conn_ = Connection::connect(Endpoint::parse(config_.endpoint),
                              ms(config_.connect_timeout_ms));
  reader_ = std::thread([this] { reader_loop(); });
}

FleetClient::~FleetClient() { close(); }

void FleetClient::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  conn_.shutdown_rw();  // reader wakes, fails anything still pending
  // The reader takes pending_mu_ to resolve futures; joining while
  // holding it (or anything below it) would recreate the PR 7 shape.
  util::check_join_safe(util::lockrank::kFleetClientPending,
                        "FleetClient::close");
  if (reader_.joinable()) reader_.join();
  conn_.close();
}

void FleetClient::send_locked_checked(
    const std::vector<std::uint8_t>& frame) {
  if (broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    throw SocketError("connection closed");
  }
  util::MutexLock lock(write_mu_);
  conn_.send_frame(frame, ms(config_.io_timeout_ms));
}

std::future<PredictResponse> FleetClient::submit(std::vector<float> features,
                                                 std::uint64_t routing_key,
                                                 double deadline_ms,
                                                 std::uint64_t trace_id) {
  PredictRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.routing_key = routing_key;
  request.deadline_ms = deadline_ms;
  request.trace_id = trace_id;
  request.features = std::move(features);

  std::promise<PredictResponse> promise;
  std::future<PredictResponse> future = promise.get_future();
  {
    util::MutexLock lock(pending_mu_);
    pending_.emplace(request.id, std::move(promise));
  }
  try {
    send_locked_checked(encode(request));
  } catch (const SocketError& e) {
    std::promise<PredictResponse> orphan;
    bool mine = false;
    {
      util::MutexLock lock(pending_mu_);
      const auto it = pending_.find(request.id);
      if (it != pending_.end()) {
        orphan = std::move(it->second);
        pending_.erase(it);
        mine = true;
      }
    }
    if (mine) {
      PredictResponse resp;
      resp.id = request.id;
      resp.status = Status::kUnavailable;
      resp.error = e.what();
      orphan.set_value(std::move(resp));
    }
    conn_.shutdown_rw();
  }
  return future;
}

PredictResponse FleetClient::predict(std::vector<float> features,
                                     std::uint64_t routing_key,
                                     double deadline_ms,
                                     std::uint64_t trace_id) {
  return submit(std::move(features), routing_key, deadline_ms, trace_id)
      .get();
}

Pong FleetClient::ping() {
  util::MutexLock control(control_mu_);
  std::future<Pong> future;
  {
    util::MutexLock lock(pending_mu_);
    if (broken_.load(std::memory_order_acquire)) {
      throw SocketError("connection closed");
    }
    waiters_->pong = std::promise<Pong>();
    future = waiters_->pong.get_future();
    waiters_->pong_armed = true;
  }
  Ping ping;
  ping.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  try {
    send_locked_checked(encode(ping));
  } catch (const SocketError&) {
    util::MutexLock lock(pending_mu_);
    waiters_->pong_armed = false;
    throw;
  }
  if (future.wait_for(ms(config_.io_timeout_ms)) !=
      std::future_status::ready) {
    util::MutexLock lock(pending_mu_);
    if (waiters_->pong_armed) {
      waiters_->pong_armed = false;
      throw SocketError("ping reply timeout");
    }
    // Reader resolved it between the timeout and the lock: take it.
  }
  return future.get();
}

ReloadResponse FleetClient::reload(const std::string& path) {
  util::MutexLock control(control_mu_);
  std::future<ReloadResponse> future;
  {
    util::MutexLock lock(pending_mu_);
    if (broken_.load(std::memory_order_acquire)) {
      throw SocketError("connection closed");
    }
    waiters_->reload = std::promise<ReloadResponse>();
    future = waiters_->reload.get_future();
    waiters_->reload_armed = true;
  }
  ReloadRequest request;
  request.path = path;
  try {
    send_locked_checked(encode(request));
  } catch (const SocketError&) {
    util::MutexLock lock(pending_mu_);
    waiters_->reload_armed = false;
    throw;
  }
  if (future.wait_for(kReloadReplyBudget) != std::future_status::ready) {
    util::MutexLock lock(pending_mu_);
    if (waiters_->reload_armed) {
      waiters_->reload_armed = false;
      throw SocketError("reload reply timeout");
    }
  }
  return future.get();
}

std::string FleetClient::stats() {
  util::MutexLock control(control_mu_);
  std::future<StatsResponse> future;
  {
    util::MutexLock lock(pending_mu_);
    if (broken_.load(std::memory_order_acquire)) {
      throw SocketError("connection closed");
    }
    waiters_->stats = std::promise<StatsResponse>();
    future = waiters_->stats.get_future();
    waiters_->stats_armed = true;
  }
  try {
    send_locked_checked(encode(StatsRequest{}));
  } catch (const SocketError&) {
    util::MutexLock lock(pending_mu_);
    waiters_->stats_armed = false;
    throw;
  }
  if (future.wait_for(ms(config_.io_timeout_ms)) !=
      std::future_status::ready) {
    util::MutexLock lock(pending_mu_);
    if (waiters_->stats_armed) {
      waiters_->stats_armed = false;
      throw SocketError("stats reply timeout");
    }
  }
  return future.get().json;
}

TraceExportResponse FleetClient::trace_export() {
  util::MutexLock control(control_mu_);
  std::future<TraceExportResponse> future;
  {
    util::MutexLock lock(pending_mu_);
    if (broken_.load(std::memory_order_acquire)) {
      throw SocketError("connection closed");
    }
    waiters_->trace = std::promise<TraceExportResponse>();
    future = waiters_->trace.get_future();
    waiters_->trace_armed = true;
  }
  try {
    send_locked_checked(encode(TraceExportRequest{}));
  } catch (const SocketError&) {
    util::MutexLock lock(pending_mu_);
    waiters_->trace_armed = false;
    throw;
  }
  if (future.wait_for(ms(config_.io_timeout_ms)) !=
      std::future_status::ready) {
    util::MutexLock lock(pending_mu_);
    if (waiters_->trace_armed) {
      waiters_->trace_armed = false;
      throw SocketError("trace export reply timeout");
    }
  }
  return future.get();
}

MetricsResponse FleetClient::fleet_metrics() {
  util::MutexLock control(control_mu_);
  std::future<MetricsResponse> future;
  {
    util::MutexLock lock(pending_mu_);
    if (broken_.load(std::memory_order_acquire)) {
      throw SocketError("connection closed");
    }
    waiters_->metrics = std::promise<MetricsResponse>();
    future = waiters_->metrics.get_future();
    waiters_->metrics_armed = true;
  }
  try {
    send_locked_checked(encode(MetricsRequest{}));
  } catch (const SocketError&) {
    util::MutexLock lock(pending_mu_);
    waiters_->metrics_armed = false;
    throw;
  }
  if (future.wait_for(ms(config_.io_timeout_ms)) !=
      std::future_status::ready) {
    util::MutexLock lock(pending_mu_);
    if (waiters_->metrics_armed) {
      waiters_->metrics_armed = false;
      throw SocketError("metrics reply timeout");
    }
  }
  return future.get();
}

void FleetClient::reader_loop() {
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = conn_.recv_frame(kIdleRecvBudget);
    } catch (const SocketError&) {
      break;
    }
    if (!frame) break;
    try {
      switch (peek_type(*frame)) {
        case MsgType::kPredictResponse: {
          PredictResponse resp = decode_predict_response(*frame);
          std::promise<PredictResponse> promise;
          bool found = false;
          {
            util::MutexLock lock(pending_mu_);
            const auto it = pending_.find(resp.id);
            if (it != pending_.end()) {
              promise = std::move(it->second);
              pending_.erase(it);
              found = true;
            }
          }
          if (found) promise.set_value(std::move(resp));
          break;
        }
        case MsgType::kPong: {
          const Pong pong = decode_pong(*frame);
          util::MutexLock lock(pending_mu_);
          if (waiters_->pong_armed) {
            waiters_->pong_armed = false;
            waiters_->pong.set_value(pong);
          }
          break;
        }
        case MsgType::kReloadResponse: {
          const ReloadResponse resp = decode_reload_response(*frame);
          util::MutexLock lock(pending_mu_);
          if (waiters_->reload_armed) {
            waiters_->reload_armed = false;
            waiters_->reload.set_value(resp);
          }
          break;
        }
        case MsgType::kStatsResponse: {
          const StatsResponse resp = decode_stats_response(*frame);
          util::MutexLock lock(pending_mu_);
          if (waiters_->stats_armed) {
            waiters_->stats_armed = false;
            waiters_->stats.set_value(resp);
          }
          break;
        }
        case MsgType::kTraceExportResponse: {
          TraceExportResponse resp = decode_trace_export_response(*frame);
          util::MutexLock lock(pending_mu_);
          if (waiters_->trace_armed) {
            waiters_->trace_armed = false;
            waiters_->trace.set_value(std::move(resp));
          }
          break;
        }
        case MsgType::kMetricsResponse: {
          MetricsResponse resp = decode_metrics_response(*frame);
          util::MutexLock lock(pending_mu_);
          if (waiters_->metrics_armed) {
            waiters_->metrics_armed = false;
            waiters_->metrics.set_value(std::move(resp));
          }
          break;
        }
        default:
          break;
      }
    } catch (const ProtocolError&) {
      break;
    }
  }
  broken_.store(true, std::memory_order_release);
  fail_all_pending();
}

void FleetClient::fail_all_pending() {
  std::unordered_map<std::uint64_t, std::promise<PredictResponse>> orphans;
  {
    util::MutexLock lock(pending_mu_);
    orphans.swap(pending_);
    const auto gone =
        std::make_exception_ptr(SocketError("connection lost"));
    if (waiters_->pong_armed) {
      waiters_->pong_armed = false;
      waiters_->pong.set_exception(gone);
    }
    if (waiters_->reload_armed) {
      waiters_->reload_armed = false;
      waiters_->reload.set_exception(gone);
    }
    if (waiters_->stats_armed) {
      waiters_->stats_armed = false;
      waiters_->stats.set_exception(gone);
    }
    if (waiters_->trace_armed) {
      waiters_->trace_armed = false;
      waiters_->trace.set_exception(gone);
    }
    if (waiters_->metrics_armed) {
      waiters_->metrics_armed = false;
      waiters_->metrics.set_exception(gone);
    }
  }
  for (auto& [id, promise] : orphans) {
    PredictResponse resp;
    resp.id = id;
    resp.status = Status::kUnavailable;
    resp.error = "connection lost";
    promise.set_value(std::move(resp));
  }
}

}  // namespace taglets::fleet
