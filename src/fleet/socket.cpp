#include "fleet/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "fleet/protocol.hpp"

namespace taglets::fleet {

namespace {

std::string errno_text(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

/// poll() one fd for `events`, honouring the deadline. Returns false on
/// timeout. EINTR retries with the remaining budget.
bool poll_fd(int fd, short events, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw SocketError(errno_text("poll"));
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw SocketError(errno_text("fcntl O_NONBLOCK"));
  }
}

void set_cloexec(int fd) {
  // Fleet tests fork+exec child shards; leaking a listener fd into a
  // child keeps the endpoint bound after the parent dies.
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

struct SockAddr {
  union {
    sockaddr base;
    sockaddr_un un;
    sockaddr_in in;
  } addr{};
  socklen_t len = 0;
  int family = AF_UNIX;
};

SockAddr make_addr(const Endpoint& endpoint) {
  SockAddr out;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    out.family = AF_UNIX;
    out.addr.un.sun_family = AF_UNIX;
    if (endpoint.path.size() + 1 > sizeof(out.addr.un.sun_path)) {
      throw SocketError("unix path too long: " + endpoint.path);
    }
    std::memcpy(out.addr.un.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                     endpoint.path.size() + 1);
  } else {
    out.family = AF_INET;
    out.addr.in.sin_family = AF_INET;
    out.addr.in.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &out.addr.in.sin_addr) !=
        1) {
      throw SocketError("bad tcp host (use a dotted IPv4 address): " +
                        endpoint.host);
    }
    out.len = sizeof(sockaddr_in);
  }
  return out;
}

}  // namespace

// -------------------------------------------------------------- Endpoint

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint e;
  if (spec.rfind("unix:", 0) == 0) {
    e.kind = Kind::kUnix;
    e.path = spec.substr(5);
    if (e.path.empty()) throw SocketError("empty unix path in: " + spec);
    return e;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    e.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
      throw SocketError("tcp endpoint must be tcp:host:port, got: " + spec);
    }
    e.host = rest.substr(0, colon);
    // Strict digits-only port: strtol alone would accept leading
    // whitespace/sign and silently ignore trailing garbage ("80xyz").
    const char* digits = rest.c_str() + colon + 1;
    if (*digits < '0' || *digits > '9') {
      throw SocketError("bad tcp port in: " + spec);
    }
    char* end = nullptr;
    const long port = std::strtol(digits, &end, 10);
    if (*end != '\0' || port <= 0 || port > 65535) {
      throw SocketError("bad tcp port in: " + spec);
    }
    e.port = static_cast<std::uint16_t>(port);
    return e;
  }
  throw SocketError("endpoint must start with unix: or tcp:, got: " + spec);
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// ------------------------------------------------------------ Connection

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::shutdown_rw() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

Connection Connection::connect(const Endpoint& endpoint,
                               std::chrono::milliseconds timeout) {
  const SockAddr addr = make_addr(endpoint);
  const int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError(errno_text("socket"));
  Connection conn(fd);
  set_cloexec(fd);
  set_nonblocking(fd);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  if (::connect(fd, &addr.addr.base, addr.len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      throw SocketError("connect " + endpoint.to_string() + ": " +
                        std::strerror(errno));
    }
    if (!poll_fd(fd, POLLOUT, deadline)) {
      throw SocketError("connect timeout: " + endpoint.to_string());
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      throw SocketError("connect " + endpoint.to_string() + ": " +
                        std::strerror(err != 0 ? err : errno));
    }
  }
  if (addr.family == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return conn;
}

void Connection::write_all(const std::uint8_t* data, std::size_t n,
                           std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc =
        ::send(fd_, data + done, n - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_fd(fd_, POLLOUT, deadline)) {
        throw SocketError("send timeout");
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw SocketError(errno_text("send"));
  }
}

bool Connection::read_all(std::uint8_t* data, std::size_t n,
                          std::chrono::milliseconds timeout, bool eof_ok) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::recv(fd_, data + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (done == 0 && eof_ok) return false;
      throw SocketError("peer closed mid-frame");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_fd(fd_, POLLIN, deadline)) {
        throw SocketError("recv timeout");
      }
      continue;
    }
    if (errno == EINTR) continue;
    throw SocketError(errno_text("recv"));
  }
  return true;
}

void Connection::send_frame(const std::vector<std::uint8_t>& payload,
                            std::chrono::milliseconds timeout) {
  if (!valid()) throw SocketError("send on closed connection");
  if (payload.size() > kMaxFrameBytes) throw SocketError("frame too large");
  std::uint8_t header[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  // Header and payload as one buffer: a frame is one write sequence, so
  // concurrent senders must hold the caller's write lock — see
  // client.cpp / frontend.cpp.
  std::vector<std::uint8_t> wire;
  wire.reserve(4 + payload.size());
  wire.insert(wire.end(), header, header + 4);
  wire.insert(wire.end(), payload.begin(), payload.end());
  write_all(wire.data(), wire.size(), timeout);
}

std::optional<std::vector<std::uint8_t>> Connection::recv_frame(
    std::chrono::milliseconds timeout) {
  if (!valid()) throw SocketError("recv on closed connection");
  std::uint8_t header[4];
  if (!read_all(header, 4, timeout, /*eof_ok=*/true)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (n > kMaxFrameBytes) {
    throw SocketError("oversized frame: " + std::to_string(n) + " bytes");
  }
  std::vector<std::uint8_t> payload(n);
  if (n != 0) read_all(payload.data(), n, timeout, /*eof_ok=*/false);
  return payload;
}

// -------------------------------------------------------------- Listener

Listener::Listener(const Endpoint& endpoint) : endpoint_(endpoint) {
  const SockAddr addr = make_addr(endpoint_);
  fd_ = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd_ < 0) throw SocketError(errno_text("socket"));
  set_cloexec(fd_);
  if (addr.family == AF_UNIX) {
    // A socket file left by a SIGKILLed process would make bind fail
    // forever; unlinking first makes restart-in-place work.
    (void)::unlink(endpoint_.path.c_str());
  } else {
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  if (::bind(fd_, &addr.addr.base, addr.len) < 0) {
    const std::string what =
        "bind " + endpoint_.to_string() + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw SocketError(what);
  }
  if (::listen(fd_, 128) < 0) {
    const std::string what = errno_text("listen");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(what);
  }
  set_nonblocking(fd_);
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw SocketError(errno_text("pipe"));
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_cloexec(wake_read_);
  set_cloexec(wake_write_);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    (void)::unlink(endpoint_.path.c_str());
  }
}

void Listener::shutdown() {
  const std::uint8_t byte = 1;
  // Write end stays open; one byte is enough because accept() never
  // drains the pipe — once woken it stays woken.
  (void)!::write(wake_write_, &byte, 1);
}

std::optional<Connection> Listener::accept(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    struct pollfd pfds[2];
    pfds[0].fd = fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_read_;
    pfds[1].events = POLLIN;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int rc = ::poll(pfds, 2, static_cast<int>(left.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_text("poll"));
    }
    if (rc == 0) return std::nullopt;
    if ((pfds[1].revents & POLLIN) != 0) return std::nullopt;  // shutdown()
    const int peer = ::accept(fd_, nullptr, nullptr);
    if (peer < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;
      }
      throw SocketError(errno_text("accept"));
    }
    set_cloexec(peer);
    set_nonblocking(peer);
    if (endpoint_.kind == Endpoint::Kind::kTcp) {
      const int one = 1;
      (void)::setsockopt(peer, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    return Connection(peer);
  }
}

}  // namespace taglets::fleet
