// One shard of the serving fleet: a socket front over the in-process
// serve::Server. A shard process owns one listening endpoint and
// serves three kinds of traffic on any connection:
//
//  * predict  — decoded, submitted to the active server, answered from
//    a per-connection writer thread (requests pipeline: many predicts
//    may be in flight per connection, responses return in submission
//    order). When the writer's pending window is full the shard
//    answers kOverloaded immediately — backpressure, not buffering.
//  * ping     — answered inline with a pong carrying queue depth,
//    capacity, and outcome counters, so the frontend's health and
//    saturation decisions ride on real shard state.
//  * reload   — zero-downtime model swap (see reload() below).
//  * stats    — the active server's ServerStats JSON.
//
// Hot reload sequence (docs/FLEET.md): load + validate the new
// ServableModel (dimension check; int8 agreement gate when serving
// quantized), start a replacement serve::Server beside the old one,
// flip the active pointer under a writer lock, then close_and_drain()
// the old server and adopt() its still-queued requests into the new
// one. In-flight batches finish on the old model; nothing is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/protocol.hpp"
#include "fleet/socket.hpp"
#include "serve/server.hpp"
#include "util/sync.hpp"

namespace taglets::fleet {

struct ShardConfig {
  /// Endpoint to listen on ("unix:/path" or "tcp:host:port").
  std::string endpoint;
  serve::ServerConfig server;
  /// Per-frame socket send/recv budget.
  double io_timeout_ms = 5000.0;
  /// Max predicts in flight per connection before kOverloaded.
  std::size_t max_inflight_per_connection = 256;
  /// Reload gate when serving int8: max fraction of probe rows whose
  /// int8 argmax may disagree with float32 (mirrors the 1pp
  /// eval::int8_accuracy_gate bound, but label-free — the serving
  /// tier has no labeled data).
  double int8_agree_limit = 0.01;
  std::size_t int8_probe_rows = 256;

  void validate() const;  // throws std::invalid_argument
};

/// Outcome of a reload attempt (also the in-process API result).
struct ReloadOutcome {
  bool ok = false;
  std::uint64_t model_version = 0;  // active version after the attempt
  std::string message;
};

class ShardServer {
 public:
  /// Takes the initial model by value; the active serve::Server copies
  /// it per worker. Throws on invalid config or a bind failure at
  /// start().
  ShardServer(ensemble::ServableModel model, ShardConfig config);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Bind, listen, and start serving. Throws SocketError on bind
  /// failure; no-op when already started.
  void start();
  /// Stop accepting, resolve everything (queued requests fail with
  /// kShutdown), close connections, join all threads. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Swap the serving model to the ServableModel at `path`. Never
  /// takes the shard down: on any validation failure the old model
  /// keeps serving and the outcome says why. Thread-safe; concurrent
  /// reloads serialize.
  ReloadOutcome reload(const std::string& path);

  std::uint64_t model_version() const {
    return model_version_.load(std::memory_order_acquire);
  }
  const std::string& endpoint() const { return config_.endpoint; }
  /// Snapshot of the active server's stats (reload swaps the surface).
  serve::ServerStats::Snapshot stats_snapshot() const;

 private:
  struct ConnectionHandler;

  std::shared_ptr<serve::Server> active() const;
  void accept_loop();
  void reap_finished_handlers();
  Pong make_pong(std::uint64_t seq) const;

  ShardConfig config_;
  std::size_t input_dim_ = 0;
  /// Guards the active-server pointer swap: predict submission holds
  /// it shared, reload holds it unique for the flip — so a submission
  /// that grabbed the old server completes its enqueue before the old
  /// queue closes (no kShutdown window during a swap).
  mutable util::SharedMutex swap_mu_{"fleet.shard.swap",
                                     util::lockrank::kFleetShardSwap};
  std::shared_ptr<serve::Server> active_ TAGLETS_GUARDED_BY(swap_mu_);
  /// Serializes reload().
  util::Mutex reload_mu_{"fleet.shard.reload",
                         util::lockrank::kFleetShardReload};
  std::atomic<std::uint64_t> model_version_{1};
  std::atomic<bool> draining_{false};  // mid-swap, reported in pongs

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  util::Mutex handlers_mu_{"fleet.shard.handlers",
                           util::lockrank::kFleetShardHandlers};
  std::vector<std::unique_ptr<ConnectionHandler>> handlers_
      TAGLETS_GUARDED_BY(handlers_mu_);
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  util::Mutex lifecycle_mu_{"fleet.shard.lifecycle",
                            util::lockrank::kFleetShardLifecycle};

  // Cached registry references (fleet.shard.* namespace).
  obs::Counter* predicts_total_ = nullptr;
  obs::Counter* overloaded_total_ = nullptr;
  obs::Counter* reloads_total_ = nullptr;
  obs::Counter* reload_failures_total_ = nullptr;
  obs::Gauge* model_version_gauge_ = nullptr;
};

/// Label-free int8 validation used by the reload gate: fraction of
/// probe rows (deterministic seed) where the int8 argmax disagrees
/// with float32. Exposed for tests; leaves `model` at Precision::kInt8.
double int8_disagreement_fraction(ensemble::ServableModel& model,
                                  std::size_t probe_rows);

}  // namespace taglets::fleet
