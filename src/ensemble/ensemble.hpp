// Taglet ensembling (Section 3.3). Each taglet returns a probability
// vector per example; the vote matrix V stacks them, and the soft pseudo
// label is the row-mean p_x = (1/|T|) sum_t V_t (Eq. 6).
#pragma once

#include <vector>

#include "modules/module.hpp"
#include "tensor/tensor.hpp"

namespace taglets::ensemble {

/// Vote matrix for a single example: rows = taglets, cols = classes.
tensor::Tensor vote_matrix(std::vector<modules::Taglet>& taglets,
                           const tensor::Tensor& example);

/// Soft pseudo labels for a batch: (n, C) row-stochastic matrix obtained
/// by averaging the taglets' probability outputs (Eq. 6).
tensor::Tensor ensemble_proba(std::vector<modules::Taglet>& taglets,
                              const tensor::Tensor& inputs);

/// Hard labels from the ensemble (argmax of Eq. 6).
std::vector<std::size_t> ensemble_predict(std::vector<modules::Taglet>& taglets,
                                          const tensor::Tensor& inputs);

/// Accuracy of the ensembled prediction against ground truth.
double ensemble_accuracy(std::vector<modules::Taglet>& taglets,
                         const tensor::Tensor& inputs,
                         std::span<const std::size_t> labels);

/// Diagnostics on the ensemble's pseudo labels — the quantities that
/// determine how much signal the distillation stage receives.
struct PseudoLabelStats {
  /// Mean Shannon entropy of the soft pseudo labels (nats); log(C) for
  /// a completely uninformative ensemble, 0 for a fully confident one.
  double mean_entropy = 0.0;
  /// Mean top-class probability of the soft pseudo labels.
  double mean_confidence = 0.0;
  /// Mean pairwise agreement of the taglets' argmax predictions; 1.0
  /// when all taglets vote identically (no diversity), near 1/C for
  /// independent random voters.
  double inter_taglet_agreement = 1.0;
};

PseudoLabelStats pseudo_label_stats(std::vector<modules::Taglet>& taglets,
                                    const tensor::Tensor& inputs);

}  // namespace taglets::ensemble
