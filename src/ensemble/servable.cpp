#include "ensemble/servable.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace taglets::ensemble {

using tensor::Tensor;

ServableModel::ServableModel(nn::Classifier model,
                             std::vector<std::string> class_names)
    : model_(std::move(model)), class_names_(std::move(class_names)) {
  TAGLETS_CHECK_EQ(class_names_.size(), model_.num_classes(),
                   "ServableModel: class name count mismatch");
}

void ServableModel::set_precision(Precision precision) {
  if (precision == Precision::kInt8 && quant_ops_.empty()) {
    // Flatten the encoder + head into a linear program of quantizable
    // steps. Dropout is identity at eval time and is simply dropped;
    // any layer kind this walk does not recognize cannot be served
    // quantized, and silently falling back to float here would make
    // the precision setting a lie — so throw instead.
    std::vector<QuantOp> ops;
    auto add_linear = [&ops](const nn::Linear& linear) {
      QuantOp op;
      op.kind = QuantOp::Kind::kLinear;
      op.weight = tensor::quantize_rows(linear.weight().value);
      op.bias = linear.bias().value;
      ops.push_back(std::move(op));
    };
    auto walk = [&](auto&& self, const nn::Sequential& seq) -> void {
      for (std::size_t i = 0; i < seq.layer_count(); ++i) {
        const nn::Layer& layer = seq.layer(i);
        if (const auto* lin = dynamic_cast<const nn::Linear*>(&layer)) {
          add_linear(*lin);
        } else if (dynamic_cast<const nn::ReLU*>(&layer) != nullptr) {
          ops.push_back(QuantOp{QuantOp::Kind::kRelu, {}, {}});
        } else if (dynamic_cast<const nn::Tanh*>(&layer) != nullptr) {
          ops.push_back(QuantOp{QuantOp::Kind::kTanh, {}, {}});
        } else if (dynamic_cast<const nn::Dropout*>(&layer) != nullptr) {
          continue;
        } else if (const auto* nested =
                       dynamic_cast<const nn::Sequential*>(&layer)) {
          self(self, *nested);
        } else {
          throw std::runtime_error(
              "ServableModel::set_precision: layer kind '" + layer.name() +
              "' has no int8 serving path");
        }
      }
    };
    walk(walk, model_.encoder());
    add_linear(model_.head());
    quant_ops_ = std::move(ops);
  }
  precision_ = precision;
}

Tensor ServableModel::quant_logits(const Tensor& inputs) const {
  Tensor x = inputs;
  for (const QuantOp& op : quant_ops_) {
    switch (op.kind) {
      case QuantOp::Kind::kLinear:
        x = tensor::add_row_broadcast(tensor::matmul_quant(x, op.weight),
                                      op.bias);
        break;
      case QuantOp::Kind::kRelu:
        for (float& v : x.data()) v = v > 0.0f ? v : 0.0f;
        break;
      case QuantOp::Kind::kTanh:
        for (float& v : x.data()) v = std::tanh(v);
        break;
    }
  }
  return x;
}

std::vector<std::size_t> ServableModel::batch_labels(const Tensor& inputs) {
  // One forward pass for the whole batch (the GEMMs inside fan out over
  // the shared pool), then a row-parallel argmax. Rows are independent,
  // so the labels match a serial per-row predict() bit for bit.
  Tensor logits = precision_ == Precision::kInt8
                      ? quant_logits(inputs)
                      : model_.logits(inputs, /*training=*/false);
  std::vector<std::size_t> labels(logits.rows());
  util::parallel_for_ranges(logits.rows(),
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                labels[i] = tensor::argmax(logits.row(i));
                              }
                            });
  return labels;
}

std::size_t ServableModel::predict(const Tensor& example) {
  util::Timer timer;
  Tensor batch = example.is_vector() ? example.reshape(1, example.size())
                                     : example;
  const auto labels = batch_labels(batch);
  latency_.record_ms(timer.elapsed_ms());
  return labels.at(0);
}

const std::string& ServableModel::predict_name(const Tensor& example) {
  return class_names_.at(predict(example));
}

Tensor ServableModel::predict_proba(const Tensor& inputs) {
  util::Timer timer;
  Tensor proba = precision_ == Precision::kInt8
                     ? tensor::softmax(quant_logits(inputs))
                     : model_.predict_proba(inputs);
  latency_.record_ms(timer.elapsed_ms());
  return proba;
}

std::vector<std::size_t> ServableModel::predict_batch(const Tensor& inputs) {
  util::Timer timer;
  auto labels = batch_labels(inputs);
  latency_.record_ms(timer.elapsed_ms());
  return labels;
}

namespace {

// File format: magic, class-name table, then the classifier (whose
// tensors carry their own magic/rank checks — see tensor/serialize.cpp).
constexpr char kMagic[4] = {'T', 'G', 'S', '1'};
// Sanity caps so a corrupted header is reported as such instead of
// turning into a multi-gigabyte allocation.
constexpr std::uint32_t kMaxClasses = 1u << 20;
constexpr std::uint32_t kMaxNameLength = 1u << 12;

[[noreturn]] void load_error(const std::string& path, const std::string& why) {
  throw std::runtime_error("ServableModel::load: " + path + ": " + why);
}

}  // namespace

void ServableModel::save(const std::string& path) const {
  // Atomic write-temp-then-rename: a crash or injected fault
  // (TAGLETS_FAULT=servable.save:N) never leaves a partial model file.
  util::atomic_write_stream(path, "servable.save", [&](std::ostream& out) {
    out.write(kMagic, sizeof(kMagic));
    const std::uint32_t n = static_cast<std::uint32_t>(class_names_.size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const std::string& name : class_names_) {
      const std::uint32_t len = static_cast<std::uint32_t>(name.size());
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(name.data(), len);
    }
    model_.save(out);
    if (!out) {
      throw std::runtime_error("ServableModel::save: write failed for " + path);
    }
  });
}

ServableModel ServableModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ServableModel::load: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    load_error(path, "bad magic (not a servable model file)");
  }
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) load_error(path, "truncated header");
  if (n == 0 || n > kMaxClasses) load_error(path, "corrupt class count");
  std::vector<std::string> names(n);
  for (auto& name : names) {
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in) load_error(path, "truncated class-name table");
    if (len > kMaxNameLength) load_error(path, "corrupt class-name length");
    name.resize(len);
    in.read(name.data(), len);
    if (!in) load_error(path, "truncated class name");
  }
  util::Rng rng(0);
  nn::Classifier model = [&] {
    try {
      return nn::Classifier::load(in, rng);
    } catch (const std::exception& e) {
      load_error(path, e.what());
    }
  }();
  if (model.num_classes() != names.size()) {
    load_error(path, "class-name count (" + std::to_string(names.size()) +
                         ") does not match classifier output dimension (" +
                         std::to_string(model.num_classes()) + ")");
  }
  ServableModel servable(std::move(model), std::move(names));
  if (util::env_flag("TAGLETS_SERVE_INT8")) {
    servable.set_precision(Precision::kInt8);
  }
  return servable;
}

}  // namespace taglets::ensemble
