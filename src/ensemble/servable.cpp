#include "ensemble/servable.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace taglets::ensemble {

using tensor::Tensor;

ServableModel::ServableModel(nn::Classifier model,
                             std::vector<std::string> class_names)
    : model_(std::move(model)), class_names_(std::move(class_names)) {
  TAGLETS_CHECK_EQ(class_names_.size(), model_.num_classes(),
                   "ServableModel: class name count mismatch");
}

std::size_t ServableModel::predict(const Tensor& example) {
  util::Timer timer;
  Tensor batch = example.is_vector() ? example.reshape(1, example.size())
                                     : example;
  const auto labels = model_.predict(batch);
  latency_.record_ms(timer.elapsed_ms());
  return labels.at(0);
}

const std::string& ServableModel::predict_name(const Tensor& example) {
  return class_names_.at(predict(example));
}

Tensor ServableModel::predict_proba(const Tensor& inputs) {
  util::Timer timer;
  Tensor proba = model_.predict_proba(inputs);
  latency_.record_ms(timer.elapsed_ms());
  return proba;
}

std::vector<std::size_t> ServableModel::predict_batch(const Tensor& inputs) {
  util::Timer timer;
  // One forward pass for the whole batch (the GEMMs inside fan out over
  // the shared pool), then a row-parallel argmax. Rows are independent,
  // so the labels match a serial per-row predict() bit for bit.
  Tensor logits = model_.logits(inputs, /*training=*/false);
  std::vector<std::size_t> labels(logits.rows());
  util::parallel_for_ranges(logits.rows(),
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                labels[i] = tensor::argmax(logits.row(i));
                              }
                            });
  latency_.record_ms(timer.elapsed_ms());
  return labels;
}

namespace {

// File format: magic, class-name table, then the classifier (whose
// tensors carry their own magic/rank checks — see tensor/serialize.cpp).
constexpr char kMagic[4] = {'T', 'G', 'S', '1'};
// Sanity caps so a corrupted header is reported as such instead of
// turning into a multi-gigabyte allocation.
constexpr std::uint32_t kMaxClasses = 1u << 20;
constexpr std::uint32_t kMaxNameLength = 1u << 12;

[[noreturn]] void load_error(const std::string& path, const std::string& why) {
  throw std::runtime_error("ServableModel::load: " + path + ": " + why);
}

}  // namespace

void ServableModel::save(const std::string& path) const {
  // Atomic write-temp-then-rename: a crash or injected fault
  // (TAGLETS_FAULT=servable.save:N) never leaves a partial model file.
  util::atomic_write_stream(path, "servable.save", [&](std::ostream& out) {
    out.write(kMagic, sizeof(kMagic));
    const std::uint32_t n = static_cast<std::uint32_t>(class_names_.size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const std::string& name : class_names_) {
      const std::uint32_t len = static_cast<std::uint32_t>(name.size());
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(name.data(), len);
    }
    model_.save(out);
    if (!out) {
      throw std::runtime_error("ServableModel::save: write failed for " + path);
    }
  });
}

ServableModel ServableModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ServableModel::load: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    load_error(path, "bad magic (not a servable model file)");
  }
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) load_error(path, "truncated header");
  if (n == 0 || n > kMaxClasses) load_error(path, "corrupt class count");
  std::vector<std::string> names(n);
  for (auto& name : names) {
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in) load_error(path, "truncated class-name table");
    if (len > kMaxNameLength) load_error(path, "corrupt class-name length");
    name.resize(len);
    in.read(name.data(), len);
    if (!in) load_error(path, "truncated class name");
  }
  util::Rng rng(0);
  nn::Classifier model = [&] {
    try {
      return nn::Classifier::load(in, rng);
    } catch (const std::exception& e) {
      load_error(path, e.what());
    }
  }();
  if (model.num_classes() != names.size()) {
    load_error(path, "class-name count (" + std::to_string(names.size()) +
                         ") does not match classifier output dimension (" +
                         std::to_string(model.num_classes()) + ")");
  }
  return ServableModel(std::move(model), std::move(names));
}

}  // namespace taglets::ensemble
