#include "ensemble/servable.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace taglets::ensemble {

using tensor::Tensor;

ServableModel::ServableModel(nn::Classifier model,
                             std::vector<std::string> class_names)
    : model_(std::move(model)), class_names_(std::move(class_names)) {
  if (class_names_.size() != model_.num_classes()) {
    throw std::invalid_argument("ServableModel: class name count mismatch");
  }
}

std::size_t ServableModel::predict(const Tensor& example) {
  util::Timer timer;
  Tensor batch = example.is_vector() ? example.reshape(1, example.size())
                                     : example;
  const auto labels = model_.predict(batch);
  latency_.record_ms(timer.elapsed_ms());
  return labels.at(0);
}

const std::string& ServableModel::predict_name(const Tensor& example) {
  return class_names_.at(predict(example));
}

Tensor ServableModel::predict_proba(const Tensor& inputs) {
  util::Timer timer;
  Tensor proba = model_.predict_proba(inputs);
  latency_.record_ms(timer.elapsed_ms());
  return proba;
}

std::vector<std::size_t> ServableModel::predict_batch(const Tensor& inputs) {
  util::Timer timer;
  // One forward pass for the whole batch (the GEMMs inside fan out over
  // the shared pool), then a row-parallel argmax. Rows are independent,
  // so the labels match a serial per-row predict() bit for bit.
  Tensor logits = model_.logits(inputs, /*training=*/false);
  std::vector<std::size_t> labels(logits.rows());
  util::parallel_for_ranges(logits.rows(),
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                labels[i] = tensor::argmax(logits.row(i));
                              }
                            });
  latency_.record_ms(timer.elapsed_ms());
  return labels;
}

void ServableModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("ServableModel::save: cannot open " + path);
  const std::uint32_t n = static_cast<std::uint32_t>(class_names_.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const std::string& name : class_names_) {
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(name.data(), len);
  }
  model_.save(out);
}

ServableModel ServableModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ServableModel::load: cannot open " + path);
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("ServableModel::load: truncated");
  std::vector<std::string> names(n);
  for (auto& name : names) {
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in) throw std::runtime_error("ServableModel::load: truncated");
    name.resize(len);
    in.read(name.data(), len);
  }
  util::Rng rng(0);
  nn::Classifier model = nn::Classifier::load(in, rng);
  return ServableModel(std::move(model), std::move(names));
}

}  // namespace taglets::ensemble
