// Servable end model (design principle 3 / challenge 3: low-latency
// serving under SLAs). Wraps a single distilled classifier, records
// per-call latency, and serializes to a compact binary file — in
// contrast to serving the whole taglet ensemble, whose cost grows with
// the number of modules.
//
// Concurrency: the latency recorder is thread-safe, but one model
// instance must not run two forward passes at once (layers cache
// activations on the instance — see nn/layers.hpp). Concurrent serving
// uses one replica per thread; serve::Server does exactly that.
#pragma once

#include <string>

#include "nn/classifier.hpp"
#include "util/timer.hpp"

namespace taglets::ensemble {

class ServableModel {
 public:
  ServableModel(nn::Classifier model, std::vector<std::string> class_names);

  const std::vector<std::string>& class_names() const { return class_names_; }
  std::size_t num_classes() const { return class_names_.size(); }
  /// Trainable scalar count — the "model size" serving cares about.
  std::size_t parameter_count() { return model_.parameter_count(); }

  /// Predict the class index of one example (records latency).
  std::size_t predict(const tensor::Tensor& example);
  /// Predict class name of one example.
  const std::string& predict_name(const tensor::Tensor& example);
  /// Batch probabilities (records one latency sample for the batch).
  tensor::Tensor predict_proba(const tensor::Tensor& inputs);
  /// Batch class indices. The forward pass and the per-row argmax both
  /// run on the shared util::Parallel pool; results are identical to
  /// calling predict() row by row (records one latency sample).
  std::vector<std::size_t> predict_batch(const tensor::Tensor& inputs);

  const util::LatencyRecorder& latency() const { return latency_; }

  nn::Classifier& model() { return model_; }
  const nn::Classifier& model() const { return model_; }

  void save(const std::string& path) const;
  static ServableModel load(const std::string& path);

 private:
  nn::Classifier model_;
  std::vector<std::string> class_names_;
  util::LatencyRecorder latency_;
};

}  // namespace taglets::ensemble
