// Servable end model (design principle 3 / challenge 3: low-latency
// serving under SLAs). Wraps a single distilled classifier, records
// per-call latency, and serializes to a compact binary file — in
// contrast to serving the whole taglet ensemble, whose cost grows with
// the number of modules.
//
// Concurrency: the latency recorder is thread-safe, but one model
// instance must not run two forward passes at once (layers cache
// activations on the instance — see nn/layers.hpp). Concurrent serving
// uses one replica per thread; serve::Server does exactly that.
//
// Precision: serving can run the distilled model with int8-quantized
// weights (per-row affine, tensor/quant.hpp) — activations stay float32
// and accuracy loss is bounded by the eval::int8_accuracy_gate check.
// Select with set_precision(Precision::kInt8) or TAGLETS_SERVE_INT8=1
// (applied at load()). Training never sees the quantized weights; see
// docs/PERFORMANCE.md.
#pragma once

#include <string>

#include "nn/classifier.hpp"
#include "tensor/quant.hpp"
#include "util/timer.hpp"

namespace taglets::ensemble {

/// Numeric precision of the serving forward pass.
enum class Precision { kFloat32, kInt8 };

class ServableModel {
 public:
  ServableModel(nn::Classifier model, std::vector<std::string> class_names);

  const std::vector<std::string>& class_names() const { return class_names_; }
  std::size_t num_classes() const { return class_names_.size(); }
  /// Trainable scalar count — the "model size" serving cares about.
  std::size_t parameter_count() { return model_.parameter_count(); }

  /// Predict the class index of one example (records latency).
  std::size_t predict(const tensor::Tensor& example);
  /// Predict class name of one example.
  const std::string& predict_name(const tensor::Tensor& example);
  /// Batch probabilities (records one latency sample for the batch).
  tensor::Tensor predict_proba(const tensor::Tensor& inputs);
  /// Batch class indices. The forward pass and the per-row argmax both
  /// run on the shared util::Parallel pool; results are identical to
  /// calling predict() row by row (records one latency sample).
  std::vector<std::size_t> predict_batch(const tensor::Tensor& inputs);

  const util::LatencyRecorder& latency() const { return latency_; }

  /// Switch the serving forward pass between float32 and int8. The
  /// first switch to kInt8 quantizes every Linear weight matrix
  /// (per-row, tensor/quant.hpp) and caches the quantized program;
  /// switching back to kFloat32 is free. Throws if the model contains a
  /// layer kind the quantized path cannot execute.
  void set_precision(Precision precision);
  Precision precision() const { return precision_; }

  nn::Classifier& model() { return model_; }
  const nn::Classifier& model() const { return model_; }

  void save(const std::string& path) const;
  /// Loads the model; honours TAGLETS_SERVE_INT8=1 by switching the
  /// loaded instance to Precision::kInt8.
  static ServableModel load(const std::string& path);

 private:
  // One step of the cached int8 forward program (flattened from the
  // encoder Sequential + head; Dropout is identity at eval and dropped).
  struct QuantOp {
    enum class Kind { kLinear, kRelu, kTanh };
    Kind kind;
    tensor::QuantizedMatrix weight;  // kLinear only
    tensor::Tensor bias;             // kLinear only
  };

  tensor::Tensor quant_logits(const tensor::Tensor& inputs) const;
  std::vector<std::size_t> batch_labels(const tensor::Tensor& inputs);

  nn::Classifier model_;
  std::vector<std::string> class_names_;
  util::LatencyRecorder latency_;
  Precision precision_ = Precision::kFloat32;
  std::vector<QuantOp> quant_ops_;
};

}  // namespace taglets::ensemble
