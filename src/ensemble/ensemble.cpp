#include "ensemble/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace taglets::ensemble {

using tensor::Tensor;

Tensor vote_matrix(std::vector<modules::Taglet>& taglets,
                   const Tensor& example) {
  TAGLETS_CHECK(!(taglets.empty()), "vote_matrix: no taglets");
  TAGLETS_CHECK(example.is_vector(), "vote_matrix: single example expected");
  Tensor batch = example.reshape(1, example.size());
  Tensor votes;
  for (std::size_t t = 0; t < taglets.size(); ++t) {
    Tensor proba = taglets[t].predict_proba(batch);
    if (t == 0) {
      votes = Tensor::zeros(taglets.size(), proba.cols());
    } else {
      TAGLETS_CHECK_EQ(proba.cols(), votes.cols(),
                       "vote_matrix: taglet '" + taglets[t].name() +
                           "' emitted " + std::to_string(proba.cols()) +
                           " classes, expected " +
                           std::to_string(votes.cols()));
    }
    auto src = proba.row(0);
    TAGLETS_DCHECK_PROB_ROW(src, "vote_matrix: taglet '" +
                                     taglets[t].name() +
                                     "' emitted a non-distribution");
    auto dst = votes.row(t);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return votes;
}

Tensor ensemble_proba(std::vector<modules::Taglet>& taglets,
                      const Tensor& inputs) {
  TAGLETS_CHECK(!(taglets.empty()), "ensemble_proba: no taglets");
  // Each taglet owns its own model, so prediction fans out across the
  // shared pool; the reduction stays serial in taglet order, keeping
  // float summation order — and therefore the bits — independent of the
  // thread count.
  std::vector<Tensor> probas(taglets.size());
  util::parallel_for(taglets.size(), [&](std::size_t t) {
    probas[t] = taglets[t].predict_proba(inputs);
  });
  Tensor sum = std::move(probas[0]);
  for (std::size_t t = 1; t < probas.size(); ++t) {
    TAGLETS_CHECK(tensor::same_shape(sum, probas[t]),
                  "ensemble_proba: taglet '" + taglets[t].name() +
                      "' output shape " + probas[t].shape_string() +
                      " does not match " + sum.shape_string());
    tensor::add_scaled_inplace(sum, probas[t], 1.0f);
  }
  return tensor::scale(sum, 1.0f / static_cast<float>(taglets.size()));
}

std::vector<std::size_t> ensemble_predict(std::vector<modules::Taglet>& taglets,
                                          const Tensor& inputs) {
  return tensor::argmax_rows(ensemble_proba(taglets, inputs));
}

double ensemble_accuracy(std::vector<modules::Taglet>& taglets,
                         const Tensor& inputs,
                         std::span<const std::size_t> labels) {
  const auto predictions = ensemble_predict(taglets, inputs);
  TAGLETS_CHECK_EQ(predictions.size(), labels.size(),
                   "ensemble_accuracy: size mismatch");
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

PseudoLabelStats pseudo_label_stats(std::vector<modules::Taglet>& taglets,
                                    const Tensor& inputs) {
  TAGLETS_CHECK(!(taglets.empty() || inputs.rows() == 0),
                "pseudo_label_stats: empty input");
  PseudoLabelStats stats;

  Tensor proba = ensemble_proba(taglets, inputs);
  double entropy = 0.0, confidence = 0.0;
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    double h = 0.0;
    float top = 0.0f;
    for (float p : proba.row(i)) {
      if (p > 0.0f) h -= static_cast<double>(p) * std::log(p);
      top = std::max(top, p);
    }
    entropy += h;
    confidence += top;
  }
  stats.mean_entropy = entropy / static_cast<double>(proba.rows());
  stats.mean_confidence = confidence / static_cast<double>(proba.rows());

  // Pairwise argmax agreement across taglets; per-taglet prediction
  // fans out across the shared pool (distinct models, disjoint slots).
  std::vector<std::vector<std::size_t>> votes(taglets.size());
  util::parallel_for(taglets.size(), [&](std::size_t t) {
    votes[t] = taglets[t].predict(inputs);
  });
  if (taglets.size() > 1) {
    double agree = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < votes.size(); ++a) {
      for (std::size_t b = a + 1; b < votes.size(); ++b) {
        std::size_t same = 0;
        for (std::size_t i = 0; i < votes[a].size(); ++i) {
          if (votes[a][i] == votes[b][i]) ++same;
        }
        agree += static_cast<double>(same) /
                 static_cast<double>(votes[a].size());
        ++pairs;
      }
    }
    stats.inter_taglet_agreement = agree / static_cast<double>(pairs);
  }
  return stats;
}

}  // namespace taglets::ensemble
