// Distillation stage (Section 3.3): train the single servable end model
// h on the pseudo-labeled unlabeled data P plus the labeled data X by
// minimizing the soft cross-entropy of Eq. 7. Appendix A.5 (ResNet-50
// flavour): Adam, lr 5e-4, weight decay 1e-4, decay 0.1 at 20/30 epochs.
#pragma once

#include "nn/classifier.hpp"
#include "nn/sequential.hpp"
#include "synth/split.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace taglets::ensemble {

struct EndModelConfig {
  std::size_t epochs = 40;
  std::size_t batch_size = 64;
  std::size_t min_steps = 1500;  // floor for small unlabeled pools
  double lr = 2e-3;
  double weight_decay = 1e-4;
  std::vector<double> milestones{2.0 / 3.0};  // paper: decay at epoch 20/30
  /// Ablation knob: when false, pseudo labels are hardened to one-hot
  /// before distillation (the paper distills soft labels).
  bool soft_targets = true;
};

/// Train the end model from a pretrained encoder. `pseudo_labels` rows
/// correspond to task.unlabeled_inputs rows (Eq. 6 output). Labeled
/// examples contribute one-hot targets.
nn::Classifier train_end_model(const synth::FewShotTask& task,
                               const tensor::Tensor& pseudo_labels,
                               const nn::Sequential& encoder,
                               std::size_t feature_dim,
                               const EndModelConfig& config, util::Rng& rng,
                               double epoch_scale = 1.0);

/// One-hot (n, C) target matrix from hard labels.
tensor::Tensor one_hot(std::span<const std::size_t> labels,
                       std::size_t num_classes);

/// Harden a row-stochastic matrix to one-hot argmax rows.
tensor::Tensor harden(const tensor::Tensor& proba);

}  // namespace taglets::ensemble
