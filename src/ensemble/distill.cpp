#include "ensemble/distill.hpp"

#include <stdexcept>

#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::ensemble {

using tensor::Tensor;

Tensor one_hot(std::span<const std::size_t> labels, std::size_t num_classes) {
  Tensor out = Tensor::zeros(labels.size(), num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    TAGLETS_CHECK_LT(labels[i], num_classes, "one_hot: label");
    out.at(i, labels[i]) = 1.0f;
  }
  return out;
}

Tensor harden(const Tensor& proba) {
  Tensor out = Tensor::zeros(proba.rows(), proba.cols());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    out.at(i, tensor::argmax(proba.row(i))) = 1.0f;
  }
  return out;
}

nn::Classifier train_end_model(const synth::FewShotTask& task,
                               const Tensor& pseudo_labels,
                               const nn::Sequential& encoder,
                               std::size_t feature_dim,
                               const EndModelConfig& config, util::Rng& rng,
                               double epoch_scale) {
  const std::size_t n_unlabeled = task.unlabeled_inputs.rows();
  TAGLETS_CHECK_EQ(pseudo_labels.rows(), n_unlabeled,
                   "train_end_model: pseudo label rows mismatch");
  const std::size_t c = task.num_classes();

  // Assemble P (union) X with soft targets (Eq. 7).
  Tensor unlabeled_targets =
      config.soft_targets ? pseudo_labels : harden(pseudo_labels);
  Tensor labeled_targets = one_hot(task.labeled_labels, c);

  const std::size_t total = n_unlabeled + task.labeled_labels.size();
  Tensor inputs = Tensor::zeros(total, task.labeled_inputs.cols());
  Tensor targets = Tensor::zeros(total, c);
  for (std::size_t i = 0; i < n_unlabeled; ++i) {
    auto xs = task.unlabeled_inputs.row(i);
    std::copy(xs.begin(), xs.end(), inputs.row(i).begin());
    auto ts = unlabeled_targets.row(i);
    std::copy(ts.begin(), ts.end(), targets.row(i).begin());
  }
  for (std::size_t i = 0; i < task.labeled_labels.size(); ++i) {
    auto xs = task.labeled_inputs.row(i);
    std::copy(xs.begin(), xs.end(), inputs.row(n_unlabeled + i).begin());
    auto ts = labeled_targets.row(i);
    std::copy(ts.begin(), ts.end(), targets.row(n_unlabeled + i).begin());
  }

  nn::Classifier model(encoder, feature_dim, c, rng);
  nn::FitConfig fit;
  fit.epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.epochs * epoch_scale));
  fit.batch_size = config.batch_size;
  fit.min_steps = static_cast<std::size_t>(
      static_cast<double>(config.min_steps) * epoch_scale);
  fit.optimizer = nn::FitConfig::Opt::kAdam;
  fit.adam.lr = config.lr;
  fit.adam.weight_decay = config.weight_decay;
  fit.schedule = std::make_shared<nn::StepDecayLr>(config.lr, config.milestones);
  nn::fit_soft(model, inputs, targets, fit, rng);
  return model;
}

}  // namespace taglets::ensemble
