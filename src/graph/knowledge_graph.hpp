// Common-sense knowledge graph substrate (the role ConceptNet plays in
// the paper, Section 3.1). Nodes are named concepts; edges carry a
// relation type and weight. SCADS is built by joining annotated datasets
// onto this graph, and the ZSL-KG module runs its graph neural network
// over it.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace taglets::graph {

using NodeId = std::size_t;

/// Relation vocabulary, a small subset of ConceptNet's.
enum class Relation {
  kRelatedTo,
  kIsA,
  kPartOf,
  kAtLocation,
  kUsedFor,
  kSynonym,
  kMadeOf,
};

const char* relation_name(Relation r);

struct Edge {
  NodeId from;
  NodeId to;
  Relation relation;
  float weight = 1.0f;
};

class KnowledgeGraph {
 public:
  /// Adds a concept; names are unique, re-adding returns the existing id.
  NodeId add_node(const std::string& name);
  /// Adds an undirected edge (stored once, visible from both endpoints).
  void add_edge(NodeId a, NodeId b, Relation relation, float weight = 1.0f);
  void add_edge(const std::string& a, const std::string& b, Relation relation,
                float weight = 1.0f);

  std::size_t node_count() const { return names_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const std::string& name(NodeId id) const;
  std::optional<NodeId> find(const std::string& name) const;
  bool has_node(const std::string& name) const { return find(name).has_value(); }

  /// Neighbor (node, relation, weight) triples of `id`.
  struct Neighbor {
    NodeId node;
    Relation relation;
    float weight;
  };
  const std::vector<Neighbor>& neighbors(NodeId id) const;

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<NodeId> all_nodes() const;

  /// Unweighted shortest-path hop count; nullopt when disconnected.
  std::optional<std::size_t> hop_distance(NodeId a, NodeId b) const;

  /// Nodes within `radius` hops of `center` (including it) — the
  /// subgraph neighbourhood ZSL-KG aggregates over.
  std::vector<NodeId> neighborhood(NodeId center, std::size_t radius) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace taglets::graph
