// Expanded retrofitting (Appendix A.1, Eq. 8): learn a SCADS embedding
// e_hat_q for every concept q that stays close to its original word
// vector e_q (weight alpha_q) and to its graph neighbours (weights
// beta_ij). The closed-form coordinate update
//    e_hat_i = (alpha_i e_i + sum_j beta_ij e_hat_j) / (alpha_i + sum_j beta_ij)
// is iterated to convergence (Jacobi style). Following the paper
// ("we set alpha = 0 to handle out-of-vocabulary concepts"), concepts
// with no word vector participate with alpha_i = 0 and inherit purely
// graph-propagated embeddings.
#pragma once

#include <optional>
#include <vector>

#include "graph/knowledge_graph.hpp"
#include "tensor/tensor.hpp"

namespace taglets::graph {

struct RetrofitConfig {
  /// Attachment strength to the original word vector for in-vocabulary
  /// concepts. (OOV concepts always get alpha = 0.)
  double alpha = 1.0;
  /// Iterations of the Jacobi update; retrofitting converges fast.
  std::size_t iterations = 15;
  /// Subtract the mean embedding before normalizing (the usual
  /// "remove the common component" step; without it, cosine similarity
  /// between any two concepts saturates near 1 because every embedding
  /// shares the corpus-wide mean direction).
  bool center = true;
  /// L2-normalize rows of the result (ConceptNet Numberbatch does).
  bool normalize = true;
  /// Divide each node's beta_ij by its degree so the graph term and the
  /// word-vector term have comparable weight; without this, high-degree
  /// graphs collapse all embeddings toward the global mean.
  bool normalize_neighbor_weights = true;
};

/// `word_vectors[i]` is the original embedding of node i, or nullopt for
/// out-of-vocabulary concepts. Edge weights in the graph act as beta_ij.
/// Returns a (node_count x dim) matrix of SCADS embeddings. Rows of
/// concepts disconnected from every in-vocabulary concept are zero.
tensor::Tensor retrofit_embeddings(
    const KnowledgeGraph& graph,
    const std::vector<std::optional<tensor::Tensor>>& word_vectors,
    const RetrofitConfig& config = {});

}  // namespace taglets::graph
