// Knowledge-graph (de)serialization. A SCADS installation is a
// long-lived artifact in the paper's workflow ("a one-time labor cost"),
// so the graph — including user-added novel concepts and their edges —
// must survive process restarts. Simple line-oriented text format:
//   taglets-kg v1
//   node <name>
//   edge <from-id> <to-id> <relation> <weight>
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "graph/knowledge_graph.hpp"

namespace taglets::graph {

void write_graph(std::ostream& out, const KnowledgeGraph& graph);
/// Throws std::runtime_error on malformed input.
KnowledgeGraph read_graph(std::istream& in);

void save_graph(const std::string& path, const KnowledgeGraph& graph);
KnowledgeGraph load_graph(const std::string& path);

/// Relation <-> string helpers used by the format (round-trip exact).
std::string relation_to_string(Relation relation);
Relation relation_from_string(const std::string& text);

}  // namespace taglets::graph
