#include "graph/knowledge_graph.hpp"
#include "util/check.hpp"

#include <deque>
#include <stdexcept>

namespace taglets::graph {

const char* relation_name(Relation r) {
  switch (r) {
    case Relation::kRelatedTo: return "RelatedTo";
    case Relation::kIsA: return "IsA";
    case Relation::kPartOf: return "PartOf";
    case Relation::kAtLocation: return "AtLocation";
    case Relation::kUsedFor: return "UsedFor";
    case Relation::kSynonym: return "Synonym";
    case Relation::kMadeOf: return "MadeOf";
  }
  return "?";
}

NodeId KnowledgeGraph::add_node(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const NodeId id = names_.size();
  names_.push_back(name);
  index_.emplace(name, id);
  adjacency_.emplace_back();
  return id;
}

void KnowledgeGraph::add_edge(NodeId a, NodeId b, Relation relation,
                              float weight) {
  TAGLETS_CHECK(!(a >= names_.size() || b >= names_.size()),
                "KnowledgeGraph::add_edge: bad node id");
  TAGLETS_CHECK_NE(a, b, "KnowledgeGraph::add_edge: self loop");
  edges_.push_back(Edge{a, b, relation, weight});
  adjacency_[a].push_back(Neighbor{b, relation, weight});
  adjacency_[b].push_back(Neighbor{a, relation, weight});
}

void KnowledgeGraph::add_edge(const std::string& a, const std::string& b,
                              Relation relation, float weight) {
  const auto ia = find(a), ib = find(b);
  TAGLETS_CHECK(!(!ia || !ib), "KnowledgeGraph::add_edge: unknown concept");
  add_edge(*ia, *ib, relation, weight);
}

const std::string& KnowledgeGraph::name(NodeId id) const {
  return names_.at(id);
}

std::optional<NodeId> KnowledgeGraph::find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::vector<KnowledgeGraph::Neighbor>& KnowledgeGraph::neighbors(
    NodeId id) const {
  return adjacency_.at(id);
}

std::vector<NodeId> KnowledgeGraph::all_nodes() const {
  std::vector<NodeId> out(names_.size());
  for (NodeId i = 0; i < names_.size(); ++i) out[i] = i;
  return out;
}

std::optional<std::size_t> KnowledgeGraph::hop_distance(NodeId a,
                                                        NodeId b) const {
  TAGLETS_CHECK(!(a >= names_.size() || b >= names_.size()),
                "hop_distance: bad node id");
  if (a == b) return 0;
  std::vector<std::size_t> dist(names_.size(), SIZE_MAX);
  std::deque<NodeId> queue{a};
  dist[a] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : adjacency_[u]) {
      if (dist[nb.node] != SIZE_MAX) continue;
      dist[nb.node] = dist[u] + 1;
      if (nb.node == b) return dist[nb.node];
      queue.push_back(nb.node);
    }
  }
  return std::nullopt;
}

std::vector<NodeId> KnowledgeGraph::neighborhood(NodeId center,
                                                 std::size_t radius) const {
  TAGLETS_CHECK_LT(center, names_.size(), "neighborhood: bad node id");
  std::vector<std::size_t> dist(names_.size(), SIZE_MAX);
  std::deque<NodeId> queue{center};
  dist[center] = 0;
  std::vector<NodeId> out{center};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] == radius) continue;
    for (const Neighbor& nb : adjacency_[u]) {
      if (dist[nb.node] != SIZE_MAX) continue;
      dist[nb.node] = dist[u] + 1;
      out.push_back(nb.node);
      queue.push_back(nb.node);
    }
  }
  return out;
}

}  // namespace taglets::graph
