#include "graph/generators.hpp"
#include "util/check.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace taglets::graph {

std::vector<std::size_t> random_tree_parents(const TreeSpec& spec,
                                             util::Rng& rng) {
  TAGLETS_CHECK_NE(spec.node_count, 0, "random_tree: empty");
  TAGLETS_CHECK(!(spec.min_children == 0 ||
                spec.min_children > spec.max_children),
                "random_tree: bad children range");
  std::vector<std::size_t> parent(spec.node_count);
  parent[0] = 0;  // root
  // Frontier-based generation: pop a node, give it a random number of
  // children from the unassigned pool.
  std::size_t next = 1;
  std::vector<std::size_t> frontier{0};
  std::size_t cursor = 0;
  while (next < spec.node_count) {
    // If the frontier is exhausted (all nodes got 0 remaining budget),
    // attach stragglers to random existing nodes.
    const std::size_t u =
        cursor < frontier.size() ? frontier[cursor++] : rng.uniform_index(next);
    const std::size_t want = static_cast<std::size_t>(
        rng.uniform_int(static_cast<long>(spec.min_children),
                        static_cast<long>(spec.max_children)));
    for (std::size_t c = 0; c < want && next < spec.node_count; ++c) {
      parent[next] = u;
      frontier.push_back(next);
      ++next;
    }
  }
  return parent;
}

std::vector<std::string> make_concept_names(std::size_t count,
                                            const std::string& prefix) {
  std::vector<std::string> names;
  names.reserve(count);
  char buf[32];
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(buf, sizeof(buf), "_%05zu", i);
    names.push_back(prefix + buf);
  }
  return names;
}

KnowledgeGraph graph_from_taxonomy(const Taxonomy& taxonomy,
                                   const std::vector<std::string>& names) {
  TAGLETS_CHECK_EQ(names.size(), taxonomy.size(),
                   "graph_from_taxonomy: name count mismatch");
  KnowledgeGraph graph;
  for (const std::string& name : names) graph.add_node(name);
  TAGLETS_CHECK_EQ(graph.node_count(), taxonomy.size(),
                   "graph_from_taxonomy: duplicate names");
  for (std::size_t i = 0; i < taxonomy.size(); ++i) {
    if (!taxonomy.is_root(i)) {
      graph.add_edge(i, taxonomy.parent(i), Relation::kIsA, 1.0f);
    }
  }
  return graph;
}

void add_random_cross_edges(KnowledgeGraph& graph, const Taxonomy& taxonomy,
                            std::size_t count, double locality,
                            util::Rng& rng) {
  const std::size_t n = taxonomy.size();
  if (n < 2) return;
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 50 + 100;
  while (added < count && attempts < max_attempts) {
    ++attempts;
    const std::size_t a = rng.uniform_index(n);
    const std::size_t b = rng.uniform_index(n);
    if (a == b) continue;
    if (locality > 0.0) {
      const double d = static_cast<double>(taxonomy.tree_distance(a, b));
      if (!rng.bernoulli(std::exp(-d / locality))) continue;
    }
    const Relation rels[] = {Relation::kRelatedTo, Relation::kAtLocation,
                             Relation::kUsedFor, Relation::kMadeOf};
    graph.add_edge(a, b, rels[rng.uniform_index(4)],
                   static_cast<float>(rng.uniform(0.5, 1.0)));
    ++added;
  }
}

}  // namespace taglets::graph
