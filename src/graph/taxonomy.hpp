// Semantic tree over concepts — the role the WordNet hierarchy plays in
// the paper's pruning protocol (Section 4.3): prune-level 0 removes a
// target class and all its descendants from the auxiliary pool;
// prune-level 1 additionally removes the parent and the parent's whole
// subtree.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace taglets::graph {

class Taxonomy {
 public:
  /// `parent[i]` is the parent of node i; the root has parent == itself.
  /// Node ids are positions in the vector; they are expected to coincide
  /// with KnowledgeGraph node ids for the taxonomy-backed subset.
  explicit Taxonomy(std::vector<std::size_t> parent);

  std::size_t size() const { return parent_.size(); }
  std::size_t root() const { return root_; }
  std::size_t parent(std::size_t node) const;
  const std::vector<std::size_t>& children(std::size_t node) const;
  bool is_root(std::size_t node) const { return node == root_; }

  /// Depth of node (root = 0).
  std::size_t depth(std::size_t node) const;

  /// Node plus all transitive descendants.
  std::vector<std::size_t> subtree(std::size_t node) const;

  /// True when `descendant` is inside subtree(`ancestor`) (inclusive).
  bool is_ancestor_or_self(std::size_t ancestor, std::size_t descendant) const;

  /// Lowest common ancestor.
  std::size_t lca(std::size_t a, std::size_t b) const;

  /// Tree hop distance (via the LCA).
  std::size_t tree_distance(std::size_t a, std::size_t b) const;

  /// The set removed by the paper's pruning procedure for target `node`:
  ///   level 0 -> subtree(node)
  ///   level 1 -> subtree(parent(node))
  /// Levels beyond 1 generalize by walking further up.
  std::vector<std::size_t> pruned_set(std::size_t node, int prune_level) const;

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> depth_;
  std::size_t root_ = 0;
};

}  // namespace taglets::graph
