// Cosine-similarity search over SCADS embeddings (Example 3.1: "use the
// cosine similarity to find the top-N closest concepts in Q"). Also
// implements the Appendix A.2 prefix-based approximation for concepts
// missing from the embedding table.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/knowledge_graph.hpp"
#include "tensor/tensor.hpp"

namespace taglets::graph {

class EmbeddingIndex {
 public:
  /// `embeddings` rows are indexed by KnowledgeGraph NodeId.
  EmbeddingIndex(const KnowledgeGraph* graph, tensor::Tensor embeddings);

  std::size_t dim() const { return embeddings_.cols(); }
  const tensor::Tensor& embeddings() const { return embeddings_; }

  /// Embedding row for a node.
  std::span<const float> vector(NodeId id) const;

  struct Hit {
    NodeId node;
    float similarity;
  };

  /// Top-k most cosine-similar candidates to `query`. `candidates`
  /// restricts the search (e.g. to concepts with installed auxiliary
  /// data); pass the full node list for an unrestricted search.
  std::vector<Hit> top_k(std::span<const float> query,
                         std::span<const NodeId> candidates,
                         std::size_t k) const;

  /// Appendix A.2: approximate embedding for a name that is not in the
  /// table, as a weighted sum of embeddings of concepts sharing the
  /// longest possible name prefix. Returns a zero vector when nothing
  /// shares a prefix of at least `min_prefix` characters.
  tensor::Tensor approximate_embedding(const std::string& name,
                                       std::size_t min_prefix = 3) const;

  /// Overwrite / extend the row for `id` (used when novel concepts are
  /// added to SCADS after construction).
  void set_vector(NodeId id, const tensor::Tensor& embedding);

 private:
  const KnowledgeGraph* graph_;
  tensor::Tensor embeddings_;
};

}  // namespace taglets::graph
