#include "graph/taxonomy.hpp"
#include "util/check.hpp"

#include <stdexcept>

namespace taglets::graph {

Taxonomy::Taxonomy(std::vector<std::size_t> parent)
    : parent_(std::move(parent)) {
  const std::size_t n = parent_.size();
  TAGLETS_CHECK_NE(n, 0, "Taxonomy: empty");
  children_.resize(n);
  bool root_found = false;
  for (std::size_t i = 0; i < n; ++i) {
    TAGLETS_CHECK_LT(parent_[i], n, "Taxonomy: bad parent id");
    if (parent_[i] == i) {
      TAGLETS_CHECK(!(root_found), "Taxonomy: multiple roots");
      root_ = i;
      root_found = true;
    } else {
      children_[parent_[i]].push_back(i);
    }
  }
  TAGLETS_CHECK(root_found, "Taxonomy: no root");

  // Compute depths iteratively (also validates acyclicity: a cycle would
  // leave some depth unset after the BFS from the root).
  depth_.assign(n, SIZE_MAX);
  depth_[root_] = 0;
  std::vector<std::size_t> stack{root_};
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t c : children_[u]) {
      depth_[c] = depth_[u] + 1;
      stack.push_back(c);
      ++visited;
    }
  }
  TAGLETS_CHECK_EQ(visited, n, "Taxonomy: cycle/forest");
}

std::size_t Taxonomy::parent(std::size_t node) const {
  TAGLETS_CHECK_LT(node, parent_.size(), "Taxonomy::parent");
  return parent_[node];
}

const std::vector<std::size_t>& Taxonomy::children(std::size_t node) const {
  TAGLETS_CHECK_LT(node, children_.size(), "Taxonomy::children");
  return children_[node];
}

std::size_t Taxonomy::depth(std::size_t node) const {
  TAGLETS_CHECK_LT(node, depth_.size(), "Taxonomy::depth");
  return depth_[node];
}

std::vector<std::size_t> Taxonomy::subtree(std::size_t node) const {
  TAGLETS_CHECK_LT(node, parent_.size(), "Taxonomy::subtree");
  std::vector<std::size_t> out;
  std::vector<std::size_t> stack{node};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (std::size_t c : children_[u]) stack.push_back(c);
  }
  return out;
}

bool Taxonomy::is_ancestor_or_self(std::size_t ancestor,
                                   std::size_t descendant) const {
  std::size_t u = descendant;
  for (;;) {
    if (u == ancestor) return true;
    if (u == root_) return false;
    u = parent_[u];
  }
}

std::size_t Taxonomy::lca(std::size_t a, std::size_t b) const {
  while (depth(a) > depth(b)) a = parent_[a];
  while (depth(b) > depth(a)) b = parent_[b];
  while (a != b) {
    a = parent_[a];
    b = parent_[b];
  }
  return a;
}

std::size_t Taxonomy::tree_distance(std::size_t a, std::size_t b) const {
  const std::size_t anc = lca(a, b);
  return (depth(a) - depth(anc)) + (depth(b) - depth(anc));
}

std::vector<std::size_t> Taxonomy::pruned_set(std::size_t node,
                                              int prune_level) const {
  if (prune_level < 0) return {};
  std::size_t top = node;
  for (int l = 0; l < prune_level && top != root_; ++l) top = parent_[top];
  return subtree(top);
}

}  // namespace taglets::graph
