// Random graph generators used to synthesize the ConceptNet/WordNet
// stand-ins (see DESIGN.md substitution table). A taxonomy tree gives
// the IsA backbone; extra cross edges of other relation types give the
// graph the non-hierarchical texture of a common-sense KG.
#pragma once

#include <string>
#include <vector>

#include "graph/knowledge_graph.hpp"
#include "graph/taxonomy.hpp"
#include "util/rng.hpp"

namespace taglets::graph {

struct TreeSpec {
  std::size_t node_count = 100;
  /// Children per internal node are drawn uniformly from this range.
  std::size_t min_children = 2;
  std::size_t max_children = 5;
};

/// Random parent array for a tree with the given fanout statistics.
/// Node 0 is the root; children always have larger ids than parents so
/// the array is trivially acyclic.
std::vector<std::size_t> random_tree_parents(const TreeSpec& spec,
                                             util::Rng& rng);

/// "concept_0000"-style names.
std::vector<std::string> make_concept_names(std::size_t count,
                                            const std::string& prefix);

/// Builds a KnowledgeGraph whose first `taxonomy.size()` nodes mirror the
/// taxonomy (IsA edges child->parent) with the given names.
KnowledgeGraph graph_from_taxonomy(const Taxonomy& taxonomy,
                                   const std::vector<std::string>& names);

/// Adds `count` random RelatedTo-style cross edges between distinct
/// nodes, biased toward pairs that are close in the taxonomy when
/// `locality > 0` (probability of accepting a pair decays with tree
/// distance ~ exp(-distance / locality)). Duplicate pairs are allowed;
/// self loops are not.
void add_random_cross_edges(KnowledgeGraph& graph, const Taxonomy& taxonomy,
                            std::size_t count, double locality,
                            util::Rng& rng);

}  // namespace taglets::graph
