#include "graph/retrofit.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::graph {

using tensor::Tensor;

Tensor retrofit_embeddings(
    const KnowledgeGraph& graph,
    const std::vector<std::optional<Tensor>>& word_vectors,
    const RetrofitConfig& config) {
  const std::size_t n = graph.node_count();
  TAGLETS_CHECK_EQ(word_vectors.size(), n,
                   "retrofit: word_vectors size mismatch");
  std::size_t dim = 0;
  for (const auto& wv : word_vectors) {
    if (wv.has_value()) {
      TAGLETS_CHECK(wv->is_vector(), "retrofit: word vectors must be rank-1");
      if (dim == 0) dim = wv->size();
      TAGLETS_CHECK_EQ(wv->size(), dim, "retrofit: inconsistent dims");
    }
  }
  TAGLETS_CHECK_NE(dim, 0, "retrofit: all vectors missing");

  // Initialize: in-vocab nodes start at their word vector, OOV at zero.
  Tensor current = Tensor::zeros(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    if (word_vectors[i]) {
      auto dst = current.row(i);
      auto src = word_vectors[i]->data();
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    Tensor next = Tensor::zeros(n, dim);
    for (std::size_t i = 0; i < n; ++i) {
      const double alpha_i = word_vectors[i] ? config.alpha : 0.0;
      double denom = alpha_i;
      auto dst = next.row(i);
      if (word_vectors[i]) {
        auto wv = word_vectors[i]->data();
        for (std::size_t d = 0; d < dim; ++d) {
          dst[d] += static_cast<float>(alpha_i) * wv[d];
        }
      }
      double degree_norm = 1.0;
      if (config.normalize_neighbor_weights) {
        double total = 0.0;
        for (const auto& nb : graph.neighbors(i)) total += nb.weight;
        if (total > 0.0) degree_norm = total;
      }
      for (const auto& nb : graph.neighbors(i)) {
        const float w = static_cast<float>(nb.weight / degree_norm);
        denom += w;
        auto src = current.row(nb.node);
        for (std::size_t d = 0; d < dim; ++d) dst[d] += w * src[d];
      }
      if (denom > 0.0) {
        const float inv = static_cast<float>(1.0 / denom);
        for (std::size_t d = 0; d < dim; ++d) dst[d] *= inv;
      }
    }
    current = std::move(next);
  }

  if (config.center) {
    Tensor mean = tensor::row_mean(current);
    for (std::size_t i = 0; i < n; ++i) {
      auto row = current.row(i);
      for (std::size_t d = 0; d < dim; ++d) row[d] -= mean[d];
    }
  }
  if (config.normalize) tensor::normalize_rows(current);
  return current;
}

}  // namespace taglets::graph
