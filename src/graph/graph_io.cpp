#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace taglets::graph {

std::string relation_to_string(Relation relation) {
  return relation_name(relation);
}

Relation relation_from_string(const std::string& text) {
  for (Relation r : {Relation::kRelatedTo, Relation::kIsA, Relation::kPartOf,
                     Relation::kAtLocation, Relation::kUsedFor,
                     Relation::kSynonym, Relation::kMadeOf}) {
    if (text == relation_name(r)) return r;
  }
  throw std::runtime_error("relation_from_string: unknown relation " + text);
}

void write_graph(std::ostream& out, const KnowledgeGraph& graph) {
  out << "taglets-kg v1\n";
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    out << "node " << graph.name(id) << "\n";
  }
  for (const Edge& edge : graph.edges()) {
    out << "edge " << edge.from << " " << edge.to << " "
        << relation_to_string(edge.relation) << " " << edge.weight << "\n";
  }
  if (!out) throw std::runtime_error("write_graph: stream failure");
}

KnowledgeGraph read_graph(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != "taglets-kg v1") {
    throw std::runtime_error("read_graph: bad header");
  }
  KnowledgeGraph graph;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string kind;
    row >> kind;
    if (kind == "node") {
      // Node names may contain spaces in principle; take the rest of the
      // line after "node ".
      const std::string name = line.substr(5);
      if (name.empty()) throw std::runtime_error("read_graph: empty node");
      graph.add_node(name);
    } else if (kind == "edge") {
      NodeId from = 0, to = 0;
      std::string relation;
      float weight = 0.0f;
      row >> from >> to >> relation >> weight;
      if (!row) throw std::runtime_error("read_graph: malformed edge");
      graph.add_edge(from, to, relation_from_string(relation), weight);
    } else {
      throw std::runtime_error("read_graph: unknown record " + kind);
    }
  }
  return graph;
}

void save_graph(const std::string& path, const KnowledgeGraph& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph: cannot open " + path);
  write_graph(out, graph);
}

KnowledgeGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph: cannot open " + path);
  return read_graph(in);
}

}  // namespace taglets::graph
