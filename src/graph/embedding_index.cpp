#include "graph/embedding_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace taglets::graph {

using tensor::Tensor;

EmbeddingIndex::EmbeddingIndex(const KnowledgeGraph* graph, Tensor embeddings)
    : graph_(graph), embeddings_(std::move(embeddings)) {
  TAGLETS_CHECK_NE(graph_, nullptr, "EmbeddingIndex: null graph");
  TAGLETS_CHECK(!(!embeddings_.is_matrix() ||
                embeddings_.rows() != graph_->node_count()),
                "EmbeddingIndex: embedding shape mismatch");
}

std::span<const float> EmbeddingIndex::vector(NodeId id) const {
  TAGLETS_CHECK_LT(id, embeddings_.rows(), "EmbeddingIndex::vector");
  return embeddings_.row(id);
}

std::vector<EmbeddingIndex::Hit> EmbeddingIndex::top_k(
    std::span<const float> query, std::span<const NodeId> candidates,
    std::size_t k) const {
  TAGLETS_CHECK_EQ(query.size(), dim(),
                   "EmbeddingIndex::top_k: query dim mismatch");
  std::vector<float> sims(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    sims[i] = tensor::cosine_similarity(query, vector(candidates[i]));
  }
  const auto order = tensor::top_k_indices(sims, k);
  std::vector<Hit> hits;
  hits.reserve(order.size());
  for (std::size_t i : order) hits.push_back(Hit{candidates[i], sims[i]});
  return hits;
}

Tensor EmbeddingIndex::approximate_embedding(const std::string& name,
                                             std::size_t min_prefix) const {
  // Find the longest shared prefix length over all named concepts, then
  // average the embeddings of concepts achieving it, weighted by prefix
  // length (here all equal, so a plain mean).
  // Only nodes that already have embedding rows can contribute (the
  // graph may contain freshly added nodes whose rows are not set yet —
  // including, during add_novel_concept, the queried node itself).
  const NodeId known = std::min<NodeId>(graph_->node_count(), embeddings_.rows());
  std::size_t best = 0;
  for (NodeId id = 0; id < known; ++id) {
    best = std::max(best, util::common_prefix_length(name, graph_->name(id)));
  }
  Tensor out = Tensor::zeros(dim());
  if (best < min_prefix) return out;
  std::size_t count = 0;
  for (NodeId id = 0; id < known; ++id) {
    if (util::common_prefix_length(name, graph_->name(id)) == best) {
      auto src = vector(id);
      for (std::size_t d = 0; d < dim(); ++d) out[d] += src[d];
      ++count;
    }
  }
  if (count > 0) {
    for (std::size_t d = 0; d < dim(); ++d) {
      out[d] /= static_cast<float>(count);
    }
    tensor::normalize_rows(out);
  }
  return out;
}

void EmbeddingIndex::set_vector(NodeId id, const Tensor& embedding) {
  TAGLETS_CHECK(!(!embedding.is_vector() || embedding.size() != dim()),
                "EmbeddingIndex::set_vector: dim mismatch");
  if (id >= embeddings_.rows()) {
    // Extend the table with zero rows up to and including `id` (novel
    // concepts are appended to the graph after initial construction).
    Tensor grown = Tensor::zeros(id + 1, dim());
    for (std::size_t r = 0; r < embeddings_.rows(); ++r) {
      auto src = embeddings_.row(r);
      auto dst = grown.row(r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    embeddings_ = std::move(grown);
  }
  auto dst = embeddings_.row(id);
  auto src = embedding.data();
  std::copy(src.begin(), src.end(), dst.begin());
}

}  // namespace taglets::graph
