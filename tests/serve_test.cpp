#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "nn/sequential.hpp"
#include "serve/batching_policy.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve/server_stats.hpp"
#include "util/parallel.hpp"

namespace taglets::serve {
namespace {

using tensor::Tensor;

/// dim == classes; logits are the input itself, so the expected label
/// is the index of the largest input element.
ensemble::ServableModel make_identity_servable(std::size_t dim) {
  nn::Sequential encoder;
  encoder.add(std::make_unique<nn::Linear>(Tensor::identity(dim),
                                           Tensor::zeros(dim)));
  std::vector<std::string> names;
  for (std::size_t c = 0; c < dim; ++c) names.push_back("class" + std::to_string(c));
  return ensemble::ServableModel(
      nn::Classifier(encoder, nn::Linear(Tensor::identity(dim),
                                         Tensor::zeros(dim))),
      std::move(names));
}

/// Randomly-initialized MLP classifier — heavy enough that a forward
/// pass takes measurable time, deterministic for a fixed seed.
ensemble::ServableModel make_mlp_servable(std::size_t dim, std::size_t hidden,
                                          std::size_t classes) {
  util::Rng rng(17);
  nn::Sequential encoder = nn::make_mlp({dim, hidden, hidden / 2}, rng);
  std::vector<std::string> names;
  for (std::size_t c = 0; c < classes; ++c) {
    std::string name = "c";  // += form: GCC 12 -Wrestrict FP (PR105329)
    name += std::to_string(c);
    names.push_back(std::move(name));
  }
  return ensemble::ServableModel(
      nn::Classifier(encoder, hidden / 2, classes, rng), std::move(names));
}

Tensor one_hot_input(std::size_t dim, std::size_t hot) {
  Tensor input = Tensor::zeros(dim);
  input[hot] = 1.0f;
  return input;
}

Request make_request(std::size_t dim) {
  Request request;
  request.input = Tensor::zeros(dim);
  request.enqueued_at = Clock::now();
  return request;
}

// --------------------------------------------------------- request queue

TEST(RequestQueue, AdmissionControlRejectsWhenFull) {
  RequestQueue queue(2);
  Request a = make_request(3), b = make_request(3), c = make_request(3);
  EXPECT_EQ(queue.try_push(a), RequestQueue::Push::kOk);
  EXPECT_EQ(queue.try_push(b), RequestQueue::Push::kOk);
  EXPECT_EQ(queue.try_push(c), RequestQueue::Push::kFull);
  EXPECT_EQ(queue.size(), 2u);
  // The rejected request keeps its promise: the caller can still
  // resolve it.
  c.promise.set_value(Response{});
  queue.close();
  Request d = make_request(3);
  EXPECT_EQ(queue.try_push(d), RequestQueue::Push::kClosed);
  d.promise.set_value(Response{});
  auto pending = queue.drain();
  EXPECT_EQ(pending.size(), 2u);
  for (auto& r : pending) r.promise.set_value(Response{});
}

TEST(RequestQueue, ForcePushBypassesCapacityButNotClose) {
  RequestQueue queue(1);
  Request a = make_request(3), b = make_request(3);
  EXPECT_EQ(queue.try_push(a), RequestQueue::Push::kOk);
  // Past capacity: try_push sheds, force_push (the adoption path)
  // still admits — the request was already admitted once upstream.
  EXPECT_EQ(queue.force_push(b), RequestQueue::Push::kOk);
  EXPECT_EQ(queue.size(), 2u);
  queue.close();
  Request c = make_request(3);
  EXPECT_EQ(queue.force_push(c), RequestQueue::Push::kClosed);
  c.promise.set_value(Response{});
  auto pending = queue.drain();
  EXPECT_EQ(pending.size(), 2u);
  for (auto& r : pending) r.promise.set_value(Response{});
}

TEST(RequestQueue, PopBatchRespectsMaxBatch) {
  RequestQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    Request r = make_request(2);
    ASSERT_EQ(queue.try_push(r), RequestQueue::Push::kOk);
  }
  auto first = queue.pop_batch(3, std::chrono::nanoseconds::zero());
  EXPECT_EQ(first.size(), 3u);
  auto second = queue.pop_batch(3, std::chrono::nanoseconds::zero());
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(queue.size(), 0u);
  for (auto& r : first) r.promise.set_value(Response{});
  for (auto& r : second) r.promise.set_value(Response{});
}

TEST(RequestQueue, FullBatchFlushesWithoutWaiting) {
  RequestQueue queue(8);
  for (int i = 0; i < 4; ++i) {
    Request r = make_request(2);
    ASSERT_EQ(queue.try_push(r), RequestQueue::Push::kOk);
  }
  // max_batch already satisfied: a long delay must not be waited out.
  const auto start = Clock::now();
  auto batch = queue.pop_batch(4, std::chrono::seconds(10));
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - start).count(), 5.0);
  for (auto& r : batch) r.promise.set_value(Response{});
}

TEST(RequestQueue, CloseWakesConsumersAndKeepsPendingForDrain) {
  RequestQueue queue(4);
  Request r = make_request(2);
  ASSERT_EQ(queue.try_push(r), RequestQueue::Push::kOk);
  queue.close();
  EXPECT_TRUE(queue.closed());
  // After close, consumers get nothing — pending work is shutdown's to
  // fail, not a worker's to run.
  EXPECT_TRUE(queue.pop_batch(4, std::chrono::milliseconds(1)).empty());
  auto pending = queue.drain();
  ASSERT_EQ(pending.size(), 1u);
  pending[0].promise.set_value(Response{});
}

TEST(RequestQueue, BlockedConsumerWokenByPush) {
  RequestQueue queue(4);
  auto consumer = std::async(std::launch::async, [&] {
    return queue.pop_batch(2, std::chrono::milliseconds(1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Request r = make_request(2);
  ASSERT_EQ(queue.try_push(r), RequestQueue::Push::kOk);
  auto batch = consumer.get();
  ASSERT_GE(batch.size(), 1u);
  for (auto& item : batch) item.promise.set_value(Response{});
}

TEST(RequestQueue, ZeroCapacityThrows) {
  EXPECT_THROW(RequestQueue(0), std::invalid_argument);
}

// ------------------------------------------------------- batching policy

TEST(BatchingPolicy, ValidateRejectsDegenerateSettings) {
  BatchingPolicy policy;
  policy.max_batch_size = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.max_batch_size = 8;
  policy.max_delay_ms = -1.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.max_delay_ms = 0.5;
  EXPECT_NO_THROW(policy.validate());
}

TEST(BatchingPolicy, SerialPoolClampsDelayToZero) {
  BatchingPolicy policy;
  policy.max_delay_ms = 5.0;
  {
    util::Parallel serial(1);
    util::Parallel* prev = util::Parallel::exchange_global(&serial);
    EXPECT_EQ(policy.effective_delay(), std::chrono::nanoseconds::zero());
    util::Parallel::exchange_global(prev);
  }
  {
    util::Parallel pooled(2);
    util::Parallel* prev = util::Parallel::exchange_global(&pooled);
    EXPECT_EQ(policy.effective_delay(), std::chrono::milliseconds(5));
    util::Parallel::exchange_global(prev);
  }
}

// ---------------------------------------------------------------- server

TEST(Server, ConfigValidation) {
  auto model = make_identity_servable(3);
  ServerConfig bad_workers;
  bad_workers.workers = 0;
  EXPECT_THROW(Server(model, bad_workers), std::invalid_argument);
  ServerConfig bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_THROW(Server(model, bad_queue), std::invalid_argument);
}

TEST(Server, PredictsCorrectLabelAndName) {
  auto model = make_identity_servable(4);
  Server server(model);
  server.start();
  for (std::size_t hot = 0; hot < 4; ++hot) {
    Response response = server.predict(one_hot_input(4, hot));
    ASSERT_TRUE(response.ok()) << status_name(response.status);
    EXPECT_EQ(response.label, hot);
    EXPECT_EQ(response.class_name, "class" + std::to_string(hot));
    EXPECT_GT(response.confidence, 0.0f);
    EXPECT_GE(response.batch_size, 1u);
    EXPECT_GE(response.total_ms, response.queue_ms);
  }
  server.stop();
  const auto s = server.stats().snapshot();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.resolved(), 4u);
}

// Every submission gets a unique id, assigned at enqueue and echoed in
// the response — including rejected ones — so clients and trace spans
// can correlate requests end to end.
TEST(Server, ResponsesCarryUniqueRequestIds) {
  auto model = make_identity_servable(4);
  Server server(model);
  server.start();
  for (std::uint64_t expected_id = 1; expected_id <= 3; ++expected_id) {
    Response response = server.predict(one_hot_input(4, 0));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.request_id, expected_id);
  }
  server.stop();
}

TEST(Server, RejectedResponsesStillCarryRequestIds) {
  auto model = make_identity_servable(3);
  ServerConfig config;
  config.queue_capacity = 1;
  Server server(model, config);  // not started: second submit overflows
  auto first = server.submit(one_hot_input(3, 0));
  auto second = server.submit(one_hot_input(3, 1));
  Response rejected = second.get();
  EXPECT_EQ(rejected.status, Status::kRejected);
  EXPECT_EQ(rejected.request_id, 2u);
  server.start();
  EXPECT_EQ(first.get().request_id, 1u);
  server.stop();
}

TEST(Server, SubmitRejectsWrongShape) {
  auto model = make_identity_servable(4);
  Server server(model);
  EXPECT_THROW(server.submit(Tensor::zeros(3)), std::invalid_argument);
  EXPECT_THROW(server.submit(Tensor::zeros(1, 4)), std::invalid_argument);
}

// Concurrent clients against a multi-worker server: every response must
// match the single-threaded reference prediction for its input. Run
// under ThreadSanitizer in CI (TAGLETS_THREADS=4).
TEST(Server, ConcurrentClientsMatchReferencePredictions) {
  constexpr std::size_t kDim = 16, kClients = 4, kPerClient = 40;
  auto model = make_mlp_servable(kDim, 64, 8);

  // Build all inputs and reference labels serially, before the server
  // exists, on a private reference replica.
  util::Rng rng(91);
  std::vector<Tensor> inputs;
  std::vector<std::size_t> expected;
  ensemble::ServableModel reference = model;
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    Tensor x = Tensor::zeros(kDim);
    for (float& v : x.data()) v = static_cast<float>(rng.normal());
    expected.push_back(reference.predict(x));
    inputs.push_back(std::move(x));
  }

  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 512;
  config.batching.max_batch_size = 8;
  config.batching.max_delay_ms = 0.2;
  Server server(model, config);
  server.start();

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t idx = c * kPerClient + i;
        Response response = server.predict(inputs[idx]);
        if (!response.ok() || response.label != expected[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  EXPECT_EQ(mismatches.load(), 0u);
  const auto s = server.stats().snapshot();
  EXPECT_EQ(s.submitted, kClients * kPerClient);
  EXPECT_EQ(s.completed, kClients * kPerClient);
  EXPECT_EQ(s.resolved(), s.submitted);
  EXPECT_GE(s.batches, 1u);
  EXPECT_GE(s.mean_batch_size, 1.0);
}

TEST(Server, QueueFullShedsLoadWithoutBlocking) {
  auto model = make_identity_servable(3);
  ServerConfig config;
  config.queue_capacity = 2;
  Server server(model, config);  // not started: requests park in the queue
  auto first = server.submit(one_hot_input(3, 0));
  auto second = server.submit(one_hot_input(3, 1));
  auto third = server.submit(one_hot_input(3, 2));
  // Admission control resolved the overflow immediately.
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(third.get().status, Status::kRejected);
  server.start();  // parked requests now complete
  EXPECT_EQ(first.get().label, 0u);
  EXPECT_EQ(second.get().label, 1u);
  server.stop();
  const auto s = server.stats().snapshot();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.rejected_full, 1u);
}

TEST(Server, AdoptBypassesCapacityForAlreadyAdmittedWork) {
  auto model = make_identity_servable(3);
  ServerConfig config;
  config.queue_capacity = 1;
  Server server(model, config);  // not started: requests park in the queue
  auto parked = server.submit(one_hot_input(3, 0));  // queue now full
  // A reload handoff must not re-reject work the old server admitted,
  // even when new traffic saturated the replacement's queue first.
  Request handoff;
  handoff.input = one_hot_input(3, 2);
  handoff.id = 77;
  handoff.enqueued_at = Clock::now();
  auto adopted = handoff.promise.get_future();
  server.adopt(std::move(handoff));
  EXPECT_EQ(server.queue_depth(), 2u);  // admitted past capacity
  server.start();
  EXPECT_EQ(parked.get().label, 0u);
  const Response resp = adopted.get();
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.label, 2u);
  server.stop();
}

TEST(Server, ExpiredRequestNeverRunsTheModel) {
  auto model = make_identity_servable(3);
  Server server(model);  // not started, so the deadline passes while queued
  auto future = server.submit(one_hot_input(3, 1), /*deadline_ms=*/1e-6);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.start();
  Response response = future.get();
  EXPECT_EQ(response.status, Status::kDeadlineExceeded);
  server.stop();
  const auto s = server.stats().snapshot();
  EXPECT_EQ(s.deadline_missed, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.batches, 0u);  // nothing was dispatched to the model
}

TEST(Server, StopFailsPendingDeterministically) {
  auto model = make_identity_servable(3);
  ServerConfig config;
  config.queue_capacity = 32;
  Server server(model, config);  // never started: everything stays pending
  std::vector<std::future<Response>> no_deadline, expired;
  for (int i = 0; i < 5; ++i) {
    no_deadline.push_back(server.submit(one_hot_input(3, 0)));
    expired.push_back(server.submit(one_hot_input(3, 1), 1e-6));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  for (auto& f : no_deadline) EXPECT_EQ(f.get().status, Status::kShutdown);
  for (auto& f : expired) {
    EXPECT_EQ(f.get().status, Status::kDeadlineExceeded);
  }
  // Submissions after stop resolve immediately with kShutdown.
  auto late = server.submit(one_hot_input(3, 2));
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(late.get().status, Status::kShutdown);
  const auto s = server.stats().snapshot();
  EXPECT_EQ(s.submitted, 10u);
  EXPECT_EQ(s.resolved(), 10u);
  EXPECT_EQ(s.failed_shutdown, 5u);
  EXPECT_EQ(s.deadline_missed, 5u);
  EXPECT_EQ(s.rejected_shutdown, 1u);
  EXPECT_THROW(server.start(), std::runtime_error);
}

// The acceptance-criterion test: shutdown issued mid-load completes
// every in-flight request, fails every queued one, and loses or
// duplicates nothing — each future resolves exactly once and the
// server-side counters account for every admitted request.
TEST(Server, ShutdownMidLoadDrainsInFlightAndFailsPending) {
  constexpr std::size_t kRequests = 100;
  auto model = make_mlp_servable(32, 128, 8);
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = kRequests;
  config.batching.max_batch_size = 1;  // stretch the run across batches
  Server server(model, config);
  server.start();

  util::Rng rng(7);
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    Tensor x = Tensor::zeros(32);
    for (float& v : x.data()) v = static_cast<float>(rng.normal());
    futures.push_back(server.submit(std::move(x)));
  }
  futures.front().wait();  // the workers are definitely mid-load now
  server.stop();

  std::size_t ok = 0, shutdown = 0, other = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    switch (f.get().status) {
      case Status::kOk: ++ok; break;
      case Status::kShutdown: ++shutdown; break;
      default: ++other; break;
    }
  }
  EXPECT_EQ(other, 0u);
  EXPECT_GE(ok, 1u);                        // in-flight work completed
  EXPECT_EQ(ok + shutdown, kRequests);      // nothing lost or duplicated
  EXPECT_EQ(server.queue_depth(), 0u);
  const auto s = server.stats().snapshot();
  EXPECT_EQ(s.submitted, kRequests);
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.failed_shutdown, shutdown);
  EXPECT_EQ(s.resolved(), kRequests);
  // stop() is idempotent.
  server.stop();
}

// Regression: a drain racing a mid-flush enqueue must never strand a
// future. Producers hammer submit() while close_and_drain() runs; the
// returned pending set is handed to a second server (the hot-swap
// path). Every future — served, drained-and-adopted, or turned away at
// the closing door — must resolve exactly once.
TEST(Server, DrainUnderConcurrentEnqueueResolvesEveryFutureOnce) {
  auto model = make_identity_servable(4);
  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.batching.max_batch_size = 4;
  config.batching.max_delay_ms = 0.1;
  Server old_server(model, config);
  old_server.start();

  constexpr int kProducers = 4;
  std::atomic<bool> stop_producing{false};
  std::mutex futures_mu;
  std::vector<std::future<Response>> futures;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(static_cast<std::uint64_t>(p) + 1);
      while (!stop_producing.load()) {
        Tensor x = Tensor::zeros(4);
        for (float& v : x.data()) v = static_cast<float>(rng.normal());
        auto f = old_server.submit(std::move(x));
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Drain while the producers are still enqueueing full-tilt.
  std::vector<Request> pending = old_server.close_and_drain();
  Server new_server(model, config);
  new_server.start();
  for (auto& r : pending) new_server.adopt(std::move(r));

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop_producing.store(true);
  for (auto& t : producers) t.join();
  // Second drain is idempotent and returns nothing new.
  EXPECT_TRUE(old_server.close_and_drain().empty());
  old_server.stop();
  new_server.stop();

  std::size_t ok = 0, turned_away = 0, other = 0;
  for (auto& f : futures) {
    // Resolved exactly once, with no stranded futures: ready NOW.
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    switch (f.get().status) {
      case Status::kOk: ++ok; break;
      case Status::kShutdown:
      case Status::kRejected: ++turned_away; break;
      default: ++other; break;
    }
  }
  EXPECT_EQ(other, 0u);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(ok + turned_away, futures.size());
}

// ----------------------------------------------------------------- stats

TEST(ServerStats, ReportAndJsonCarryTheCounters) {
  ServerStats stats;
  stats.set_workers(3);
  stats.record_submitted(3);
  stats.record_submitted(7);
  stats.record_batch(2);
  Response ok;
  ok.status = Status::kOk;
  ok.queue_ms = 1.0;
  ok.total_ms = 2.0;
  stats.record_response(ok);
  Response missed;
  missed.status = Status::kDeadlineExceeded;
  stats.record_response(missed);
  stats.record_rejected(Status::kRejected);

  const auto s = stats.snapshot();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.deadline_missed, 1u);
  EXPECT_EQ(s.rejected_full, 1u);
  EXPECT_EQ(s.peak_queue_depth, 7u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 2.0);
  EXPECT_EQ(s.resolved(), 2u);

  const std::string report = stats.report();
  EXPECT_NE(report.find("submitted=2"), std::string::npos);
  EXPECT_NE(report.find("deadline_missed=1"), std::string::npos);
  const std::string json = stats.json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"submitted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"latency_p99_ms\":"), std::string::npos);
  // Fleet aggregation joins on capacity and the reject-vs-deadline
  // breakdown, so the export must carry all three.
  EXPECT_NE(json.find("\"workers\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"failed_total\":1"), std::string::npos);
  EXPECT_EQ(s.workers, 3u);
  EXPECT_EQ(s.rejected_total(), 1u);
  EXPECT_EQ(s.failed_total(), 1u);
}

TEST(ServerStats, ConcurrentRecordingIsSafe) {
  ServerStats stats;
  constexpr int kThreads = 4, kPer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPer; ++i) {
        stats.record_submitted(static_cast<std::size_t>(i % 11));
        stats.record_batch(static_cast<std::size_t>(1 + (i + t) % 4));
        Response r;
        r.status = Status::kOk;
        r.total_ms = 0.5 * i;
        stats.record_response(r);
        if (i % 100 == 0) (void)stats.snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = stats.snapshot();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(s.batches, static_cast<std::uint64_t>(kThreads * kPer));
}

}  // namespace
}  // namespace taglets::serve
