// Self-test for tools/taglets_lint: builds synthetic source trees with
// one deliberate violation per rule and asserts each rule fires (and
// stays quiet on clean code). Keeps the linter honest — a rule that
// silently stops matching would otherwise look like a clean tree.
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace fs = std::filesystem;
using taglets::lint::Linter;
using taglets::lint::Violation;

namespace {

// A scratch src/ tree under the system temp dir, removed on teardown.
class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "taglets_lint_test" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    fs::remove_all(root_.parent_path());
  }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << text;
  }

  // The minimal two-module world: util (base) and serve (links util).
  void write_base_modules() {
    write("util/CMakeLists.txt", "add_library(taglets_util util.cpp)\n");
    write("serve/CMakeLists.txt",
          "add_library(taglets_serve serve.cpp)\n"
          "target_link_libraries(taglets_serve PUBLIC taglets_util)\n");
    write("util/util.hpp", "#pragma once\n");
    write("util/util.cpp", "#include \"util/util.hpp\"\n");
    write("serve/serve.hpp", "#pragma once\n");
    write("serve/serve.cpp", "#include \"serve/serve.hpp\"\n");
  }

  std::vector<Violation> run(const std::set<std::string>& only = {}) {
    return Linter{root_}.run(only);
  }

  static bool has(const std::vector<Violation>& vs, const std::string& rule,
                  const std::string& file_suffix) {
    for (const auto& v : vs) {
      if (v.rule == rule && v.file.size() >= file_suffix.size() &&
          v.file.compare(v.file.size() - file_suffix.size(),
                         file_suffix.size(), file_suffix) == 0) {
        return true;
      }
    }
    return false;
  }

  fs::path root_;
};

TEST_F(LintTest, CleanTreeHasNoViolations) {
  write_base_modules();
  EXPECT_TRUE(run().empty());
}

TEST_F(LintTest, LayeringRuleFiresOnUpwardInclude) {
  write_base_modules();
  // util does not link serve, so this include points up the stack.
  write("util/util.cpp",
        "#include \"util/util.hpp\"\n#include \"serve/serve.hpp\"\n");
  const auto vs = run({"layering"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "layering");
  EXPECT_EQ(vs[0].line, 2u);
  EXPECT_NE(vs[0].message.find("serve"), std::string::npos);
  EXPECT_FALSE(vs[0].suggestion.empty());
}

TEST_F(LintTest, LayeringRuleAllowsDownwardAndAllowlistedIncludes) {
  write_base_modules();
  // serve links util: downward include is fine. util/check.hpp is the
  // allowlisted layer-free contracts header, usable from anywhere.
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n#include \"util/util.hpp\"\n");
  write("obs/CMakeLists.txt", "add_library(taglets_obs obs.cpp)\n");
  write("obs/obs.hpp", "#pragma once\n");
  write("obs/obs.cpp",
        "#include \"obs/obs.hpp\"\n#include \"util/check.hpp\"\n");
  EXPECT_TRUE(run({"layering"}).empty());
}

TEST_F(LintTest, LayeringClosureIsTransitive) {
  write_base_modules();
  // eval -> serve -> util: eval may include util without linking it
  // directly, because the closure is transitive.
  write("eval/CMakeLists.txt",
        "add_library(taglets_eval eval.cpp)\n"
        "target_link_libraries(taglets_eval PUBLIC taglets_serve)\n");
  write("eval/eval.hpp", "#pragma once\n");
  write("eval/eval.cpp",
        "#include \"eval/eval.hpp\"\n#include \"util/util.hpp\"\n");
  const Linter linter{root_};
  ASSERT_TRUE(linter.closure().count("eval"));
  EXPECT_TRUE(linter.closure().at("eval").count("util"));
  EXPECT_TRUE(linter.run({"layering"}).empty());
}

TEST_F(LintTest, NakedThreadRuleFiresOutsideUtil) {
  write_base_modules();
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n#include <thread>\n"
        "void spin() { std::thread t([] {}); t.join(); }\n");
  const auto vs = run({"naked-thread"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "naked-thread");
  EXPECT_EQ(vs[0].line, 3u);
  EXPECT_FALSE(vs[0].suggestion.empty());
}

TEST_F(LintTest, NakedThreadRuleAllowsUtilAndIgnoresComments) {
  write_base_modules();
  write("util/util.cpp",
        "#include \"util/util.hpp\"\n#include <thread>\n"
        "void pool() { std::thread t([] {}); t.join(); }\n");
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n"
        "// std::thread here is prose, not code\n"
        "const char* kDoc = \"std::thread\";\n");
  EXPECT_TRUE(run({"naked-thread"}).empty());
}

TEST_F(LintTest, NakedMutexRuleFiresOutsideSyncHeader) {
  write_base_modules();
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n#include <mutex>\n"
        "std::mutex g_mu;\n"
        "std::condition_variable g_cv;\n"
        "std::shared_mutex g_rw;\n");
  const auto vs = run({"naked-mutex"});
  ASSERT_EQ(vs.size(), 3u);
  // The scan is per-token, so order by line is not guaranteed.
  std::set<std::size_t> lines;
  for (const auto& v : vs) {
    EXPECT_EQ(v.rule, "naked-mutex");
    EXPECT_FALSE(v.suggestion.empty());
    lines.insert(v.line);
  }
  EXPECT_EQ(lines, (std::set<std::size_t>{3u, 4u, 5u}));
}

TEST_F(LintTest, NakedMutexRuleAllowsSyncHeaderAndIgnoresProse) {
  write_base_modules();
  // util/sync.hpp is the allowlisted wrapper layer; prose and longer
  // type names (condition_variable_any fires once, not twice) stay
  // out of the raw-token scan.
  write("util/sync.hpp",
        "#pragma once\n#include <mutex>\n"
        "class Mutex { std::mutex mu_; };\n");
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n"
        "// std::mutex here is prose\n"
        "const char* kDoc = \"std::condition_variable\";\n"
        "std::condition_variable_any g_cva;\n");
  const auto vs = run({"naked-mutex"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_NE(vs[0].message.find("condition_variable_any"),
            std::string::npos);
}

TEST_F(LintTest, CvWaitPredicateRuleFiresOnBareWaits) {
  write_base_modules();
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n"
        "void f(L& lk) {\n"
        "  cv_.wait(lk);\n"
        "  q_cv.wait_for(lk, t);\n"
        "  hb_cv_->wait_until(lk, d);\n"
        "}\n");
  const auto vs = run({"cv-wait-predicate"});
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_EQ(vs[0].rule, "cv-wait-predicate");
  EXPECT_TRUE(has(vs, "cv-wait-predicate", "serve/serve.cpp"));
}

TEST_F(LintTest, CvWaitPredicateRuleAllowsPredicatesAndOtherReceivers) {
  write_base_modules();
  // Predicate-carrying waits pass, lambdas with internal commas are
  // one argument, and non-cv receivers (futures) are out of scope.
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n"
        "void f(L& lk) {\n"
        "  cv_.wait(lk, [this] { return g(a, b); });\n"
        "  q_cv.wait_for(lk, t, [] { return ready; });\n"
        "  cv_.wait_until(lk, d, pred);\n"
        "  future.wait(lk);\n"
        "  cv_.notify_all();\n"
        "}\n");
  EXPECT_TRUE(run({"cv-wait-predicate"}).empty());
}

TEST_F(LintTest, RandTimeRuleFiresOutsideUtilRng) {
  write_base_modules();
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n#include <cstdlib>\n"
        "int roll() { return rand(); }\n"
        "long now() { return time(nullptr); }\n");
  const auto vs = run({"rand-time"});
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_TRUE(has(vs, "rand-time", "serve/serve.cpp"));
  EXPECT_EQ(vs[0].line, 3u);
  EXPECT_EQ(vs[1].line, 4u);
}

TEST_F(LintTest, RandTimeRuleIgnoresIdentifierSubstrings) {
  write_base_modules();
  // rand/time as substrings of longer identifiers, or as member calls,
  // are not the C library functions.
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n"
        "int operand(int brand) { return brand; }\n"
        "long wall(Clock& c) { return c.time(0) + p->time(1); }\n"
        "int named = my_rand(3) + timestamp(4);\n");
  EXPECT_TRUE(run({"rand-time"}).empty());
}

TEST_F(LintTest, OwnHeaderFirstRuleFiresWhenHeaderIsNotFirst) {
  write_base_modules();
  write("serve/serve.cpp",
        "#include <vector>\n#include \"serve/serve.hpp\"\n");
  const auto vs = run({"own-header-first"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "own-header-first");
  EXPECT_NE(vs[0].suggestion.find("serve/serve.hpp"), std::string::npos);
}

TEST_F(LintTest, OwnHeaderFirstRuleQuietWithoutMatchingHeader) {
  write_base_modules();
  // A .cpp with no paired header (e.g. a main file) has no own header
  // to demand.
  write("serve/main_loop.cpp", "#include <vector>\nint main() {}\n");
  EXPECT_TRUE(run({"own-header-first"}).empty());
}

TEST_F(LintTest, UsingNamespaceRuleFiresInHeadersOnly) {
  write_base_modules();
  write("serve/serve.hpp", "#pragma once\nusing namespace std;\n");
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\nusing namespace std;\n");
  const auto vs = run({"using-namespace-header"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(has(vs, "using-namespace-header", "serve/serve.hpp"));
  EXPECT_EQ(vs[0].line, 2u);
}

TEST_F(LintTest, RuleFilterRunsOnlySelectedRules) {
  write_base_modules();
  write("serve/serve.hpp", "#pragma once\nusing namespace std;\n");
  write("serve/serve.cpp",
        "#include \"serve/serve.hpp\"\n#include <cstdlib>\n"
        "int roll() { return rand(); }\n");
  EXPECT_EQ(run({"rand-time"}).size(), 1u);
  EXPECT_EQ(run({"using-namespace-header"}).size(), 1u);
  EXPECT_EQ(run().size(), 2u);
}

TEST(LintStripTest, RemovesCommentsAndStringsKeepingNewlines) {
  const std::string in =
      "int a; // std::thread\n"
      "/* rand()\n   time( */ int b;\n"
      "const char* s = \"using namespace\"; char c = 'x';\n";
  const std::string out = taglets::lint::strip_comments_and_strings(in);
  EXPECT_EQ(out.find("std::thread"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("using namespace"), std::string::npos);
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Line structure must survive so violation line numbers stay right.
  EXPECT_EQ(std::count(in.begin(), in.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

TEST(LintRuleTableTest, EveryRuleHasIdAndDescription) {
  const auto& rules = taglets::lint::rules();
  ASSERT_EQ(rules.size(), 7u);
  std::set<std::string> ids;
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.description.empty());
    ids.insert(rule.id);
    for (const auto& [path, why] : rule.allowlist) {
      EXPECT_FALSE(path.empty());
      EXPECT_FALSE(why.empty());
    }
  }
  EXPECT_EQ(ids.size(), rules.size()) << "duplicate rule id";
}

}  // namespace
