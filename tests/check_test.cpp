// Contracts-layer tests: diagnostics carry expression text, operand
// values, and file:line; DCHECKs vanish in release builds; the domain
// helpers accept valid tensors/rows and reject invalid ones.
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace {

using taglets::util::ContractViolation;
using taglets::tensor::Tensor;

std::string violation_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ContractViolation";
  return {};
}

TEST(CheckTest, PassingChecksAreSilent) {
  EXPECT_NO_THROW(TAGLETS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(TAGLETS_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(TAGLETS_CHECK_NE(4, 5));
  EXPECT_NO_THROW(TAGLETS_CHECK_LT(4, 5));
  EXPECT_NO_THROW(TAGLETS_CHECK_LE(5, 5));
  EXPECT_NO_THROW(TAGLETS_CHECK_GT(5, 4));
  EXPECT_NO_THROW(TAGLETS_CHECK_GE(5, 5));
}

TEST(CheckTest, MessageCarriesExpressionFileAndLine) {
  const std::string msg =
      violation_message([] { TAGLETS_CHECK(2 + 2 == 5, "arithmetic broke"); });
  EXPECT_NE(msg.find("2 + 2 == 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("check_test.cpp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arithmetic broke"), std::string::npos) << msg;
  // file:line format — a colon followed by a digit after the file name.
  const auto file_pos = msg.find("check_test.cpp:");
  ASSERT_NE(file_pos, std::string::npos) << msg;
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
      msg[file_pos + std::string("check_test.cpp:").size()])))
      << msg;
}

TEST(CheckTest, OpMessageCarriesOperandValues) {
  const int lhs = 3;
  const std::size_t rhs = 7;
  const std::string msg =
      violation_message([&] { TAGLETS_CHECK_EQ(lhs, rhs, "dim mismatch"); });
  EXPECT_NE(msg.find("lhs == rhs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(3 vs. 7)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dim mismatch"), std::string::npos) << msg;
}

TEST(CheckTest, MixedSignednessComparesExactly) {
  // -1 as unsigned would be huge; std::cmp_* semantics keep it negative.
  const int negative = -1;
  const std::size_t zero = 0;
  EXPECT_THROW(TAGLETS_CHECK_GE(negative, zero), ContractViolation);
  EXPECT_NO_THROW(TAGLETS_CHECK_LT(negative, zero));
}

TEST(CheckTest, ViolationIsAnInvalidArgument) {
  // Contract violations slot into the std::logic_error hierarchy so
  // pre-existing handlers keep working.
  EXPECT_THROW(TAGLETS_CHECK_EQ(1, 2), std::invalid_argument);
  EXPECT_THROW(TAGLETS_CHECK_EQ(1, 2), std::logic_error);
}

TEST(CheckTest, MessageSupportsStreamedDetailPieces) {
  const std::string msg = violation_message(
      [] { TAGLETS_CHECK(false, "batch ", 12, " of ", 34); });
  EXPECT_NE(msg.find("batch 12 of 34"), std::string::npos) << msg;
}

// ---- DCHECK tier -----------------------------------------------------

TEST(CheckTest, DcheckMatchesBuildMode) {
#if TAGLETS_DCHECK_ENABLED
  EXPECT_THROW(TAGLETS_DCHECK(false), ContractViolation);
  EXPECT_THROW(TAGLETS_DCHECK_EQ(1, 2), ContractViolation);
#else
  EXPECT_NO_THROW(TAGLETS_DCHECK(false));
  EXPECT_NO_THROW(TAGLETS_DCHECK_EQ(1, 2));
#endif
}

TEST(CheckTest, DcheckIsInertInRelease) {
  int evaluations = 0;
  TAGLETS_DCHECK([&] {
    ++evaluations;
    return true;
  }());
#if TAGLETS_DCHECK_ENABLED
  EXPECT_EQ(evaluations, 1);
#else
  // Release: the condition is type-checked but never evaluated.
  EXPECT_EQ(evaluations, 0);
#endif
}

// ---- domain helpers --------------------------------------------------

TEST(CheckTest, CheckShapeAcceptsMatchingMatrix) {
  Tensor t = Tensor::zeros(3, 4);
  EXPECT_NO_THROW(TAGLETS_CHECK_SHAPE(t, 3, 4));
}

TEST(CheckTest, CheckShapeRejectsWrongShapeWithDiagnostics) {
  Tensor t = Tensor::zeros(2, 4);
  const std::string msg =
      violation_message([&] { TAGLETS_CHECK_SHAPE(t, 3, 4, "batch input"); });
  EXPECT_NE(msg.find("expected 3x4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("[2, 4]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("batch input"), std::string::npos) << msg;
}

TEST(CheckTest, CheckShapeRejectsVectors) {
  Tensor v = Tensor::zeros(4);
  EXPECT_THROW(TAGLETS_CHECK_SHAPE(v, 4, 1), ContractViolation);
}

TEST(CheckTest, CheckFiniteAcceptsFiniteTensor) {
  Tensor t = Tensor::full(2, 2, 0.5f);
  EXPECT_NO_THROW(TAGLETS_CHECK_FINITE(t));
}

TEST(CheckTest, CheckFiniteNamesTheBadIndex) {
  Tensor t = Tensor::full(1, 3, 1.0f);
  t.at(0, 2) = std::numeric_limits<float>::quiet_NaN();
  const std::string msg = violation_message([&] { TAGLETS_CHECK_FINITE(t); });
  EXPECT_NE(msg.find("index 2"), std::string::npos) << msg;
}

TEST(CheckTest, CheckProbRowAcceptsDistributions) {
  const std::vector<float> uniform = {0.25f, 0.25f, 0.25f, 0.25f};
  const std::vector<float> peaked = {1.0f, 0.0f, 0.0f};
  EXPECT_NO_THROW(TAGLETS_CHECK_PROB_ROW(uniform));
  EXPECT_NO_THROW(TAGLETS_CHECK_PROB_ROW(peaked));
}

TEST(CheckTest, CheckProbRowRejectsBadRows) {
  const std::vector<float> short_sum = {0.2f, 0.2f};
  const std::vector<float> negative = {1.2f, -0.2f};
  const std::vector<float> empty;
  const std::vector<float> nan_row = {
      0.5f, std::numeric_limits<float>::quiet_NaN(), 0.5f};
  EXPECT_THROW(TAGLETS_CHECK_PROB_ROW(short_sum), ContractViolation);
  EXPECT_THROW(TAGLETS_CHECK_PROB_ROW(negative), ContractViolation);
  EXPECT_THROW(TAGLETS_CHECK_PROB_ROW(empty), ContractViolation);
  EXPECT_THROW(TAGLETS_CHECK_PROB_ROW(nan_row), ContractViolation);
  const std::string msg =
      violation_message([&] { TAGLETS_CHECK_PROB_ROW(short_sum); });
  EXPECT_NE(msg.find("sum=0.4"), std::string::npos) << msg;
}

TEST(CheckTest, ChecksWorkOnTensorRows) {
  Tensor m = Tensor::zeros(2, 2);
  m.at(0, 0) = 0.5f;
  m.at(0, 1) = 0.5f;
  EXPECT_NO_THROW(TAGLETS_CHECK_PROB_ROW(m.row(0)));
  EXPECT_THROW(TAGLETS_CHECK_PROB_ROW(m.row(1)), ContractViolation);
}

}  // namespace
