#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "ensemble/ensemble.hpp"
#include "obs/trace.hpp"
#include "nn/classifier.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace taglets::util {
namespace {

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(7);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexThrowsOnZero) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<long> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(19);
  auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(23);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, CombineSeedsOrderSensitive) {
  EXPECT_NE(combine_seeds({1, 2}), combine_seeds({2, 1}));
  EXPECT_EQ(combine_seeds({1, 2}), combine_seeds({1, 2}));
  EXPECT_NE(combine_seeds({1}), combine_seeds({1, 0}));
}

// -------------------------------------------------------------- stats

TEST(Stats, MeanAndVariance) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  std::vector<double> one{4.0};
  EXPECT_DOUBLE_EQ(mean(one), 4.0);
  EXPECT_DOUBLE_EQ(ci95(one), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
  std::vector<double> empty;
  EXPECT_THROW(min_of(empty), std::invalid_argument);
}

TEST(Stats, Ci95MatchesFormula) {
  std::vector<double> xs{10, 12, 14};
  const double expected = 1.96 * stddev(xs) / std::sqrt(3.0);
  EXPECT_NEAR(ci95(xs), expected, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  std::vector<double> xs{1, 1, 1};
  std::vector<double> ys{2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson(xs, std::vector<double>{1.0}), 0.0);
}

TEST(Stats, PairedTStatistic) {
  std::vector<double> a{10, 12, 14, 11};
  std::vector<double> b{9, 10, 12, 10};
  // All diffs positive -> strongly positive t.
  EXPECT_GT(paired_t_statistic(a, b), 2.0);
  EXPECT_LT(paired_t_statistic(b, a), -2.0);
  // Constant zero differences -> 0.
  EXPECT_DOUBLE_EQ(paired_t_statistic(a, a), 0.0);
  std::vector<double> one{1.0};
  EXPECT_THROW(paired_t_statistic(one, one), std::invalid_argument);
}

TEST(Stats, MeanCiFormatting) {
  MeanCi summary{71.2345, 1.675};
  EXPECT_EQ(summary.to_string(), "71.23 ± 1.68");
  EXPECT_EQ(summary.to_string(1), "71.2 ± 1.7");
}

TEST(Stats, RunningStatMatchesBatch) {
  std::vector<double> xs{2.5, -1.0, 7.25, 0.0, 3.5};
  RunningStat rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
}

// -------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable table({"Method", "Acc"});
  table.add_row({"fine-tuning", "46.77"});
  table.add_rule();
  table.add_row({"taglets", "70.92"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("taglets"), std::string::npos);
  // Rule between the two rows plus the header rule.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Table, RejectsBadWidths) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

// ---------------------------------------------------------------- csv

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEmitsHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"dataset", "accuracy"});
  writer.write_row({"fmd", "68.07"});
  writer.write_row({"office,home", "70.92"});
  EXPECT_EQ(writer.rows_written(), 2u);
  const std::string text = out.str();
  EXPECT_NE(text.find("dataset,accuracy"), std::string::npos);
  EXPECT_NE(text.find("\"office,home\""), std::string::npos);
  EXPECT_THROW(writer.write_row({"too", "many", "cells"}),
               std::invalid_argument);
}

// ------------------------------------------------------------- string

TEST(StringUtil, SplitAndJoinRoundTrip) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(StringUtil, ToLowerAndTrim) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("concept_0001", "concept_"));
  EXPECT_FALSE(starts_with("con", "concept_"));
}

struct PrefixCase {
  const char* a;
  const char* b;
  std::size_t expected;
};

class CommonPrefixTest : public ::testing::TestWithParam<PrefixCase> {};

TEST_P(CommonPrefixTest, MatchesExpected) {
  const auto& param = GetParam();
  EXPECT_EQ(common_prefix_length(param.a, param.b), param.expected);
  EXPECT_EQ(common_prefix_length(param.b, param.a), param.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CommonPrefixTest,
    ::testing::Values(PrefixCase{"oatghurt", "oat_milk", 3},
                      PrefixCase{"soyghurt", "soy_milk", 3},
                      PrefixCase{"yoghurt", "yoghurt", 7},
                      PrefixCase{"abc", "xyz", 0},
                      PrefixCase{"", "anything", 0}));

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

// ----------------------------------------------------------------- env

TEST(Env, FallbacksAndParsing) {
  EXPECT_EQ(env_string("TAGLETS_SURELY_UNSET_XYZ", "dflt"), "dflt");
  EXPECT_EQ(env_long("TAGLETS_SURELY_UNSET_XYZ", 5), 5);
  EXPECT_FALSE(env_flag("TAGLETS_SURELY_UNSET_XYZ"));
  ::setenv("TAGLETS_TEST_ENV_NUM", "42", 1);
  EXPECT_EQ(env_long("TAGLETS_TEST_ENV_NUM", 0), 42);
  ::setenv("TAGLETS_TEST_ENV_NUM", "not-a-number", 1);
  EXPECT_EQ(env_long("TAGLETS_TEST_ENV_NUM", 9), 9);
  ::setenv("TAGLETS_TEST_ENV_FLAG", "true", 1);
  EXPECT_TRUE(env_flag("TAGLETS_TEST_ENV_FLAG"));
  ::unsetenv("TAGLETS_TEST_ENV_NUM");
  ::unsetenv("TAGLETS_TEST_ENV_FLAG");
}

// --------------------------------------------------------------- timer

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
  EXPECT_GE(timer.elapsed_ms(), 0.0);
}

TEST(LatencyRecorder, PercentilesAndSummary) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.record_ms(i);
  EXPECT_EQ(recorder.count(), 100u);
  EXPECT_NEAR(recorder.mean_ms(), 50.5, 1e-9);
  EXPECT_NEAR(recorder.percentile_ms(0), 1.0, 1e-9);
  EXPECT_NEAR(recorder.percentile_ms(100), 100.0, 1e-9);
  EXPECT_NEAR(recorder.percentile_ms(50), 50.5, 1e-9);
  EXPECT_NE(recorder.summary().find("p99"), std::string::npos);
}

// Regression test for the record_ms data race: serving paths record
// from several worker threads while readers poll percentiles (run under
// ThreadSanitizer in CI). record_ms used to do an unguarded push_back.
TEST(LatencyRecorder, ConcurrentRecordAndReadIsThreadSafe) {
  LatencyRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record_ms(static_cast<double>((i + t) % 17));
        if (i % 100 == 0) {
          (void)recorder.percentile_ms(99);
          (void)recorder.summary();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Copies snapshot the samples and stay independent afterwards.
  LatencyRecorder copy = recorder;
  recorder.record_ms(1.0);
  EXPECT_EQ(copy.count(), static_cast<std::size_t>(kThreads) * kPerThread);
}

// Regression tests for the percentile sorted cache: percentile_ms and
// summary() used to re-sort every sample on each call.
TEST(LatencyRecorder, RepeatedPercentileCallsAreStable) {
  LatencyRecorder recorder;
  for (int i = 100; i >= 1; --i) recorder.record_ms(i);  // reverse order
  const double first = recorder.percentile_ms(90);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(recorder.percentile_ms(90), first);
  }
}

TEST(LatencyRecorder, SortedCacheInvalidatedByNewSamples) {
  LatencyRecorder recorder;
  recorder.record_ms(10.0);
  EXPECT_NEAR(recorder.percentile_ms(100), 10.0, 1e-9);  // builds cache
  recorder.record_ms(20.0);  // must invalidate it
  EXPECT_NEAR(recorder.percentile_ms(100), 20.0, 1e-9);
  EXPECT_NEAR(recorder.percentile_ms(0), 10.0, 1e-9);
}

TEST(LatencyRecorder, BatchPercentilesMatchIndividualCalls) {
  LatencyRecorder recorder;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) recorder.record_ms(rng.uniform() * 100.0);
  const double ps[] = {0, 25, 50, 95, 99, 100};
  const std::vector<double> batch = recorder.percentiles_ms(ps);
  ASSERT_EQ(batch.size(), 6u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], recorder.percentile_ms(ps[i]));
  }
  EXPECT_TRUE(recorder.percentiles_ms({}).empty());
}

// ---------------------------------------------------------- threadpool

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(64);
  pool.parallel_for(64, [&](std::size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForJoinsAllTasksBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> entered{0};
  std::atomic<int> exited{0};
  // Early throwers used to make parallel_for return while later queued
  // tasks still referenced `fn` and these counters — a use-after-scope.
  // The fixed version runs every task to completion first.
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          entered++;
                          if (i % 8 == 0) {
                            exited++;
                            throw std::runtime_error("boom");
                          }
                          std::this_thread::sleep_for(
                              std::chrono::microseconds(200));
                          exited++;
                        }),
      std::runtime_error);
  EXPECT_EQ(entered.load(), 64);
  EXPECT_EQ(exited.load(), 64);
}

// ---------------------------------------------------------- parallel

/// Temporarily redirect Parallel::global() at a specific pool.
class GlobalParallelOverride {
 public:
  explicit GlobalParallelOverride(Parallel* pool)
      : prev_(Parallel::exchange_global(pool)) {}
  ~GlobalParallelOverride() { Parallel::exchange_global(prev_); }

 private:
  Parallel* prev_;
};

tensor::Tensor random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  tensor::Tensor t = tensor::Tensor::zeros(rows, cols);
  for (float& x : t.data()) x = static_cast<float>(rng.normal());
  return t;
}

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return same_shape(a, b) &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

/// A taglet whose logits are a fixed random linear map (identity
/// encoder), mirroring the ensemble_test fixture.
modules::Taglet random_taglet(const std::string& name, std::size_t dim,
                              std::size_t classes, std::uint64_t seed) {
  nn::Sequential encoder;
  encoder.add(std::make_unique<nn::Linear>(
      nn::Linear(tensor::Tensor::identity(dim), tensor::Tensor::zeros(dim))));
  nn::Linear head(random_matrix(dim, classes, seed),
                  random_matrix(1, classes, seed + 17).row_copy(0));
  return modules::Taglet(name, nn::Classifier(encoder, std::move(head)));
}

TEST(Parallel, ForEachRunsEveryIndexOnce) {
  Parallel pool(4);
  std::vector<std::atomic<int>> counts(257);
  pool.for_each(257, [&](std::size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, ForRangesCoversExactlyOnce) {
  Parallel pool(3);
  std::vector<std::atomic<int>> counts(100);
  pool.for_ranges(100, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) counts[i]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, SerialModeRunsInlineOnCallerThread) {
  Parallel pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  pool.for_each(16, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) off_thread++;
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(Parallel, ReadsThreadCountFromEnvironment) {
  ::setenv("TAGLETS_THREADS", "3", 1);
  Parallel pool;
  EXPECT_EQ(pool.threads(), 3u);
  ::setenv("TAGLETS_THREADS", "1", 1);
  Parallel serial;
  EXPECT_EQ(serial.threads(), 1u);
  ::unsetenv("TAGLETS_THREADS");
}

TEST(Parallel, NestedParallelForCompletes) {
  Parallel pool(4);
  GlobalParallelOverride guard(&pool);
  std::atomic<int> total{0};
  // Outer and inner loops share the same pool; the owner of each loop
  // executes chunks itself and drains the queue while waiting, so this
  // must terminate at any thread count.
  pool.for_each(8, [&](std::size_t) {
    parallel_for(32, [&](std::size_t) {
      parallel_for(4, [&](std::size_t) { total++; });
    });
  });
  EXPECT_EQ(total.load(), 8 * 32 * 4);
}

TEST(Parallel, ThrowingIterationJoinsAllInFlightWork) {
  Parallel pool(4);
  std::atomic<int> entered{0};
  std::atomic<int> exited{0};
  EXPECT_THROW(pool.for_each(64,
                             [&](std::size_t i) {
                               entered++;
                               if (i == 5) {
                                 exited++;
                                 throw std::invalid_argument("poison");
                               }
                               std::this_thread::sleep_for(
                                   std::chrono::microseconds(200));
                               exited++;
                             }),
               std::invalid_argument);
  // Every claimed iteration finished before the rethrow; nothing can
  // still be touching the counters (or the caller's stack) afterwards.
  EXPECT_EQ(entered.load(), exited.load());
  const int snapshot = entered.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(entered.load(), snapshot);
}

TEST(Parallel, NestedThrowPropagatesWithoutDeadlock) {
  Parallel pool(4);
  GlobalParallelOverride guard(&pool);
  EXPECT_THROW(pool.for_each(4,
                             [&](std::size_t) {
                               parallel_for(16, [&](std::size_t j) {
                                 if (j == 3) {
                                   throw std::runtime_error("inner");
                                 }
                               });
                             }),
               std::runtime_error);
}

TEST(Parallel, MatmulBitwiseIdenticalSerialVsParallel) {
  const tensor::Tensor a = random_matrix(93, 57, 3);
  const tensor::Tensor b = random_matrix(57, 41, 4);
  Parallel serial(1);
  Parallel four(4);
  tensor::Tensor c_serial, c_par, tn_serial, tn_par, nt_serial, nt_par;
  {
    GlobalParallelOverride guard(&serial);
    c_serial = tensor::matmul(a, b);
    tn_serial = tensor::matmul_tn(a, random_matrix(93, 41, 5));
    nt_serial = tensor::matmul_nt(a, random_matrix(29, 57, 6));
  }
  {
    GlobalParallelOverride guard(&four);
    c_par = tensor::matmul(a, b);
    tn_par = tensor::matmul_tn(a, random_matrix(93, 41, 5));
    nt_par = tensor::matmul_nt(a, random_matrix(29, 57, 6));
  }
  EXPECT_TRUE(bitwise_equal(c_serial, c_par));
  EXPECT_TRUE(bitwise_equal(tn_serial, tn_par));
  EXPECT_TRUE(bitwise_equal(nt_serial, nt_par));
}

TEST(Parallel, EnsembleProbaBitwiseIdenticalSerialVsParallel) {
  std::vector<modules::Taglet> taglets;
  for (std::uint64_t t = 0; t < 4; ++t) {
    // Two-step append dodges a GCC 12 -Wrestrict false positive on
    // operator+(const char*, std::string&&) (PR105329).
    std::string name = "t";
    name += std::to_string(t);
    taglets.push_back(random_taglet(name, 12, 7, 100 + t));
  }
  const tensor::Tensor inputs = random_matrix(128, 12, 9);
  Parallel serial(1);
  Parallel four(4);
  tensor::Tensor p_serial, p_par;
  {
    GlobalParallelOverride guard(&serial);
    p_serial = ensemble::ensemble_proba(taglets, inputs);
  }
  {
    GlobalParallelOverride guard(&four);
    p_par = ensemble::ensemble_proba(taglets, inputs);
  }
  EXPECT_TRUE(bitwise_equal(p_serial, p_par));
}

// -------------------------------------------------------------- logging

TEST(Logging, ThresholdFilters) {
  const LogLevel saved = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  TAGLETS_LOG(kDebug) << "should be dropped";  // must not crash
  set_log_threshold(saved);
}

TEST(Logging, SinkReceivesStructuredRecords) {
  const LogLevel saved = log_threshold();
  set_log_threshold(LogLevel::kInfo);
  std::vector<LogRecord> captured;
  std::mutex mu;
  set_log_sink([&](const LogRecord& record) {
    std::lock_guard<std::mutex> lock(mu);
    captured.push_back(record);
  });
  TAGLETS_LOG(kWarn) << "sinked " << 42;
  TAGLETS_LOG(kDebug) << "below threshold";  // filtered before the sink
  set_log_sink(nullptr);
  set_log_threshold(saved);
  TAGLETS_LOG(kError) << "";  // default writer restored; must not crash

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kWarn);
  EXPECT_EQ(captured[0].message, "sinked 42");
  EXPECT_GT(captured[0].ts_ms, 0);
  EXPECT_EQ(captured[0].tid, obs::current_thread_id());
}

TEST(Logging, JsonFormatCarriesAllFields) {
  LogRecord record;
  record.level = LogLevel::kInfo;
  record.ts_ms = 1712345678901;
  record.tid = 3;
  record.message = "epoch done\n\"quoted\"";
  const std::string line = format_json_log(record);
  EXPECT_EQ(line,
            "{\"ts_ms\":1712345678901,\"level\":\"info\",\"tid\":3,"
            "\"msg\":\"epoch done\\n\\\"quoted\\\"\"}");
}

TEST(Logging, JsonModeTogglesAtRuntime) {
  const bool saved = log_json_enabled();
  set_log_json(true);
  EXPECT_TRUE(log_json_enabled());
  set_log_json(false);
  EXPECT_FALSE(log_json_enabled());
  set_log_json(saved);
}

}  // namespace
}  // namespace taglets::util
