#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "backbone/backbone.hpp"
#include "backbone/zoo.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "test_support.hpp"

namespace taglets::backbone {
namespace {

TEST(Backbone, KindNamesDistinct) {
  EXPECT_STRNE(kind_name(Kind::kBitS), kind_name(Kind::kRn50S));
}

TEST(Backbone, PretrainingLearnsAuxiliaryTask) {
  auto& zoo = taglets::testing::small_zoo();
  const Pretrained& rn50 = zoo.get(Kind::kRn50S);
  // Far above 1/n_classes chance (~0.013 for the small world subset).
  EXPECT_GT(rn50.final_train_accuracy, 0.10);
  EXPECT_EQ(rn50.feature_dim, taglets::testing::small_pretrain_config().feature_dim);
}

TEST(Backbone, Rn50SeesSubsetBitSeesAll) {
  auto& zoo = taglets::testing::small_zoo();
  const Pretrained& rn50 = zoo.get(Kind::kRn50S);
  const Pretrained& bit = zoo.get(Kind::kBitS);
  EXPECT_LT(rn50.pretrain_concepts.size(), bit.pretrain_concepts.size());
  EXPECT_EQ(bit.pretrain_concepts.size(),
            taglets::testing::small_world().config().concept_count - 1);
}

TEST(Backbone, EncodersProduceFiniteFeatures) {
  auto& zoo = taglets::testing::small_zoo();
  auto& world = taglets::testing::small_world();
  util::Rng rng(5);
  tensor::Tensor img = world.sample_image(10, synth::Domain::kNatural, rng);
  for (Kind kind : {Kind::kRn50S, Kind::kBitS}) {
    nn::Sequential encoder = zoo.get(kind).encoder;  // copy
    tensor::Tensor features =
        encoder.forward(img.reshape(1, img.size()), false);
    EXPECT_EQ(features.cols(), zoo.get(kind).feature_dim);
    for (float v : features.data()) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0f);  // ReLU output
    }
  }
}

TEST(Backbone, PretrainedBeatsRandomEncoderFewShot) {
  auto& zoo = taglets::testing::small_zoo();
  auto& world = taglets::testing::small_world();
  auto task = taglets::testing::small_task(/*shots=*/5);
  const auto pc = taglets::testing::small_pretrain_config();

  auto evaluate = [&](const nn::Sequential& encoder) {
    util::Rng rng(9);
    nn::Classifier model(encoder, pc.feature_dim, task.num_classes(), rng);
    nn::FitConfig fit;
    fit.epochs = 10;
    fit.batch_size = 32;
    fit.min_steps = 200;
    fit.sgd.lr = 0.003;
    nn::fit_hard(model, task.labeled_inputs, task.labeled_labels, fit, rng);
    return nn::evaluate_accuracy(model, task.test_inputs, task.test_labels);
  };

  util::Rng rng(13);
  nn::Sequential random_encoder =
      nn::make_mlp({world.pixel_dim(), pc.hidden_dim, pc.feature_dim}, rng);
  random_encoder.add(std::make_unique<nn::ReLU>());

  const double pretrained = evaluate(zoo.get(Kind::kBitS).encoder);
  const double random = evaluate(random_encoder);
  EXPECT_GT(pretrained, random);
}

TEST(Backbone, ReferenceHeadShapes) {
  auto& zoo = taglets::testing::small_zoo();
  const ReferenceHead& head = zoo.zsl_reference();
  const Pretrained& rn50 = zoo.get(Kind::kRn50S);
  EXPECT_EQ(head.concepts.size(), rn50.pretrain_concepts.size());
  EXPECT_EQ(head.weights.rows(), head.concepts.size());
  EXPECT_EQ(head.weights.cols(), rn50.feature_dim);
  EXPECT_EQ(head.biases.size(), head.concepts.size());
}

TEST(Zoo, DiskCacheRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "taglets_test_cache").string();
  std::filesystem::remove_all(dir);
  auto& world = taglets::testing::small_world();
  PretrainConfig pc = taglets::testing::small_pretrain_config();
  pc.epochs = 2;  // keep this test fast

  Zoo first(&world, pc, dir);
  const Pretrained& trained = first.get(Kind::kRn50S);

  Zoo second(&world, pc, dir);
  const Pretrained& cached = second.get(Kind::kRn50S);

  EXPECT_EQ(cached.pretrain_concepts, trained.pretrain_concepts);
  EXPECT_DOUBLE_EQ(cached.final_train_accuracy, trained.final_train_accuracy);
  // Identical encoder outputs.
  util::Rng rng(3);
  tensor::Tensor img = world.sample_image(4, synth::Domain::kNatural, rng);
  tensor::Tensor batch = img.reshape(1, img.size());
  nn::Sequential ea = trained.encoder;
  nn::Sequential eb = cached.encoder;
  tensor::Tensor fa = ea.forward(batch, false);
  tensor::Tensor fb = eb.forward(batch, false);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_FLOAT_EQ(fa.data()[i], fb.data()[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(Zoo, RejectsNullWorld) {
  EXPECT_THROW(Zoo(nullptr, PretrainConfig{}, std::string{}),
               std::invalid_argument);
}

TEST(Zoo, ConcurrentColdGetPretrainsOnceAndReturnsStableReferences) {
  // TSan regression for the unsynchronized map in Zoo::get: N threads
  // hammer a cold zoo; pretraining for each Kind must run exactly once
  // and every caller must receive the same (stable) object.
  auto& world = taglets::testing::small_world();
  PretrainConfig pc = taglets::testing::small_pretrain_config();
  pc.epochs = 2;  // keep the hammer fast
  Zoo zoo(&world, pc, std::string{});  // no disk cache

  const auto pretrained_before = obs::MetricsRegistry::global()
                                     .counter("backbone.pretrained_total")
                                     .value();
  constexpr int kThreads = 8;
  std::vector<const Pretrained*> rn50(kThreads, nullptr);
  std::vector<const Pretrained*> bit(kThreads, nullptr);
  std::vector<const ReferenceHead*> heads(kThreads, nullptr);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Alternate the first touch so both Kinds race from cold.
        if (t % 2 == 0) {
          rn50[t] = &zoo.get(Kind::kRn50S);
          bit[t] = &zoo.get(Kind::kBitS);
        } else {
          bit[t] = &zoo.get(Kind::kBitS);
          rn50[t] = &zoo.get(Kind::kRn50S);
        }
        heads[t] = &zoo.zsl_reference();
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(rn50[t], rn50[0]) << "thread " << t;
    EXPECT_EQ(bit[t], bit[0]) << "thread " << t;
    EXPECT_EQ(heads[t], heads[0]) << "thread " << t;
  }
  // Exactly one pretraining per Kind despite 8 concurrent callers.
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("backbone.pretrained_total")
                .value(),
            pretrained_before + 2);
}

TEST(Zoo, QuantizeKnobHandlesNegativeHugeAndNan) {
  // Regression for the fingerprint UB: static_cast<uint64_t> of a
  // negative double is undefined; quantize_knob rounds through a
  // checked signed intermediate instead.
  EXPECT_EQ(quantize_knob(0.0, 1e6), 0u);
  EXPECT_EQ(quantize_knob(1.5, 1e6), 1500000u);
  EXPECT_EQ(quantize_knob(-1.5, 1e6),
            static_cast<std::uint64_t>(std::int64_t{-1500000}));
  // Rounding, not truncation, so nearby knobs stay distinct.
  EXPECT_NE(quantize_knob(1.0000004, 1e6), quantize_knob(1.0000016, 1e6));
  // Saturation at the int64 range ends instead of llround UB.
  EXPECT_EQ(quantize_knob(1e300, 1e6),
            static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max()));
  EXPECT_EQ(quantize_knob(-1e300, 1e6),
            static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::min()));
  // NaN maps to a fixed sentinel — deterministic, and distinct from 0.
  const double nan = std::nan("");
  EXPECT_EQ(quantize_knob(nan, 1e6), 0x7FF8000000000000ULL);
  EXPECT_EQ(quantize_knob(1.0, nan), 0x7FF8000000000000ULL);

  // Negative knobs produce distinct fingerprint components (the old
  // cast collapsed them unpredictably).
  EXPECT_NE(quantize_knob(-0.25, 1e6), quantize_knob(-0.5, 1e6));
  EXPECT_NE(quantize_knob(-0.25, 1e6), quantize_knob(0.25, 1e6));
}

}  // namespace
}  // namespace taglets::backbone
