#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ensemble/distill.hpp"
#include "ensemble/ensemble.hpp"
#include "ensemble/servable.hpp"
#include "nn/trainer.hpp"
#include "test_support.hpp"
#include "util/check.hpp"

namespace taglets::ensemble {
namespace {

using modules::Taglet;
using tensor::Tensor;

/// A taglet whose logits are a fixed linear map — fully controllable.
Taglet make_linear_taglet(const std::string& name, const Tensor& weight,
                          const Tensor& bias) {
  nn::Sequential identity_encoder;
  util::Rng rng(1);
  // Encoder = identity via a Linear with identity weights.
  nn::Linear identity(Tensor::identity(weight.rows()),
                      Tensor::zeros(weight.rows()));
  identity_encoder.add(std::make_unique<nn::Linear>(identity));
  return Taglet(name,
                nn::Classifier(identity_encoder, nn::Linear(weight, bias)));
}

/// A taglet that deterministically prefers class `c` for every input.
Taglet make_constant_taglet(const std::string& name, std::size_t input_dim,
                            std::size_t num_classes, std::size_t c,
                            float confidence = 5.0f) {
  Tensor weight = Tensor::zeros(input_dim, num_classes);
  Tensor bias = Tensor::zeros(num_classes);
  bias[c] = confidence;
  return make_linear_taglet(name, weight, bias);
}

// ------------------------------------------------------------- ensemble

TEST(Ensemble, VoteMatrixShape) {
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("a", 3, 4, 0));
  taglets.push_back(make_constant_taglet("b", 3, 4, 1));
  Tensor example = Tensor::from_vector({0.1f, 0.2f, 0.3f});
  Tensor votes = vote_matrix(taglets, example);
  EXPECT_EQ(votes.rows(), 2u);
  EXPECT_EQ(votes.cols(), 4u);
  for (std::size_t t = 0; t < 2; ++t) {
    double sum = 0.0;
    for (float v : votes.row(t)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ensemble, ProbaIsMeanOfTagletProbas) {
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("a", 2, 3, 0, 100.0f));
  taglets.push_back(make_constant_taglet("b", 2, 3, 1, 100.0f));
  Tensor inputs = Tensor::zeros(4, 2);
  Tensor proba = ensemble_proba(taglets, inputs);
  // Each taglet is fully confident on a different class -> mean 0.5/0.5.
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_NEAR(proba.at(i, 0), 0.5f, 1e-4);
    EXPECT_NEAR(proba.at(i, 1), 0.5f, 1e-4);
    EXPECT_NEAR(proba.at(i, 2), 0.0f, 1e-4);
  }
}

TEST(Ensemble, MajorityWins) {
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("a", 2, 3, 2));
  taglets.push_back(make_constant_taglet("b", 2, 3, 2));
  taglets.push_back(make_constant_taglet("c", 2, 3, 0));
  Tensor inputs = Tensor::zeros(5, 2);
  auto predictions = ensemble_predict(taglets, inputs);
  for (std::size_t p : predictions) EXPECT_EQ(p, 2u);
}

TEST(Ensemble, ConfidentMinorityCanOutvoteUncertainMajority) {
  std::vector<Taglet> taglets;
  // Two barely-confident voters for class 0, one very confident for 1.
  taglets.push_back(make_constant_taglet("a", 2, 2, 0, 0.1f));
  taglets.push_back(make_constant_taglet("b", 2, 2, 0, 0.1f));
  taglets.push_back(make_constant_taglet("c", 2, 2, 1, 10.0f));
  Tensor inputs = Tensor::zeros(1, 2);
  auto predictions = ensemble_predict(taglets, inputs);
  EXPECT_EQ(predictions[0], 1u);  // soft voting, not majority voting
}

TEST(Ensemble, AccuracyAgainstLabels) {
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("a", 2, 2, 1));
  Tensor inputs = Tensor::zeros(4, 2);
  std::vector<std::size_t> labels{1, 1, 0, 1};
  EXPECT_NEAR(ensemble_accuracy(taglets, inputs, labels), 0.75, 1e-9);
}

TEST(Ensemble, EmptyTagletsThrow) {
  std::vector<Taglet> none;
  Tensor inputs = Tensor::zeros(1, 2);
  EXPECT_THROW(ensemble_proba(none, inputs), std::invalid_argument);
}

TEST(Ensemble, VoteMatrixRejectsMismatchedClassCounts) {
  // The vote matrix is sized from taglet 0; a taglet emitting a
  // different class count used to write out of bounds.
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("four-classes", 3, 4, 0));
  taglets.push_back(make_constant_taglet("three-classes", 3, 3, 1));
  Tensor example = Tensor::from_vector({0.1f, 0.2f, 0.3f});
  EXPECT_THROW(vote_matrix(taglets, example), std::invalid_argument);
  EXPECT_THROW(ensemble_proba(taglets, Tensor::zeros(2, 3)),
               std::invalid_argument);
}

// -------------------------------------------------------------- distill

TEST(Distill, OneHotAndHarden) {
  std::vector<std::size_t> labels{2, 0};
  Tensor oh = one_hot(labels, 3);
  EXPECT_FLOAT_EQ(oh.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(oh.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(oh.at(0, 0), 0.0f);
  std::vector<std::size_t> bad{7};
  EXPECT_THROW(one_hot(bad, 3), taglets::util::ContractViolation);

  Tensor soft = Tensor::from_matrix(2, 2, {0.4f, 0.6f, 0.9f, 0.1f});
  Tensor hard = harden(soft);
  EXPECT_FLOAT_EQ(hard.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(hard.at(1, 0), 1.0f);
}

TEST(Distill, EndModelLearnsFromPseudoLabels) {
  auto task = taglets::testing::small_task(/*shots=*/2);
  auto& zoo = taglets::testing::small_zoo();
  const auto& bb = zoo.get(backbone::Kind::kRn50S);

  // Oracle pseudo labels: ground truth one-hot on the unlabeled pool.
  Tensor pseudo = one_hot(task.unlabeled_true_labels, task.num_classes());
  EndModelConfig config;
  config.min_steps = 400;
  util::Rng rng(5);
  nn::Classifier model = train_end_model(task, pseudo, bb.encoder,
                                         bb.feature_dim, config, rng, 0.5);
  // With oracle labels the end model must do very well.
  EXPECT_GT(nn::evaluate_accuracy(model, task.test_inputs, task.test_labels),
            0.6);
}

TEST(Distill, ValidatesPseudoLabelRows) {
  auto task = taglets::testing::small_task(1);
  auto& zoo = taglets::testing::small_zoo();
  const auto& bb = zoo.get(backbone::Kind::kRn50S);
  Tensor wrong = Tensor::zeros(3, task.num_classes());
  EndModelConfig config;
  util::Rng rng(5);
  EXPECT_THROW(train_end_model(task, wrong, bb.encoder, bb.feature_dim,
                               config, rng),
               std::invalid_argument);
}

// ------------------------------------------------------------- servable

TEST(Servable, PredictRecordsLatencyAndNames) {
  Taglet taglet = make_constant_taglet("m", 3, 2, 1);
  ServableModel model(taglet.model(), {"cat", "dog"});
  Tensor example = Tensor::from_vector({0.0f, 0.0f, 0.0f});
  EXPECT_EQ(model.predict(example), 1u);
  EXPECT_EQ(model.predict_name(example), "dog");
  EXPECT_EQ(model.latency().count(), 2u);
  EXPECT_EQ(model.num_classes(), 2u);
  EXPECT_GT(model.parameter_count(), 0u);
}

TEST(Servable, RejectsNameCountMismatch) {
  Taglet taglet = make_constant_taglet("m", 3, 2, 0);
  EXPECT_THROW(ServableModel(taglet.model(), {"only-one"}),
               std::invalid_argument);
}

TEST(Servable, SaveLoadRoundTrip) {
  Taglet taglet = make_constant_taglet("m", 3, 2, 1);
  ServableModel model(taglet.model(), {"cat", "dog"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "taglets_servable.bin")
          .string();
  model.save(path);
  ServableModel loaded = ServableModel::load(path);
  EXPECT_EQ(loaded.class_names(), model.class_names());
  Tensor example = Tensor::from_vector({0.5f, -0.5f, 0.25f});
  EXPECT_EQ(loaded.predict(example), model.predict(example));
  std::filesystem::remove(path);
  EXPECT_THROW(ServableModel::load("/nonexistent/path.bin"),
               std::runtime_error);
}

TEST(Servable, RoundTripPredictionsAreBitwiseIdentical) {
  // Weights round-trip exactly, so probabilities must too — serving
  // the reloaded artifact is indistinguishable from the trained model.
  util::Rng rng(33);
  Tensor weight = Tensor::zeros(5, 4);
  for (float& x : weight.data()) x = static_cast<float>(rng.normal());
  Taglet taglet = make_linear_taglet("m", weight, Tensor::zeros(4));
  ServableModel model(taglet.model(), {"a", "b", "c", "d"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "taglets_servable_rt.bin")
          .string();
  model.save(path);
  ServableModel loaded = ServableModel::load(path);
  std::filesystem::remove(path);

  Tensor batch = Tensor::zeros(7, 5);
  for (float& x : batch.data()) x = static_cast<float>(rng.normal());
  const Tensor before = model.predict_proba(batch);
  const Tensor after = loaded.predict_proba(batch);
  ASSERT_TRUE(tensor::same_shape(before, after));
  const auto b = before.data();
  const auto a = after.data();
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], a[i]) << "element " << i;  // bitwise, not NEAR
  }
  EXPECT_EQ(loaded.predict_batch(batch), model.predict_batch(batch));
}

TEST(Servable, LoadRejectsCorruptedFiles) {
  Taglet taglet = make_constant_taglet("m", 3, 2, 1);
  ServableModel model(taglet.model(), {"cat", "dog"});
  const auto dir = std::filesystem::temp_directory_path();
  const std::string good = (dir / "taglets_servable_good.bin").string();
  model.save(good);

  // Not a servable file at all: bad magic, error names the path.
  const std::string garbage = (dir / "taglets_servable_garbage.bin").string();
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a model";
  }
  try {
    ServableModel::load(garbage);
    FAIL() << "expected load to reject bad magic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(garbage), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }

  // Truncation anywhere in the payload is detected.
  const auto full_size = std::filesystem::file_size(good);
  const std::string truncated = (dir / "taglets_servable_trunc.bin").string();
  for (std::uintmax_t keep : {full_size / 4, full_size / 2, full_size - 1}) {
    std::filesystem::copy_file(
        good, truncated, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(truncated, keep);
    EXPECT_THROW(ServableModel::load(truncated), std::runtime_error)
        << "kept " << keep << " of " << full_size << " bytes";
  }

  // A corrupt header (absurd class count) is rejected before any
  // allocation of that size is attempted.
  const std::string bad_count = (dir / "taglets_servable_count.bin").string();
  {
    std::filesystem::copy_file(
        good, bad_count, std::filesystem::copy_options::overwrite_existing);
    std::fstream f(bad_count,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);  // right after the magic
    const std::uint32_t huge = 0xFFFFFFFFu;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW(ServableModel::load(bad_count), std::runtime_error);

  std::filesystem::remove(good);
  std::filesystem::remove(garbage);
  std::filesystem::remove(truncated);
  std::filesystem::remove(bad_count);
}

TEST(Servable, LoadRejectsClassCountMismatchedWithClassifier) {
  // Hand-craft a file whose class-name table disagrees with the
  // classifier's output dimension (2 classes): same layout save() uses.
  Taglet taglet = make_constant_taglet("m", 3, 2, 1);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "taglets_servable_mismatch.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write("TGS1", 4);
    const std::uint32_t n = 3;
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const std::string name : {"a", "b", "c"}) {
      const std::uint32_t len = static_cast<std::uint32_t>(name.size());
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(name.data(), len);
    }
    taglet.model().save(out);
  }
  try {
    ServableModel::load(path);
    FAIL() << "expected load to reject the class-count mismatch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("does not match"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Servable, BatchProbaShape) {
  Taglet taglet = make_constant_taglet("m", 3, 4, 2);
  ServableModel model(taglet.model(), {"a", "b", "c", "d"});
  Tensor batch = Tensor::zeros(5, 3);
  Tensor proba = model.predict_proba(batch);
  EXPECT_EQ(proba.rows(), 5u);
  EXPECT_EQ(proba.cols(), 4u);
}

TEST(Servable, PredictBatchMatchesPerRowPredict) {
  // A weight matrix that makes the argmax depend on the input row.
  util::Rng rng(21);
  Tensor weight = Tensor::zeros(3, 4);
  for (float& x : weight.data()) x = static_cast<float>(rng.normal());
  Taglet taglet = make_linear_taglet("m", weight, Tensor::zeros(4));
  ServableModel model(taglet.model(), {"a", "b", "c", "d"});
  Tensor batch = Tensor::zeros(9, 3);
  for (float& x : batch.data()) x = static_cast<float>(rng.normal());
  const auto labels = model.predict_batch(batch);
  ASSERT_EQ(labels.size(), 9u);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], model.predict(batch.row_copy(i))) << "row " << i;
  }
  EXPECT_TRUE(model.predict_batch(Tensor::zeros(0, 3)).empty());
}


// ----------------------------------------------------------- diagnostics

TEST(PseudoLabelStats, UnanimousConfidentEnsemble) {
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("a", 2, 3, 1, 50.0f));
  taglets.push_back(make_constant_taglet("b", 2, 3, 1, 50.0f));
  Tensor inputs = Tensor::zeros(6, 2);
  auto stats = pseudo_label_stats(taglets, inputs);
  EXPECT_NEAR(stats.mean_confidence, 1.0, 1e-3);
  EXPECT_NEAR(stats.mean_entropy, 0.0, 1e-2);
  EXPECT_NEAR(stats.inter_taglet_agreement, 1.0, 1e-12);
}

TEST(PseudoLabelStats, DisagreeingEnsembleHasHighEntropy) {
  std::vector<Taglet> taglets;
  taglets.push_back(make_constant_taglet("a", 2, 2, 0, 50.0f));
  taglets.push_back(make_constant_taglet("b", 2, 2, 1, 50.0f));
  Tensor inputs = Tensor::zeros(4, 2);
  auto stats = pseudo_label_stats(taglets, inputs);
  EXPECT_NEAR(stats.inter_taglet_agreement, 0.0, 1e-12);
  EXPECT_NEAR(stats.mean_confidence, 0.5, 1e-3);
  EXPECT_NEAR(stats.mean_entropy, std::log(2.0), 1e-2);
}

TEST(PseudoLabelStats, RejectsEmptyInputs) {
  std::vector<Taglet> none;
  Tensor inputs = Tensor::zeros(1, 2);
  EXPECT_THROW(pseudo_label_stats(none, inputs), std::invalid_argument);
}

}  // namespace
}  // namespace taglets::ensemble
