#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/classifier.hpp"
#include "nn/grad_check.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/scheduler.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace taglets::nn {
namespace {

using tensor::Tensor;

Tensor random_batch(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor t = Tensor::zeros(rows, cols);
  for (float& x : t.data()) x = static_cast<float>(rng.normal());
  return t;
}

// ----------------------------------------------------------------- init

TEST(Init, KaimingVarianceRoughlyCorrect) {
  util::Rng rng(3);
  Tensor w = kaiming_normal(200, 100, rng);
  double sq = 0.0;
  for (float x : w.data()) sq += static_cast<double>(x) * x;
  const double var = sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(Init, XavierWithinBounds) {
  util::Rng rng(3);
  Tensor w = xavier_uniform(50, 30, rng);
  const double bound = std::sqrt(6.0 / 80.0);
  for (float x : w.data()) {
    EXPECT_LE(std::abs(x), bound + 1e-6);
  }
}

// --------------------------------------------------------------- layers

TEST(Linear, ForwardMatchesManualComputation) {
  Tensor w = Tensor::from_matrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({0.5f, -0.5f, 0.0f});
  Linear layer(w, b);
  Tensor x = Tensor::from_matrix(1, 2, {1.0f, 2.0f});
  Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 1 + 2 * 4 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 1 * 2 + 2 * 5 - 0.5f);
}

TEST(Linear, RejectsMismatchedBias) {
  EXPECT_THROW(Linear(Tensor::zeros(2, 3), Tensor::zeros(2)),
               std::invalid_argument);
}

TEST(Linear, GradCheck) {
  util::Rng rng(7);
  Linear layer(4, 3, rng);
  Tensor x = random_batch(5, 4, rng);
  std::vector<std::size_t> labels{0, 1, 2, 0, 1};

  auto loss_fn = [&] {
    Tensor logits = layer.forward(x, true);
    return cross_entropy(logits, labels).loss;
  };
  // Populate analytic grads.
  for (Parameter* p : layer.parameters()) p->zero_grad();
  Tensor logits = layer.forward(x, true);
  auto loss = cross_entropy(logits, labels);
  layer.backward(loss.grad_logits);
  EXPECT_LT(max_param_grad_error(layer.parameters(), loss_fn), 2e-2);
}

TEST(ReLU, ForwardAndBackwardMask) {
  ReLU relu;
  Tensor x = Tensor::from_matrix(1, 4, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
  Tensor g = Tensor::full(1, 4, 1.0f);
  Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 1.0f);
}

TEST(Tanh, GradMatchesDerivative) {
  Tanh tanh_layer;
  Tensor x = Tensor::from_matrix(1, 2, {0.5f, -1.0f});
  Tensor y = tanh_layer.forward(x, true);
  Tensor g = Tensor::full(1, 2, 1.0f);
  Tensor dx = tanh_layer.backward(g);
  EXPECT_NEAR(dx.at(0, 0), 1.0f - y.at(0, 0) * y.at(0, 0), 1e-6);
}

TEST(Dropout, IdentityAtEval) {
  util::Rng rng(5);
  Dropout dropout(0.5f, rng);
  Tensor x = Tensor::full(4, 4, 1.0f);
  Tensor eval = dropout.forward(x, false);
  for (float v : eval.data()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Dropout, TrainingMasksAndRescales) {
  util::Rng rng(5);
  Dropout dropout(0.5f, rng);
  Tensor x = Tensor::full(20, 20, 1.0f);
  Tensor out = dropout.forward(x, true);
  std::size_t zeros = 0;
  for (float v : out.data()) {
    if (v == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scaling
  }
  EXPECT_GT(zeros, 100u);
  EXPECT_LT(zeros, 300u);
}

TEST(Dropout, RejectsInvalidRate) {
  util::Rng rng(5);
  EXPECT_THROW(Dropout(1.0f, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, rng), std::invalid_argument);
}

// ------------------------------------------------------------ sequential

TEST(Sequential, MlpGradCheck) {
  util::Rng rng(11);
  Sequential mlp = make_mlp({3, 6, 4}, rng);
  Tensor x = random_batch(4, 3, rng);
  std::vector<std::size_t> labels{0, 1, 2, 3};

  auto loss_fn = [&] {
    Tensor logits = mlp.forward(x, true);
    return cross_entropy(logits, labels).loss;
  };
  mlp.zero_grad();
  Tensor logits = mlp.forward(x, true);
  auto loss = cross_entropy(logits, labels);
  mlp.backward(loss.grad_logits);
  EXPECT_LT(max_param_grad_error(mlp.parameters(), loss_fn), 5e-2);
}

TEST(Sequential, InputGradCheck) {
  util::Rng rng(13);
  Sequential mlp = make_mlp({3, 5, 2}, rng);
  Tensor x = random_batch(3, 3, rng);
  std::vector<std::size_t> labels{0, 1, 0};

  mlp.zero_grad();
  Tensor logits = mlp.forward(x, true);
  auto loss = cross_entropy(logits, labels);
  Tensor dx = mlp.backward(loss.grad_logits);

  auto loss_fn = [&] {
    Tensor l = mlp.forward(x, true);
    return cross_entropy(l, labels).loss;
  };
  EXPECT_LT(max_input_grad_error(x, dx, loss_fn), 5e-2);
}

TEST(Sequential, CopyIsDeep) {
  util::Rng rng(17);
  Sequential a = make_mlp({2, 3, 2}, rng);
  Sequential b = a;  // copy
  // Mutate a's first parameter; b must be unaffected.
  a.parameters()[0]->value.fill(0.0f);
  bool b_nonzero = false;
  for (float v : b.parameters()[0]->value.data()) {
    if (v != 0.0f) b_nonzero = true;
  }
  EXPECT_TRUE(b_nonzero);
}

TEST(Sequential, SaveLoadRoundTrip) {
  util::Rng rng(19);
  Sequential mlp = make_mlp({4, 8, 3}, rng, /*dropout=*/0.2f);
  std::stringstream buffer;
  mlp.save(buffer);
  util::Rng load_rng(0);
  Sequential loaded = Sequential::load(buffer, load_rng);
  ASSERT_EQ(loaded.layer_count(), mlp.layer_count());
  Tensor x = random_batch(2, 4, rng);
  Tensor ya = mlp.forward(x, false);
  Tensor yb = loaded.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Sequential, MakeMlpValidatesDims) {
  util::Rng rng(2);
  EXPECT_THROW(make_mlp({4}, rng), std::invalid_argument);
}

// ----------------------------------------------------------------- loss

TEST(Loss, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::zeros(2, 4);
  std::vector<std::size_t> labels{0, 3};
  auto result = cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(Loss, CrossEntropyGradCheck) {
  util::Rng rng(23);
  Tensor logits = random_batch(3, 5, rng);
  std::vector<std::size_t> labels{4, 2, 0};
  auto result = cross_entropy(logits, labels);
  auto loss_fn = [&] { return cross_entropy(logits, labels).loss; };
  EXPECT_LT(max_input_grad_error(logits, result.grad_logits, loss_fn), 1e-2);
}

TEST(Loss, SoftCrossEntropyMatchesHardOnOneHot) {
  util::Rng rng(29);
  Tensor logits = random_batch(4, 3, rng);
  std::vector<std::size_t> labels{0, 1, 2, 1};
  Tensor targets = Tensor::zeros(4, 3);
  for (std::size_t i = 0; i < 4; ++i) targets.at(i, labels[i]) = 1.0f;
  auto hard = cross_entropy(logits, labels);
  auto soft = soft_cross_entropy(logits, targets);
  EXPECT_NEAR(hard.loss, soft.loss, 1e-6);
  for (std::size_t i = 0; i < hard.grad_logits.size(); ++i) {
    EXPECT_NEAR(hard.grad_logits.data()[i], soft.grad_logits.data()[i], 1e-6);
  }
}

TEST(Loss, SoftCrossEntropyGradCheck) {
  util::Rng rng(31);
  Tensor logits = random_batch(3, 4, rng);
  Tensor targets = tensor::softmax(random_batch(3, 4, rng));
  auto result = soft_cross_entropy(logits, targets);
  auto loss_fn = [&] { return soft_cross_entropy(logits, targets).loss; };
  EXPECT_LT(max_input_grad_error(logits, result.grad_logits, loss_fn), 1e-2);
}

TEST(Loss, MseGradCheck) {
  util::Rng rng(37);
  Tensor pred = random_batch(2, 3, rng);
  Tensor target = random_batch(2, 3, rng);
  auto result = mse(pred, target);
  auto loss_fn = [&] { return mse(pred, target).loss; };
  EXPECT_LT(max_input_grad_error(pred, result.grad_logits, loss_fn), 1e-2);
}

TEST(Loss, AccuracyCountsArgmaxMatches) {
  Tensor logits = Tensor::from_matrix(3, 2, {1, 0, 0, 1, 1, 0});
  std::vector<std::size_t> labels{0, 1, 1};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Loss, LabelOutOfRangeThrows) {
  Tensor logits = Tensor::zeros(1, 2);
  std::vector<std::size_t> labels{5};
  EXPECT_THROW(cross_entropy(logits, labels), taglets::util::ContractViolation);
}

// ------------------------------------------------------------ optimizer

TEST(Sgd, PlainStepMatchesClosedForm) {
  Parameter p(Tensor::from_vector({1.0f}));
  Sgd::Config config;
  config.lr = 0.1;
  config.momentum = 0.0;
  Sgd opt({&p}, config);
  p.grad[0] = 2.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 2.0f, 1e-6);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);  // cleared
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p(Tensor::from_vector({0.0f}));
  Sgd::Config config;
  config.lr = 1.0;
  config.momentum = 0.5;
  Sgd opt({&p}, config);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, x=-1
  p.grad[0] = 1.0f;
  opt.step();  // v=1.5, x=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Parameter p(Tensor::from_vector({10.0f}));
  Sgd::Config config;
  config.lr = 0.1;
  config.momentum = 0.0;
  config.weight_decay = 0.5;
  Sgd opt({&p}, config);
  p.grad[0] = 0.0f;
  opt.step();
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter p(Tensor::from_vector({5.0f}));
  Adam::Config config;
  config.lr = 0.3;
  Adam opt({&p}, config);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * p.value[0];  // d/dx x^2
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 0.0f, 1e-2);
}

// ------------------------------------------------------------ scheduler

TEST(Scheduler, StepDecayMilestones) {
  StepDecayLr schedule(1.0, {0.5, 0.75}, 0.1);
  EXPECT_DOUBLE_EQ(schedule.rate(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(schedule.rate(49, 100), 1.0);
  EXPECT_DOUBLE_EQ(schedule.rate(50, 100), 0.1);
  EXPECT_NEAR(schedule.rate(75, 100), 0.01, 1e-12);
  EXPECT_THROW(StepDecayLr(1.0, {0.8, 0.5}), std::invalid_argument);
}

TEST(Scheduler, FixMatchCosineMatchesFormula) {
  FixMatchCosineLr schedule(2.0);
  EXPECT_NEAR(schedule.rate(0, 100), 2.0, 1e-12);
  EXPECT_NEAR(schedule.rate(50, 100), 2.0 * std::cos(7.0 * M_PI / 32.0), 1e-9);
  // At k = K the rate is still positive (7/16 < 1/2).
  EXPECT_GT(schedule.rate(100, 100), 0.0);
}

TEST(Scheduler, HalfCosineMatchesFormula) {
  HalfCosineLr schedule(2.0);
  EXPECT_NEAR(schedule.rate(0, 100), 2.0, 1e-12);
  EXPECT_NEAR(schedule.rate(50, 100), 1.0, 1e-9);
  EXPECT_NEAR(schedule.rate(100, 100), 0.0, 1e-9);
}

TEST(Scheduler, WarmupRampsLinearlyThenDelegates) {
  auto after = std::make_unique<ConstantLr>(1.0);
  WarmupLr schedule(10, std::move(after));
  EXPECT_NEAR(schedule.rate(0, 110), 0.1, 1e-12);
  EXPECT_NEAR(schedule.rate(4, 110), 0.5, 1e-12);
  EXPECT_NEAR(schedule.rate(9, 110), 1.0, 1e-12);
  EXPECT_NEAR(schedule.rate(50, 110), 1.0, 1e-12);
  EXPECT_THROW(WarmupLr(5, nullptr), std::invalid_argument);
}

// ------------------------------------------------------------ classifier

TEST(Classifier, PredictProbaRowsSumToOne) {
  util::Rng rng(41);
  Sequential encoder = make_mlp({4, 6, 5}, rng);
  Classifier model(encoder, 5, 3, rng);
  Tensor x = random_batch(4, 4, rng);
  Tensor p = model.predict_proba(x);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (float v : p.row(i)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Classifier, FrozenEncoderExcludesEncoderParams) {
  util::Rng rng(43);
  Sequential encoder = make_mlp({4, 6, 5}, rng);
  Classifier model(encoder, 5, 3, rng);
  const std::size_t all = model.parameters().size();
  model.set_encoder_frozen(true);
  EXPECT_LT(model.parameters().size(), all);
  EXPECT_EQ(model.parameters().size(), 2u);  // head weight + bias
}

TEST(Classifier, ReplaceHeadValidatesWidth) {
  util::Rng rng(47);
  Sequential encoder = make_mlp({4, 6, 5}, rng);
  Classifier model(encoder, 5, 3, rng);
  EXPECT_THROW(model.replace_head(Linear(Tensor::zeros(7, 3), Tensor::zeros(3))),
               std::invalid_argument);
  model.replace_head(Linear(Tensor::zeros(5, 8), Tensor::zeros(8)));
  EXPECT_EQ(model.num_classes(), 8u);
}

TEST(Classifier, SaveLoadPreservesPredictions) {
  util::Rng rng(53);
  Sequential encoder = make_mlp({4, 6, 5}, rng);
  Classifier model(encoder, 5, 3, rng);
  std::stringstream buffer;
  model.save(buffer);
  util::Rng load_rng(0);
  Classifier loaded = Classifier::load(buffer, load_rng);
  Tensor x = random_batch(3, 4, rng);
  auto a = model.predict(x);
  auto b = loaded.predict(x);
  EXPECT_EQ(a, b);
}

TEST(Classifier, ParameterCountMatchesArchitecture) {
  util::Rng rng(59);
  Sequential encoder = make_mlp({4, 6, 5}, rng);
  Classifier model(encoder, 5, 3, rng);
  // (4*6 + 6) + (6*5 + 5) + (5*3 + 3)
  EXPECT_EQ(model.parameter_count(), 24u + 6u + 30u + 5u + 15u + 3u);
}

// -------------------------------------------------------------- trainer

TEST(Trainer, MakeBatchesCoversAllIndicesOnce) {
  util::Rng rng(61);
  auto batches = make_batches(10, 3, rng);
  ASSERT_EQ(batches.size(), 4u);  // 3+3+3+1
  std::set<std::size_t> seen;
  for (const auto& b : batches) {
    for (std::size_t i : b) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_THROW(make_batches(5, 0, rng), std::invalid_argument);
}

TEST(Trainer, MinStepsRaisesEpochs) {
  util::Rng rng(67);
  Sequential encoder = make_mlp({2, 4, 3}, rng);
  Classifier model(encoder, 3, 2, rng);
  Tensor x = random_batch(4, 2, rng);
  std::vector<std::size_t> y{0, 1, 0, 1};
  FitConfig config;
  config.epochs = 1;
  config.batch_size = 4;
  config.min_steps = 25;
  auto report = fit_hard(model, x, y, config, rng);
  EXPECT_GE(report.steps, 25u);
}

TEST(Trainer, FitHardLearnsSeparableData) {
  util::Rng rng(71);
  // Two well-separated Gaussian blobs.
  Tensor x = Tensor::zeros(60, 2);
  std::vector<std::size_t> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    const bool positive = i % 2 == 0;
    y[i] = positive ? 1 : 0;
    x.at(i, 0) = static_cast<float>(rng.normal(positive ? 2.0 : -2.0, 0.3));
    x.at(i, 1) = static_cast<float>(rng.normal(positive ? -1.0 : 1.0, 0.3));
  }
  Sequential encoder = make_mlp({2, 8, 4}, rng);
  Classifier model(encoder, 4, 2, rng);
  FitConfig config;
  config.epochs = 40;
  config.batch_size = 16;
  config.sgd.lr = 0.05;
  auto report = fit_hard(model, x, y, config, rng);
  EXPECT_GT(evaluate_accuracy(model, x, y), 0.95);
  EXPECT_LT(report.final_loss(), report.epoch_loss.front());
}

TEST(Trainer, FitSoftLearnsOneHotTargets) {
  util::Rng rng(73);
  Tensor x = Tensor::zeros(40, 2);
  Tensor targets = Tensor::zeros(40, 2);
  std::vector<std::size_t> y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    const bool positive = i % 2 == 0;
    y[i] = positive ? 1 : 0;
    targets.at(i, y[i]) = 1.0f;
    x.at(i, 0) = static_cast<float>(rng.normal(positive ? 2.0 : -2.0, 0.3));
    x.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.3));
  }
  Sequential encoder = make_mlp({2, 8, 4}, rng);
  Classifier model(encoder, 4, 2, rng);
  FitConfig config;
  config.epochs = 40;
  config.batch_size = 16;
  config.sgd.lr = 0.05;
  fit_soft(model, x, targets, config, rng);
  EXPECT_GT(evaluate_accuracy(model, x, y), 0.9);
}

TEST(Trainer, ClipGradNormBoundsGlobalNorm) {
  Parameter a(Tensor::from_vector({3.0f}));
  Parameter b(Tensor::from_vector({4.0f}));
  a.grad[0] = 3.0f;
  b.grad[0] = 4.0f;  // global norm 5
  std::vector<Parameter*> params{&a, &b};
  clip_grad_norm(params, 1.0);
  const double norm = std::sqrt(a.grad[0] * a.grad[0] + b.grad[0] * b.grad[0]);
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(Trainer, ShapeValidation) {
  util::Rng rng(79);
  Sequential encoder = make_mlp({2, 3, 2}, rng);
  Classifier model(encoder, 2, 2, rng);
  Tensor x = random_batch(3, 2, rng);
  std::vector<std::size_t> y{0, 1};  // mismatched
  FitConfig config;
  EXPECT_THROW(fit_hard(model, x, y, config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace taglets::nn
