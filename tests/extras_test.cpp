// Tests for the auxiliary production features: classification metrics,
// knowledge-graph persistence, and the CLI argument parser.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.hpp"
#include "nn/metrics.hpp"
#include "tensor/tensor.hpp"
#include "util/args.hpp"
#include "eval/results_log.hpp"
#include "util/check.hpp"

namespace taglets {
namespace {

// -------------------------------------------------------------- metrics

TEST(ConfusionMatrix, CountsAndAccuracy) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_NEAR(cm.accuracy(), 0.75, 1e-12);
  EXPECT_THROW(cm.add(3, 0), taglets::util::ContractViolation);
  EXPECT_THROW(nn::ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  nn::ConfusionMatrix cm(2);
  // truth 0: 3 correct, 1 predicted as 1; truth 1: 2 correct.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_NEAR(cm.recall(0), 0.75, 1e-12);
  EXPECT_NEAR(cm.precision(0), 1.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-12);
  const double f1_0 = 2.0 * 1.0 * 0.75 / 1.75;
  EXPECT_NEAR(cm.f1(0), f1_0, 1e-12);
  EXPECT_NEAR(cm.macro_f1(), (cm.f1(0) + cm.f1(1)) / 2.0, 1e-12);
  EXPECT_NEAR(cm.balanced_accuracy(), (0.75 + 1.0) / 2.0, 1e-12);
}

TEST(ConfusionMatrix, UnseenClassesScoreZero) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, WorstClassesSortedByRecall) {
  nn::ConfusionMatrix cm(3);
  cm.add(0, 0);            // recall(0) = 1
  cm.add(1, 0);            // recall(1) = 0
  cm.add(2, 2);
  cm.add(2, 0);            // recall(2) = 0.5
  auto worst = cm.worst_classes(2);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0], 1u);
  EXPECT_EQ(worst[1], 2u);
}

TEST(ConfusionMatrix, BatchAndReport) {
  nn::ConfusionMatrix cm(2);
  std::vector<std::size_t> truth{0, 1, 1};
  std::vector<std::size_t> pred{0, 1, 0};
  cm.add_batch(truth, pred);
  EXPECT_EQ(cm.total(), 3u);
  const std::string report = cm.report({"cat", "dog"});
  EXPECT_NE(report.find("cat"), std::string::npos);
  EXPECT_NE(report.find("macro-F1"), std::string::npos);
  std::vector<std::size_t> short_pred{0};
  EXPECT_THROW(cm.add_batch(truth, short_pred), std::invalid_argument);
}

TEST(ConfusionMatrix, EvaluateConfusionFromLogits) {
  tensor::Tensor logits =
      tensor::Tensor::from_matrix(3, 2, {2, 1, 0, 3, 5, 1});
  std::vector<std::size_t> labels{0, 1, 1};
  auto cm = nn::evaluate_confusion(logits, labels);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------- graph io

TEST(GraphIo, RoundTripPreservesStructure) {
  graph::KnowledgeGraph g;
  g.add_node("yoghurt");
  g.add_node("oat_milk");
  g.add_node("oatghurt");
  g.add_edge("oatghurt", "yoghurt", graph::Relation::kRelatedTo, 0.9f);
  g.add_edge("oatghurt", "oat_milk", graph::Relation::kMadeOf, 0.5f);

  std::stringstream buffer;
  graph::write_graph(buffer, g);
  graph::KnowledgeGraph loaded = graph::read_graph(buffer);

  EXPECT_EQ(loaded.node_count(), 3u);
  EXPECT_EQ(loaded.edge_count(), 2u);
  EXPECT_TRUE(loaded.has_node("oatghurt"));
  const auto& nbrs = loaded.neighbors(*loaded.find("oatghurt"));
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].relation, graph::Relation::kRelatedTo);
  EXPECT_FLOAT_EQ(nbrs[0].weight, 0.9f);
}

TEST(GraphIo, RejectsMalformedInput) {
  std::stringstream bad_header("not-a-graph\n");
  EXPECT_THROW(graph::read_graph(bad_header), std::runtime_error);
  std::stringstream bad_record("taglets-kg v1\nwhatever x\n");
  EXPECT_THROW(graph::read_graph(bad_record), std::runtime_error);
  std::stringstream bad_edge("taglets-kg v1\nnode a\nedge 0 zero IsA 1\n");
  EXPECT_THROW(graph::read_graph(bad_edge), std::runtime_error);
}

TEST(GraphIo, RelationStringsRoundTrip) {
  for (graph::Relation r :
       {graph::Relation::kRelatedTo, graph::Relation::kIsA,
        graph::Relation::kPartOf, graph::Relation::kAtLocation,
        graph::Relation::kUsedFor, graph::Relation::kSynonym,
        graph::Relation::kMadeOf}) {
    EXPECT_EQ(graph::relation_from_string(graph::relation_to_string(r)), r);
  }
  EXPECT_THROW(graph::relation_from_string("Nope"), std::runtime_error);
}

// ----------------------------------------------------------------- args

TEST(ArgParser, ParsesValueFormsAndPositionals) {
  const char* argv[] = {"prog",       "--dataset", "grocery", "--shots=5",
                        "positional", "--report",  "--scale", "0.5"};
  util::ArgParser args(8, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get("dataset", ""), "grocery");
  EXPECT_EQ(args.get_long("shots", 0), 5);
  EXPECT_TRUE(args.get_flag("report"));
  EXPECT_NEAR(args.get_double("scale", 0.0), 0.5, 1e-12);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(ArgParser, FallbacksAndErrors) {
  const char* argv[] = {"prog", "--shots", "abc"};
  util::ArgParser args(3, argv);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_long("missing", 7), 7);
  EXPECT_FALSE(args.get_flag("missing"));
  EXPECT_THROW(args.get_long("shots", 0), std::invalid_argument);
}

TEST(ArgParser, BareFlagBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--verbose", "--shots", "3"};
  util::ArgParser args(4, argv);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_EQ(args.get_long("shots", 0), 3);
  auto names = args.flag_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(ArgParser, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  EXPECT_THROW(util::ArgParser(2, argv), std::invalid_argument);
}


// ----------------------------------------------------------- results log

TEST(ResultsLog, CsvRoundTrip) {
  eval::ResultsLog log;
  log.add(eval::ResultRow{"table1", "OfficeHome-Product-S", 1, 0, "taglets",
                          "RN50", -1, 67.64, 3.61, 3});
  log.add(eval::ResultRow{"table1", "OfficeHome-Product-S", 1, 0,
                          "fine-tuning", "RN50", -1, 32.51, 3.83, 3});
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("experiment,dataset"), std::string::npos);
  eval::ResultsLog back = eval::ResultsLog::from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.rows()[0].method, "taglets");
  EXPECT_NEAR(back.rows()[0].mean, 67.64, 1e-9);
  EXPECT_EQ(back.rows()[1].prune_level, -1);
}

TEST(ResultsLog, FilterAndBestMean) {
  eval::ResultsLog log;
  log.add(eval::ResultRow{"t", "d", 1, 0, "taglets", "RN50", -1, 70.0, 1, 3});
  log.add(eval::ResultRow{"t", "d", 1, 0, "fine-tuning", "RN50", -1, 50.0, 1, 3});
  log.add(eval::ResultRow{"t", "d", 1, 0, "mpl", "RN50", -1, 55.0, 1, 3});
  log.add(eval::ResultRow{"t", "d", 5, 0, "mpl", "RN50", -1, 80.0, 1, 3});
  EXPECT_EQ(log.filter("t", "d", "mpl").size(), 2u);
  EXPECT_EQ(log.filter("", "", "").size(), 4u);
  auto best = log.best_mean("d", 1, "taglets");
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(*best, 55.0, 1e-9);
  EXPECT_FALSE(log.best_mean("nope", 1, "").has_value());
}

TEST(ResultsLog, FromCsvRejectsMalformed) {
  EXPECT_THROW(eval::ResultsLog::from_csv("a,b,c\n1,2\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace taglets
