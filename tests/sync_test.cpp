// Tests for util/sync.hpp: the runtime lock-order checker (rank
// inversions, cross-thread acquisition cycles, recursive
// self-acquisition, the join-under-lock guard) and its warn/off modes.
//
// The abort paths use gtest death tests in "threadsafe" style: the
// child process re-executes from main(), so the checker's globals
// (mode slot, order graph, held stacks) start fresh in every child —
// no violation state leaks between tests.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "util/sync.hpp"

namespace {

using taglets::util::CondVar;
using taglets::util::LockOrderMode;
using taglets::util::Mutex;
using taglets::util::MutexLock;
using taglets::util::ReaderMutexLock;
using taglets::util::SharedMutex;
using taglets::util::WriterMutexLock;
namespace lockrank = taglets::util::lockrank;

class SyncLockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!taglets::util::lock_order_checks_enabled()) {
      GTEST_SKIP() << "lock-order checks compiled out (NDEBUG build)";
    }
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SyncLockOrderTest, AscendingRanksAreQuiet) {
  const std::uint64_t before = taglets::util::lock_order_violation_count();
  Mutex outer("test.outer", lockrank::kFleetFrontendLifecycle);
  Mutex inner("test.inner", lockrank::kObsMetrics);
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  EXPECT_EQ(taglets::util::lock_order_violation_count(), before);
}

TEST_F(SyncLockOrderTest, EqualRankConsistentOrderIsQuiet) {
  // Two instances sharing one rank (e.g. two replicas' conn_mu) may
  // nest, as long as every thread agrees on the instance order.
  const std::uint64_t before = taglets::util::lock_order_violation_count();
  Mutex a("test.peer_a", lockrank::kTest);
  Mutex b("test.peer_b", lockrank::kTest);
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(taglets::util::lock_order_violation_count(), before);
}

TEST_F(SyncLockOrderTest, RankInversionAborts) {
  EXPECT_DEATH(
      {
        Mutex high("test.high", lockrank::kTest);
        Mutex low("test.low", lockrank::kFleetFrontendLifecycle);
        MutexLock lh(high);
        MutexLock ll(low);  // lower rank under higher: inversion
      },
      "lock-order violation");
}

TEST_F(SyncLockOrderTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex mu("test.recursive", lockrank::kTest);
        mu.lock();
        mu.lock();  // self-deadlock on a non-recursive mutex
      },
      "lock-order violation");
}

TEST_F(SyncLockOrderTest, CrossThreadCycleAborts) {
  // The PR 7 failover deadlock shape, distilled: two same-rank locks
  // taken a->b by one thread and b->a by another. The first thread
  // records the a->b edge in the order graph; the second thread's
  // reverse nesting closes the cycle and must die — sequentially here,
  // so the test itself can never actually deadlock.
  EXPECT_DEATH(
      {
        Mutex a("test.conn_a", lockrank::kFleetFrontendConn);
        Mutex b("test.conn_b", lockrank::kFleetFrontendConn);
        std::thread forward([&] {
          MutexLock la(a);
          MutexLock lb(b);
        });
        forward.join();
        MutexLock lb(b);
        MutexLock la(a);  // reverse order: cycle
      },
      "lock-order violation");
}

TEST_F(SyncLockOrderTest, CycleReportPrintsBothStacks) {
  // The report must carry both sides of the cycle: the current
  // thread's held stack and the recorded stack of the thread that
  // created the opposing edge.
  EXPECT_DEATH(
      {
        Mutex a("test.first_hand", lockrank::kTest);
        Mutex b("test.other_hand", lockrank::kTest);
        std::thread forward([&] {
          MutexLock la(a);
          MutexLock lb(b);
        });
        forward.join();
        MutexLock lb(b);
        MutexLock la(a);
      },
      "test.first_hand.* -> .*test.other_hand");
}

TEST_F(SyncLockOrderTest, JoinUnderLockAborts) {
  // Regression for the PR 7 frontend bug: stop() joining a replica
  // reader while holding a conn_mu the reader's failover path needed.
  EXPECT_DEATH(
      {
        Mutex conn("test.conn", lockrank::kFleetFrontendConn);
        MutexLock lock(conn);
        taglets::util::check_join_safe(lockrank::kFleetFrontendConn,
                                       "sync_test.join_under_lock");
      },
      "join while holding");
}

TEST_F(SyncLockOrderTest, JoinBelowFloorIsQuiet) {
  const std::uint64_t before = taglets::util::lock_order_violation_count();
  Mutex lifecycle("test.lifecycle", lockrank::kFleetFrontendLifecycle);
  MutexLock lock(lifecycle);
  // Holding rank 100 while the joinee only ever takes >= 106 is the
  // sanctioned pattern (Frontend::stop).
  taglets::util::check_join_safe(lockrank::kFleetFrontendHeartbeat,
                                 "sync_test.join_below_floor");
  EXPECT_EQ(taglets::util::lock_order_violation_count(), before);
}

TEST_F(SyncLockOrderTest, WarnModeLogsWithoutAborting) {
  taglets::util::set_lock_order_mode_for_testing(LockOrderMode::kWarn);
  const std::uint64_t before = taglets::util::lock_order_violation_count();
  {
    Mutex high("test.warn_high", lockrank::kTest);
    Mutex low("test.warn_low", lockrank::kFleetFrontendLifecycle);
    MutexLock lh(high);
    MutexLock ll(low);  // inversion: counted and logged, not fatal
  }
  taglets::util::set_lock_order_mode_for_testing(LockOrderMode::kEnforce);
  EXPECT_EQ(taglets::util::lock_order_violation_count(), before + 1);
  const std::string report = taglets::util::last_lock_order_report();
  EXPECT_NE(report.find("test.warn_high"), std::string::npos);
  EXPECT_NE(report.find("test.warn_low"), std::string::npos);
}

TEST_F(SyncLockOrderTest, OffModeDisablesChecks) {
  taglets::util::set_lock_order_mode_for_testing(LockOrderMode::kOff);
  const std::uint64_t before = taglets::util::lock_order_violation_count();
  {
    Mutex high("test.off_high", lockrank::kTest);
    Mutex low("test.off_low", lockrank::kFleetFrontendLifecycle);
    MutexLock lh(high);
    MutexLock ll(low);
  }
  taglets::util::set_lock_order_mode_for_testing(LockOrderMode::kEnforce);
  EXPECT_EQ(taglets::util::lock_order_violation_count(), before);
}

TEST_F(SyncLockOrderTest, TryLockSkipsRankCheckButJoinsStack) {
  // try_lock cannot block, so acquiring "out of order" via try_lock is
  // legal; but a lock it does take must still be visible to later
  // ordinary acquisitions.
  const std::uint64_t before = taglets::util::lock_order_violation_count();
  Mutex high("test.try_high", lockrank::kTest);
  Mutex low("test.try_low", lockrank::kFleetFrontendLifecycle);
  {
    MutexLock lh(high);
    ASSERT_TRUE(low.try_lock());
    low.unlock();
  }
  EXPECT_EQ(taglets::util::lock_order_violation_count(), before);
  EXPECT_DEATH(
      {
        Mutex h2("test.try_high2", lockrank::kTest);
        Mutex l2("test.try_low2", lockrank::kFleetFrontendLifecycle);
        ASSERT_TRUE(h2.try_lock());
        MutexLock ll(l2);  // ordinary acquisition under the tried lock
      },
      "lock-order violation");
}

TEST(SyncSharedMutexTest, SharedAcquisitionsParticipate) {
  if (!taglets::util::lock_order_checks_enabled()) {
    GTEST_SKIP() << "lock-order checks compiled out (NDEBUG build)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A reader under a higher-ranked writer lock is just as much an
  // inversion as writer-under-writer.
  EXPECT_DEATH(
      {
        Mutex high("test.sw_high", lockrank::kTest);
        SharedMutex low("test.sw_low", lockrank::kFleetShardSwap);
        MutexLock lh(high);
        ReaderMutexLock rl(low);
      },
      "lock-order violation");
}

TEST(SyncCondVarTest, PredicateWaitRoundTrips) {
  Mutex mu("test.cv", lockrank::kTest);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
    EXPECT_TRUE(lock.owns_lock());
  }
  producer.join();
}

TEST(SyncCondVarTest, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu("test.cv_timeout", lockrank::kTest);
  CondVar cv;
  MutexLock lock(mu);
  const bool satisfied =
      cv.wait_for(lock, std::chrono::milliseconds(10), [] { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_TRUE(lock.owns_lock());
}

TEST(SyncModeTest, ModeReflectsCompileTimeState) {
  if (taglets::util::lock_order_checks_enabled()) {
    EXPECT_NE(taglets::util::lock_order_mode(), LockOrderMode::kOff);
  } else {
    EXPECT_EQ(taglets::util::lock_order_mode(), LockOrderMode::kOff);
    EXPECT_EQ(taglets::util::lock_order_violation_count(), 0u);
    EXPECT_TRUE(taglets::util::last_lock_order_report().empty());
  }
}

}  // namespace
