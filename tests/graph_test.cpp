#include <gtest/gtest.h>

#include <set>

#include "graph/embedding_index.hpp"
#include "graph/generators.hpp"
#include "graph/knowledge_graph.hpp"
#include "graph/retrofit.hpp"
#include "graph/taxonomy.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace taglets::graph {
namespace {

using tensor::Tensor;

// ------------------------------------------------------ knowledge graph

TEST(KnowledgeGraph, AddNodeIdempotent) {
  KnowledgeGraph g;
  const NodeId a = g.add_node("apple");
  EXPECT_EQ(g.add_node("apple"), a);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.name(a), "apple");
}

TEST(KnowledgeGraph, FindMissingReturnsNullopt) {
  KnowledgeGraph g;
  g.add_node("x");
  EXPECT_FALSE(g.find("y").has_value());
  EXPECT_TRUE(g.has_node("x"));
}

TEST(KnowledgeGraph, EdgesVisibleFromBothEndpoints) {
  KnowledgeGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, Relation::kRelatedTo, 0.8f);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  ASSERT_EQ(g.neighbors(b).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].node, b);
  EXPECT_EQ(g.neighbors(b)[0].node, a);
  EXPECT_FLOAT_EQ(g.neighbors(a)[0].weight, 0.8f);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(KnowledgeGraph, RejectsSelfLoopAndUnknownNames) {
  KnowledgeGraph g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.add_edge(a, a, Relation::kIsA), std::invalid_argument);
  EXPECT_THROW(g.add_edge("a", "nope", Relation::kIsA), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99, Relation::kIsA), taglets::util::ContractViolation);
}

TEST(KnowledgeGraph, HopDistanceBfs) {
  KnowledgeGraph g;
  for (const char* n : {"a", "b", "c", "d", "island"}) g.add_node(n);
  g.add_edge("a", "b", Relation::kIsA);
  g.add_edge("b", "c", Relation::kIsA);
  g.add_edge("c", "d", Relation::kIsA);
  EXPECT_EQ(g.hop_distance(0, 3).value(), 3u);
  g.add_edge("a", "d", Relation::kRelatedTo);
  EXPECT_EQ(g.hop_distance(0, 3).value(), 1u);
  EXPECT_EQ(g.hop_distance(2, 2).value(), 0u);
  EXPECT_FALSE(g.hop_distance(0, 4).has_value());  // disconnected
}

TEST(KnowledgeGraph, NeighborhoodRadius) {
  KnowledgeGraph g;
  for (const char* n : {"a", "b", "c", "d"}) g.add_node(n);
  g.add_edge("a", "b", Relation::kIsA);
  g.add_edge("b", "c", Relation::kIsA);
  g.add_edge("c", "d", Relation::kIsA);
  auto hood = g.neighborhood(0, 2);
  std::set<NodeId> set(hood.begin(), hood.end());
  EXPECT_EQ(set, (std::set<NodeId>{0, 1, 2}));
}

TEST(KnowledgeGraph, RelationNames) {
  EXPECT_STREQ(relation_name(Relation::kIsA), "IsA");
  EXPECT_STREQ(relation_name(Relation::kRelatedTo), "RelatedTo");
}

// ------------------------------------------------------------- taxonomy

TEST(Taxonomy, ValidatesStructure) {
  EXPECT_THROW(Taxonomy({}), std::invalid_argument);
  EXPECT_THROW(Taxonomy({0, 1}), std::invalid_argument);   // two roots
  EXPECT_THROW(Taxonomy({1, 0}), std::invalid_argument);   // no root
  EXPECT_THROW(Taxonomy({0, 9}), std::invalid_argument);   // bad parent id
}

TEST(Taxonomy, BasicQueries) {
  // 0 root; children 1,2; 1's children 3,4; 3's child 5.
  Taxonomy t({0, 0, 0, 1, 1, 3});
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(5), 3u);
  EXPECT_EQ(t.parent(4), 1u);
  EXPECT_EQ(t.children(1).size(), 2u);
  EXPECT_TRUE(t.is_ancestor_or_self(1, 5));
  EXPECT_FALSE(t.is_ancestor_or_self(2, 5));
  EXPECT_TRUE(t.is_ancestor_or_self(5, 5));
}

TEST(Taxonomy, SubtreeAndLca) {
  Taxonomy t({0, 0, 0, 1, 1, 3});
  auto sub = t.subtree(1);
  std::set<std::size_t> set(sub.begin(), sub.end());
  EXPECT_EQ(set, (std::set<std::size_t>{1, 3, 4, 5}));
  EXPECT_EQ(t.lca(5, 4), 1u);
  EXPECT_EQ(t.lca(5, 2), 0u);
  EXPECT_EQ(t.lca(3, 3), 3u);
  EXPECT_EQ(t.tree_distance(5, 4), 3u);
  EXPECT_EQ(t.tree_distance(0, 0), 0u);
}

TEST(Taxonomy, PrunedSetLevels) {
  Taxonomy t({0, 0, 0, 1, 1, 3});
  auto level0 = t.pruned_set(3, 0);
  std::set<std::size_t> s0(level0.begin(), level0.end());
  EXPECT_EQ(s0, (std::set<std::size_t>{3, 5}));
  auto level1 = t.pruned_set(3, 1);
  std::set<std::size_t> s1(level1.begin(), level1.end());
  EXPECT_EQ(s1, (std::set<std::size_t>{1, 3, 4, 5}));
  EXPECT_TRUE(t.pruned_set(3, -1).empty());
  for (std::size_t node : s0) EXPECT_TRUE(s1.count(node));
}

class RandomTaxonomyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTaxonomyTest, GeneratedTreesSatisfyInvariants) {
  util::Rng rng(GetParam());
  TreeSpec spec;
  spec.node_count = 200;
  auto parents = random_tree_parents(spec, rng);
  ASSERT_EQ(parents.size(), 200u);
  // Parents precede children, enabling single-pass prototype diffusion.
  for (std::size_t i = 1; i < parents.size(); ++i) {
    EXPECT_LT(parents[i], i);
  }
  Taxonomy t(parents);  // must not throw
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.subtree(0).size(), 200u);
  for (std::size_t i = 1; i < 200; ++i) {
    EXPECT_EQ(t.depth(i), t.depth(t.parent(i)) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaxonomyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

TEST(Generators, ConceptNamesUniqueAndPrefixed) {
  auto names = make_concept_names(50, "concept");
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(names[7], "concept_00007");
}

TEST(Generators, GraphFromTaxonomyHasIsAEdges) {
  Taxonomy t({0, 0, 1});
  KnowledgeGraph g = graph_from_taxonomy(t, {"root", "mid", "leaf"});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.hop_distance(0, 2).value(), 2u);
}

TEST(Generators, CrossEdgesRespectCountBound) {
  util::Rng rng(5);
  TreeSpec spec;
  spec.node_count = 120;
  auto parents = random_tree_parents(spec, rng);
  Taxonomy t(parents);
  KnowledgeGraph g = graph_from_taxonomy(t, make_concept_names(120, "c"));
  const std::size_t before = g.edge_count();
  add_random_cross_edges(g, t, 100, /*locality=*/3.0, rng);
  EXPECT_GT(g.edge_count(), before);
  EXPECT_LE(g.edge_count(), before + 100);
}

// ------------------------------------------------------------- retrofit

TEST(Retrofit, NoEdgesKeepsWordVectors) {
  KnowledgeGraph g;
  g.add_node("a");
  g.add_node("b");
  std::vector<std::optional<Tensor>> words(2);
  words[0] = Tensor::from_vector({1.0f, 0.0f});
  words[1] = Tensor::from_vector({0.0f, 1.0f});
  RetrofitConfig config;
  config.normalize = false;
  config.center = false;
  Tensor out = retrofit_embeddings(g, words, config);
  EXPECT_NEAR(out.at(0, 0), 1.0f, 1e-5);
  EXPECT_NEAR(out.at(1, 1), 1.0f, 1e-5);
}

TEST(Retrofit, OovInheritsFromNeighbors) {
  KnowledgeGraph g;
  g.add_node("known");
  g.add_node("oov");
  g.add_edge("known", "oov", Relation::kSynonym);
  std::vector<std::optional<Tensor>> words(2);
  words[0] = Tensor::from_vector({2.0f, 0.0f});
  RetrofitConfig config;
  config.normalize = false;
  config.center = false;
  Tensor out = retrofit_embeddings(g, words, config);
  // The OOV concept (alpha = 0, Appendix A.1) converges to its neighbor.
  EXPECT_GT(out.at(1, 0), 1.0f);
  EXPECT_NEAR(out.at(1, 1), 0.0f, 1e-5);
}

TEST(Retrofit, EdgesPullNeighborsTogether) {
  KnowledgeGraph g;
  for (const char* n : {"a", "b", "c"}) g.add_node(n);
  g.add_edge("a", "b", Relation::kRelatedTo);
  std::vector<std::optional<Tensor>> words(3);
  words[0] = Tensor::from_vector({1.0f, 0.0f});
  words[1] = Tensor::from_vector({0.0f, 1.0f});
  words[2] = Tensor::from_vector({-1.0f, -1.0f});
  RetrofitConfig config;
  config.normalize = false;
  config.center = false;
  Tensor out = retrofit_embeddings(g, words, config);
  const float before =
      tensor::cosine_similarity(words[0]->data(), words[1]->data());
  const float after = tensor::cosine_similarity(out.row(0), out.row(1));
  EXPECT_GT(after, before);
  // Unconnected c stays at its word vector.
  EXPECT_NEAR(out.at(2, 0), -1.0f, 1e-5);
}

TEST(Retrofit, NormalizeProducesUnitRows) {
  KnowledgeGraph g;
  g.add_node("a");
  g.add_node("b");
  g.add_edge("a", "b", Relation::kIsA);
  std::vector<std::optional<Tensor>> words(2);
  words[0] = Tensor::from_vector({3.0f, 4.0f});
  words[1] = Tensor::from_vector({1.0f, 1.0f});
  RetrofitConfig config;
  config.center = false;
  Tensor out = retrofit_embeddings(g, words, config);
  EXPECT_NEAR(tensor::l2_norm(out.row(0)), 1.0f, 1e-5);
}

TEST(Retrofit, CenteringRemovesCommonComponent) {
  KnowledgeGraph g;
  g.add_node("a");
  g.add_node("b");
  std::vector<std::optional<Tensor>> words(2);
  words[0] = Tensor::from_vector({10.0f, 1.0f});
  words[1] = Tensor::from_vector({10.0f, -1.0f});
  RetrofitConfig config;
  config.normalize = false;
  config.center = true;
  Tensor out = retrofit_embeddings(g, words, config);
  // The shared first component is removed.
  EXPECT_NEAR(out.at(0, 0) + out.at(1, 0), 0.0f, 1e-5);
  EXPECT_GT(out.at(0, 1), 0.0f);
  EXPECT_LT(out.at(1, 1), 0.0f);
}

TEST(Retrofit, ValidatesInput) {
  KnowledgeGraph g;
  g.add_node("a");
  std::vector<std::optional<Tensor>> empty_words;
  EXPECT_THROW(retrofit_embeddings(g, empty_words), std::invalid_argument);
  std::vector<std::optional<Tensor>> all_missing(1);
  EXPECT_THROW(retrofit_embeddings(g, all_missing), std::invalid_argument);
}

// ------------------------------------------------------- embedding index

TEST(EmbeddingIndex, TopKMatchesBruteForce) {
  KnowledgeGraph g;
  for (int i = 0; i < 6; ++i) {
    std::string name = "n";  // += form: GCC 12 -Wrestrict FP (PR105329)
    name += std::to_string(i);
    g.add_node(name);
  }
  util::Rng rng(7);
  Tensor embeddings = Tensor::zeros(6, 4);
  for (float& x : embeddings.data()) x = static_cast<float>(rng.normal());
  EmbeddingIndex index(&g, embeddings);

  std::vector<float> query{1.0f, -0.5f, 0.25f, 0.0f};
  std::vector<NodeId> candidates{0, 1, 2, 3, 4, 5};
  auto hits = index.top_k(query, candidates, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_GE(hits[0].similarity, hits[1].similarity);
  EXPECT_GE(hits[1].similarity, hits[2].similarity);
  float best = -2.0f;
  NodeId best_node = 0;
  for (NodeId c : candidates) {
    const float sim = tensor::cosine_similarity(query, index.vector(c));
    if (sim > best) {
      best = sim;
      best_node = c;
    }
  }
  EXPECT_EQ(hits[0].node, best_node);
}

TEST(EmbeddingIndex, RestrictedCandidates) {
  KnowledgeGraph g;
  for (int i = 0; i < 4; ++i) {
    std::string name = "n";  // += form: GCC 12 -Wrestrict FP (PR105329)
    name += std::to_string(i);
    g.add_node(name);
  }
  Tensor embeddings = Tensor::identity(4);
  EmbeddingIndex index(&g, embeddings);
  std::vector<float> query{1.0f, 0.0f, 0.0f, 0.0f};
  std::vector<NodeId> candidates{2, 3};  // exclude the perfect match
  auto hits = index.top_k(query, candidates, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].node, 0u);
}

TEST(EmbeddingIndex, ApproximateEmbeddingUsesLongestPrefix) {
  KnowledgeGraph g;
  g.add_node("oat_milk");
  g.add_node("yoghurt");
  g.add_node("zebra");
  Tensor embeddings = Tensor::zeros(3, 2);
  embeddings.at(0, 0) = 1.0f;   // oat_milk -> x
  embeddings.at(1, 1) = 1.0f;   // yoghurt -> y
  embeddings.at(2, 0) = -1.0f;
  EmbeddingIndex index(&g, embeddings);
  Tensor approx = index.approximate_embedding("oatghurt", 3);
  // Longest shared prefix is "oat" (shared with oat_milk).
  EXPECT_GT(approx[0], 0.5f);
  Tensor none = index.approximate_embedding("qqq", 3);
  EXPECT_FLOAT_EQ(none.squared_norm(), 0.0f);
}

TEST(EmbeddingIndex, SetVectorExtendsTable) {
  KnowledgeGraph g;
  g.add_node("a");
  Tensor embeddings = Tensor::zeros(1, 3);
  EmbeddingIndex index(&g, embeddings);
  const NodeId b = g.add_node("b");
  index.set_vector(b, Tensor::from_vector({1.0f, 2.0f, 3.0f}));
  EXPECT_FLOAT_EQ(index.vector(b)[2], 3.0f);
  EXPECT_THROW(index.set_vector(b, Tensor::from_vector({1.0f})),
               std::invalid_argument);
}

TEST(EmbeddingIndex, ValidatesConstruction) {
  KnowledgeGraph g;
  g.add_node("a");
  EXPECT_THROW(EmbeddingIndex(nullptr, Tensor::zeros(1, 2)),
               std::invalid_argument);
  EXPECT_THROW(EmbeddingIndex(&g, Tensor::zeros(5, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace taglets::graph
