// Fuzz harness for the fleet wire protocol (src/fleet/protocol.*).
//
// The input is treated as one frame payload and driven through every
// decoder. The contract under test:
//
//   1. No decoder may crash, hang, or read out of bounds on arbitrary
//      bytes — malformed input must surface as ProtocolError, nothing
//      else escapes.
//   2. Encoding is canonical: any payload that decodes successfully
//      must re-encode to exactly the bytes it came from (decode is a
//      bijection onto the set of valid frames). Floats are memcpy'd
//      bit copies in both directions, so this holds for NaNs too.
//
// Built two ways from this one file:
//   - fleet_protocol_fuzz: clang-only, -fsanitize=fuzzer,address, the
//     real coverage-guided fuzzer (CI runs it for 60 s per push).
//   - fleet_protocol_fuzz_replay: every compiler, a plain main() that
//     replays the checked-in corpus (tests/fuzz/corpus) as a ctest
//     test, so GCC-only environments still execute every regression
//     input through the exact harness the fuzzer uses. With
//     --write-seeds <dir> it emits the seed corpus instead.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/protocol.hpp"

namespace {

using taglets::fleet::MsgType;
using taglets::fleet::ProtocolError;

// Re-encode a successfully decoded message and demand byte identity
// with the payload it was decoded from. A mismatch is a real bug (a
// field silently dropped, re-ordered, or widened) and must crash so
// the fuzzer reports it.
void check_roundtrip(const std::vector<std::uint8_t>& payload,
                     const std::vector<std::uint8_t>& reencoded,
                     const char* what) {
  if (payload == reencoded) return;
  std::fprintf(stderr,
               "fleet_protocol_fuzz: %s round-trip mismatch "
               "(in=%zu bytes, out=%zu bytes)\n",
               what, payload.size(), reencoded.size());
  __builtin_trap();
}

void fuzz_one(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> payload(data, data + size);

  // peek_type on arbitrary bytes: may throw, must not crash.
  try {
    (void)taglets::fleet::peek_type(payload);
  } catch (const ProtocolError&) {
  }

  // Every decoder sees every input. Each checks its own type byte, so
  // for a given payload at most one can succeed; running all twelve
  // keeps coverage independent of the type byte the mutator happened
  // to pick.
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_predict_request(payload)),
                    "PredictRequest");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_predict_response(payload)),
                    "PredictResponse");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(
        payload, taglets::fleet::encode(taglets::fleet::decode_ping(payload)),
        "Ping");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(
        payload, taglets::fleet::encode(taglets::fleet::decode_pong(payload)),
        "Pong");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_reload_request(payload)),
                    "ReloadRequest");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_reload_response(payload)),
                    "ReloadResponse");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_stats_request(payload)),
                    "StatsRequest");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_stats_response(payload)),
                    "StatsResponse");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_trace_export_request(payload)),
                    "TraceExportRequest");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_trace_export_response(payload)),
                    "TraceExportResponse");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_metrics_request(payload)),
                    "MetricsRequest");
  } catch (const ProtocolError&) {
  }
  try {
    check_roundtrip(payload,
                    taglets::fleet::encode(
                        taglets::fleet::decode_metrics_response(payload)),
                    "MetricsResponse");
  } catch (const ProtocolError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(data, size);
  return 0;
}

#ifdef TAGLETS_FUZZ_REPLAY_MAIN
// ------------------------------------------------- corpus replay driver
//
//   fleet_protocol_fuzz_replay <file-or-dir>...   replay inputs
//   fleet_protocol_fuzz_replay --write-seeds DIR  emit the seed corpus
//
// Replay runs each input through fuzz_one exactly as libFuzzer would;
// any crash the fuzzer would have caught crashes here too.
#include <filesystem>
#include <fstream>

namespace {

namespace fs = std::filesystem;
namespace fleet = taglets::fleet;

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_seed(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// One well-formed frame per message type, plus hostile variants
// (truncations, an unknown type byte, a length field pointing past the
// end) so the corpus starts with both sides of every branch.
int write_seeds(const fs::path& dir) {
  fs::create_directories(dir);

  fleet::PredictRequest predict_req;
  predict_req.id = 42;
  predict_req.routing_key = 7;
  predict_req.deadline_ms = 125.0;
  predict_req.trace_id = 9;
  predict_req.parent_span = 3;
  predict_req.features = {0.25f, -1.5f, 3.75f, 0.0f};
  write_seed(dir, "predict_request", fleet::encode(predict_req));

  fleet::PredictResponse predict_resp;
  predict_resp.id = 42;
  predict_resp.status = fleet::Status::kOk;
  predict_resp.label = 2;
  predict_resp.confidence = 0.875f;
  predict_resp.class_name = "zebra";
  predict_resp.shard_ms = 1.5;
  predict_resp.queue_wait_ms = 0.25;
  predict_resp.compute_ms = 1.0;
  write_seed(dir, "predict_response", fleet::encode(predict_resp));

  fleet::Ping ping;
  ping.seq = 11;
  write_seed(dir, "ping", fleet::encode(ping));

  fleet::Pong pong;
  pong.seq = 11;
  pong.model_version = 3;
  pong.queue_depth = 5;
  pong.queue_capacity = 64;
  pong.requests_ok = 1000;
  pong.requests_rejected = 2;
  pong.requests_deadline_missed = 1;
  pong.draining = 1;
  write_seed(dir, "pong", fleet::encode(pong));

  fleet::ReloadRequest reload_req;
  reload_req.path = "/models/v3.bin";
  write_seed(dir, "reload_request", fleet::encode(reload_req));

  fleet::ReloadResponse reload_resp;
  reload_resp.ok = 1;
  reload_resp.model_version = 3;
  reload_resp.message = "";
  write_seed(dir, "reload_response", fleet::encode(reload_resp));

  write_seed(dir, "stats_request", fleet::encode(fleet::StatsRequest{}));

  fleet::StatsResponse stats_resp;
  stats_resp.json = "{\"requests\":{\"ok\":1000}}";
  write_seed(dir, "stats_response", fleet::encode(stats_resp));

  write_seed(dir, "trace_export_request",
             fleet::encode(fleet::TraceExportRequest{}));

  fleet::TraceExportResponse trace_resp;
  fleet::ProcessTrace proc;
  proc.pid = 1234;
  proc.name = "shard-0";
  proc.now_us = 5000.0;
  proc.align_offset_us = -12.5;
  proc.dropped = 1;
  fleet::WireSpan span;
  span.name = "serve.batch";
  span.tid = 2;
  span.ts_us = 100.0;
  span.dur_us = 40.0;
  span.depth = 1;
  span.attrs = {{"claimed", "8"}};
  proc.spans.push_back(span);
  trace_resp.processes.push_back(proc);
  write_seed(dir, "trace_export_response", fleet::encode(trace_resp));

  write_seed(dir, "metrics_request", fleet::encode(fleet::MetricsRequest{}));

  fleet::MetricsResponse metrics_resp;
  taglets::obs::MetricsSnapshot snap;
  snap.source = "shard-0";
  snap.meta = {{"endpoint", "127.0.0.1:7001"}, {"health", "alive"}};
  snap.counters.push_back({"serve.requests_ok", 1000});
  snap.gauges.push_back({"serve.queue_depth", 5.0});
  taglets::obs::MetricsSnapshot::HistogramEntry hist;
  hist.name = "serve.latency_ms";
  hist.snap.bounds = {1.0, 5.0};
  hist.snap.counts = {2, 1, 0};  // decode demands bounds + 1 buckets
  hist.snap.count = 3;
  hist.snap.sum = 4.5;
  snap.histograms.push_back(hist);
  metrics_resp.snapshots.push_back(snap);
  write_seed(dir, "metrics_response", fleet::encode(metrics_resp));

  // Hostile variants.
  std::vector<std::uint8_t> truncated = fleet::encode(predict_req);
  truncated.resize(truncated.size() / 2);
  write_seed(dir, "predict_request_truncated", truncated);

  std::vector<std::uint8_t> bad_type = fleet::encode(ping);
  bad_type[0] = 0xEE;
  write_seed(dir, "unknown_type", bad_type);

  std::vector<std::uint8_t> lying_length = fleet::encode(reload_req);
  // The string length field sits right after the type byte; point it
  // far past the end of the payload.
  lying_length[1] = 0xFF;
  lying_length[2] = 0xFF;
  write_seed(dir, "reload_request_lying_length", lying_length);

  write_seed(dir, "empty", {});
  write_seed(dir, "single_byte_type_only", {0x01});

  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) ++count;
  }
  std::printf("wrote %zu seeds to %s\n", count, dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--write-seeds") {
    return write_seeds(argv[2]);
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    std::vector<fs::path> inputs;
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::directory_iterator(path)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(path)) {
      inputs.push_back(path);
    } else {
      std::fprintf(stderr, "fleet_protocol_fuzz_replay: no such input: %s\n",
                   argv[i]);
      return 1;
    }
    for (const fs::path& input : inputs) {
      const std::vector<std::uint8_t> bytes = read_file(input);
      fuzz_one(bytes.data(), bytes.size());
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr,
                 "usage: fleet_protocol_fuzz_replay <file-or-dir>... | "
                 "--write-seeds DIR\n");
    return 1;
  }
  std::printf("replayed %zu inputs, no crashes\n", replayed);
  return 0;
}
#endif  // TAGLETS_FUZZ_REPLAY_MAIN
